"""System configuration shared by every layer of the simulated store.

:class:`SystemConfig` plays the role of the option structs a real key-value
store (e.g. RocksDB) exposes. The defaults follow the paper's experimental
setup (Section 7): size ratio ``T = 10``, 1 KiB entries (128 B key + 896 B
value), 4 KiB pages, 8 bits-per-key Bloom filters. The write buffer defaults
to a scaled-down size so that laptop-scale workloads still span several
levels; pass ``write_buffer_bytes=2 * 2**20`` for the paper's 2 MiB buffer.

All simulated times are expressed in **seconds**.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class BloomScheme(enum.Enum):
    """How bits-per-key are allocated to Bloom filters across levels.

    * ``UNIFORM`` — every level uses the same bits-per-key (RocksDB default).
    * ``MONKEY``  — level *i* gets an exponentially higher false-positive rate
      than level *i-1* (``f_i = f_1 * T**(i-1)``), the allocation of
      Dayan et al.'s Monkey used by Dostoevsky and Cosine.
    """

    UNIFORM = "uniform"
    MONKEY = "monkey"


class BloomMode(enum.Enum):
    """How Bloom filter probes are simulated.

    * ``BIT_ARRAY``  — a real Bloom filter: bit array plus double hashing.
    * ``ANALYTICAL`` — membership is answered exactly and false positives are
      drawn as Bernoulli(f) events. Statistically identical for absent keys
      and considerably faster; used by the large benchmarks.
    """

    BIT_ARRAY = "bit_array"
    ANALYTICAL = "analytical"


class TransitionKind(enum.Enum):
    """Compaction-policy transition strategy (paper Section 4)."""

    GREEDY = "greedy"
    LAZY = "lazy"
    FLEXIBLE = "flexible"


@dataclass(frozen=True)
class CostModelParams:
    """Cost constants of the simulated device and CPU (paper Eq. 5 terms).

    ``random_read_s``/``random_write_s`` price one 4 KiB page of random I/O
    (the paper's ``I_r`` and ``I_w``); ``seq_read_s``/``seq_write_s`` price a
    page moved during compaction, which is sequential on a real device;
    ``run_probe_cpu_s`` is the paper's ``c_r`` (probing the in-memory
    metadata of one sorted run); ``compaction_entry_cpu_s`` is ``c_w``
    (merge-sort and allocation work per entry compacted).
    """

    random_read_s: float = 25e-6
    random_write_s: float = 25e-6
    seq_read_s: float = 6.5e-6
    seq_write_s: float = 6.5e-6
    run_probe_cpu_s: float = 2e-6
    compaction_entry_cpu_s: float = 0.8e-6

    def validate(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ConfigError(f"{field.name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class SystemConfig:
    """Complete static configuration of the simulated key-value store.

    Parameters mirror the paper's notation (Table 1):

    * ``size_ratio`` — ``T``, capacity ratio between adjacent levels.
    * ``entry_bytes`` — ``E``, logical size of one key-value entry.
    * ``page_bytes`` — ``B``, size of one disk page.
    * ``write_buffer_bytes`` — main-memory buffer; level ``i`` has capacity
      ``write_buffer_bytes * T**i``.
    * ``bits_per_key`` — Bloom filter budget (level 1 budget under Monkey).
    * ``initial_policy`` — ``K`` applied to every level at start
      (``1`` = leveling, ``T`` = tiering).
    """

    size_ratio: int = 10
    entry_bytes: int = 1024
    page_bytes: int = 4096
    write_buffer_bytes: int = 64 * 1024
    bits_per_key: float = 8.0
    bloom_scheme: BloomScheme = BloomScheme.UNIFORM
    bloom_mode: BloomMode = BloomMode.ANALYTICAL
    initial_policy: int = 1
    block_cache_pages: int = 0
    costs: CostModelParams = dataclasses.field(default_factory=CostModelParams)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size_ratio < 2:
            raise ConfigError(f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.entry_bytes <= 0:
            raise ConfigError(f"entry_bytes must be > 0, got {self.entry_bytes}")
        if self.page_bytes < self.entry_bytes:
            raise ConfigError(
                "page_bytes must be >= entry_bytes "
                f"({self.page_bytes} < {self.entry_bytes})"
            )
        if self.write_buffer_bytes < self.entry_bytes:
            raise ConfigError(
                "write_buffer_bytes must hold at least one entry "
                f"({self.write_buffer_bytes} < {self.entry_bytes})"
            )
        if self.bits_per_key <= 0:
            raise ConfigError(f"bits_per_key must be > 0, got {self.bits_per_key}")
        if not 1 <= self.initial_policy <= self.size_ratio:
            raise ConfigError(
                f"initial_policy must be in [1, T]=[1, {self.size_ratio}], "
                f"got {self.initial_policy}"
            )
        if self.block_cache_pages < 0:
            raise ConfigError(
                f"block_cache_pages must be >= 0, got {self.block_cache_pages}"
            )
        self.costs.validate()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def entries_per_page(self) -> int:
        """Entries that fit on one disk page (at least 1)."""
        return max(1, self.page_bytes // self.entry_bytes)

    @property
    def buffer_capacity_entries(self) -> int:
        """Entries the write buffer holds before it flushes."""
        return max(1, self.write_buffer_bytes // self.entry_bytes)

    def level_capacity_entries(self, level: int) -> int:
        """Capacity of level ``level`` (1-based) in entries:
        ``buffer * T**level``."""
        if level < 1:
            raise ConfigError(f"level must be >= 1, got {level}")
        return self.buffer_capacity_entries * self.size_ratio**level

    def level_capacity_bytes(self, level: int) -> int:
        """Capacity of level ``level`` (1-based) in bytes (paper ``C_i``)."""
        return self.level_capacity_entries(level) * self.entry_bytes

    def pages_for_entries(self, n_entries: int) -> int:
        """Number of disk pages occupied by ``n_entries`` entries."""
        if n_entries <= 0:
            return 0
        per_page = self.entries_per_page
        return -(-n_entries // per_page)  # ceil division

    def with_updates(self, **changes: object) -> "SystemConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
