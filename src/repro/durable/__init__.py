"""Durable on-disk backend: WAL + binary SSTables + versioned manifest.

The rest of the reproduction keeps every run and level as an in-memory
numpy structure; "persistence" there means whole-store snapshots via
:mod:`repro.persist`. This package adds the real durability path a
production LSM store recovers from (DESIGN.md §13):

* :mod:`repro.durable.wal` — append-only write-ahead log with
  length+CRC32-framed records, per-op sequence numbers, batched
  fsync-boundary markers and torn-tail detection;
* :mod:`repro.durable.sstable` — a binary SSTable file format (sorted
  key/value data blocks + fence-pointer index block + serialized Bloom
  block) mapping 1:1 onto the in-memory :class:`~repro.lsm.run.SortedRun`;
* :mod:`repro.durable.manifest` — an append-only edit log of run
  installs/drops per level with an atomic ``CURRENT`` pointer swap;
* :mod:`repro.durable.store` — :class:`DurableStore`, composing the three
  around an in-memory :class:`~repro.lsm.tree.LSMTree` working set while
  satisfying the structural :class:`~repro.engine.base.KVEngine` protocol;
* :mod:`repro.durable.faults` — deterministic crash-point injection used
  by the crash-recovery scenario suite (``scripts/crash_smoke.py``).

SimClock stays the source of truth for benchmarks: all simulated I/O is
still charged through :class:`~repro.storage.pager.DiskModel`; the wall
time spent on real file I/O is telemetry only (PR 8 ``obs`` counters).
"""

from repro.durable.atomio import atomic_file, fsync_dir, publish_bytes
from repro.durable.manifest import ManifestState, ManifestWriter, read_manifest
from repro.durable.sstable import read_sstable, write_sstable
from repro.durable.store import DurableStore, RecoveryReport
from repro.durable.wal import WalReader, WalWriter, replay_wal_bytes

__all__ = [
    "atomic_file",
    "fsync_dir",
    "publish_bytes",
    "DurableStore",
    "RecoveryReport",
    "ManifestState",
    "ManifestWriter",
    "read_manifest",
    "read_sstable",
    "write_sstable",
    "WalReader",
    "WalWriter",
    "replay_wal_bytes",
]
