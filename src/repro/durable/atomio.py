"""Atomic, durable file publishes: tmp → fsync → ``os.replace`` → dir fsync.

Every file *publish* in the durability chain (SSTables, the manifest
``CURRENT`` pointer, persist snapshots) must be atomic **and** durable:

1. the bytes are written to a sibling temp file,
2. the temp file is flushed and ``os.fsync``'d — its contents are on
   disk before any live name can point at them,
3. ``os.replace`` renames it into place — readers see the old file or
   the whole new file, never a torn one,
4. the containing directory is fsync'd — without this the *rename
   itself* may not survive a crash, resurrecting the old file (or, for
   a first publish, no file at all) after recovery.

This module owns that sequence. The DURABLE-FSYNC static rule
(:mod:`repro.analysis`) flags any ``durable/``/``persist/`` code that
renames or write-closes files outside it (DESIGN.md §13, §14).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import IO


def fsync_dir(directory: str) -> None:
    """fsync a directory so a rename/create inside it is durable.

    Directory fds are a POSIX notion; on platforms where opening a
    directory fails (Windows), the fsync is skipped — the rename is
    still atomic there, just not guaranteed ordered with the crash.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_file(
    path: str,
    mode: str = "wb",
    encoding: str | None = None,
    suffix: str = ".tmp",
    dir_fsync: bool = True,
    before_replace: Callable[[], None] | None = None,
) -> Iterator[IO]:
    """Write ``path`` atomically: yield a temp-file handle; on clean exit
    flush + fsync it, then ``os.replace`` it over ``path`` and fsync the
    directory.

    If the body raises, the temp file is removed and nothing is
    published. ``before_replace`` is a hook invoked after the temp file
    is durable but before the rename — the durability fault-injection
    points (:mod:`repro.durable.faults`) hang there.
    """
    tmp = path + suffix
    fh = open(tmp, mode, encoding=encoding)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
    except BaseException:
        fh.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    finally:
        if not fh.closed:
            fh.close()
    if before_replace is not None:
        before_replace()
    os.replace(tmp, path)
    if dir_fsync:
        fsync_dir(os.path.dirname(os.path.abspath(path)))


def publish_bytes(
    path: str,
    data: bytes,
    suffix: str = ".tmp",
    dir_fsync: bool = True,
    before_replace: Callable[[], None] | None = None,
) -> int:
    """Publish ``data`` at ``path`` via :func:`atomic_file`; returns the
    byte count written."""
    with atomic_file(
        path,
        "wb",
        suffix=suffix,
        dir_fsync=dir_fsync,
        before_replace=before_replace,
    ) as fh:
        fh.write(data)
    return len(data)
