"""Append-only write-ahead log with CRC-framed records.

Record grammar (all integers little-endian)::

    frame   := u32 payload_len | u32 crc32(payload) | payload
    payload := u8 op | u64 seqno | u32 n | int64[n] keys | int64[n] values?

``values`` is present only for ``OP_PUT``. Three ops exist:

* ``OP_PUT`` (1) — ``n`` key/value pairs; consumes seqnos
  ``seqno .. seqno + n - 1`` (one logical operation per pair);
* ``OP_DELETE`` (2) — ``n`` tombstoned keys, same seqno rule;
* ``OP_SYNC`` (3) — an fsync-boundary marker (``n == 0``): every record
  before it is durable on disk when the marker's fsync returns. A write
  is *acknowledged* once covered by a sync marker.

**Torn-tail detection**: a reader walks frames from the front and stops at
the first frame whose length field runs past the file or whose CRC does
not match — everything before that point is a valid prefix of what was
written (the property test in ``tests/test_durable.py`` truncates a log
at every byte offset and asserts exactly this). A writer that died
mid-append therefore costs at most the unacknowledged tail.

Sequence numbers make replay idempotent: the manifest records a
``checkpoint_seqno`` up to which all operations are covered by SSTables,
and recovery skips any WAL record whose ops fall at or below it
(re-applying the overlap would also be harmless — newest-wins semantics —
but skipping keeps replay "WAL tail only", see DESIGN.md §13).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.durable import faults
from repro.errors import DurabilityError

OP_PUT = 1
OP_DELETE = 2
OP_SYNC = 3

_FRAME = struct.Struct("<II")
_PAYLOAD_HEAD = struct.Struct("<BQI")

#: ``wal-%08d.log`` — segment file name for a WAL file id.
SEGMENT_FMT = "wal-{:08d}.log"


class WalRecord(NamedTuple):
    """One decoded WAL record."""

    op: int
    seqno: int
    keys: np.ndarray
    values: np.ndarray  # empty for OP_DELETE / OP_SYNC

    @property
    def n_ops(self) -> int:
        """Logical operations this record accounts for (0 for a marker)."""
        return 0 if self.op == OP_SYNC else len(self.keys)


# ----------------------------------------------------------------------
# Encoding / decoding (pure byte-level functions; property-tested)
# ----------------------------------------------------------------------
def encode_record(
    op: int,
    seqno: int,
    keys: Optional[np.ndarray] = None,
    values: Optional[np.ndarray] = None,
) -> bytes:
    """One framed WAL record as bytes."""
    if op not in (OP_PUT, OP_DELETE, OP_SYNC):
        raise DurabilityError(f"unknown WAL op {op!r}")
    keys = np.zeros(0, dtype=np.int64) if keys is None else np.asarray(keys, dtype=np.int64)
    parts = [_PAYLOAD_HEAD.pack(op, seqno, len(keys)), keys.tobytes()]
    if op == OP_PUT:
        values = np.asarray(values, dtype=np.int64)
        if values.shape != keys.shape:
            raise DurabilityError(
                f"keys/values length mismatch: {keys.shape} vs {values.shape}"
            )
        parts.append(values.tobytes())
    payload = b"".join(parts)
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> Optional[WalRecord]:
    """Decode one frame payload; ``None`` when structurally invalid."""
    if len(payload) < _PAYLOAD_HEAD.size:
        return None
    op, seqno, n = _PAYLOAD_HEAD.unpack_from(payload)
    n_arrays = 2 if op == OP_PUT else 1 if op == OP_DELETE else 0
    if op not in (OP_PUT, OP_DELETE, OP_SYNC):
        return None
    if op == OP_SYNC and n != 0:
        return None
    expected = _PAYLOAD_HEAD.size + n_arrays * n * 8
    if len(payload) != expected:
        return None
    empty = np.zeros(0, dtype=np.int64)
    if n_arrays == 0:
        return WalRecord(op, seqno, empty, empty)
    off = _PAYLOAD_HEAD.size
    keys = np.frombuffer(payload, dtype="<i8", count=n, offset=off).astype(np.int64)
    if n_arrays == 1:
        return WalRecord(op, seqno, keys, empty)
    values = np.frombuffer(
        payload, dtype="<i8", count=n, offset=off + n * 8
    ).astype(np.int64)
    return WalRecord(op, seqno, keys, values)


def iter_wal_bytes(data: bytes) -> Iterator[Tuple[WalRecord, int]]:
    """Yield ``(record, end_offset)`` pairs until the first invalid frame.

    ``end_offset`` is the byte offset just past the yielded record, i.e.
    the length of the valid prefix so far.
    """
    offset = 0
    total = len(data)
    while True:
        if offset + _FRAME.size > total:
            return
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            return  # torn tail: frame runs past the file
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt frame: stop, keep the prefix
        record = _decode_payload(payload)
        if record is None:
            return
        yield record, end
        offset = end


def replay_wal_bytes(data: bytes) -> Tuple[List[WalRecord], int, bool]:
    """Decode a WAL byte string.

    Returns ``(records, valid_bytes, torn)``: the longest valid record
    prefix, how many bytes it spans, and whether trailing bytes were
    discarded (a torn or corrupt tail).
    """
    records: List[WalRecord] = []
    valid = 0
    for record, end in iter_wal_bytes(data):
        records.append(record)
        valid = end
    return records, valid, valid != len(data)


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
class WalWriter:
    """Appends framed records to one WAL segment file.

    ``append_*`` buffers the frame in the OS file object; :meth:`sync`
    writes an ``OP_SYNC`` marker then flushes and fsyncs — the ack
    boundary. Wall-clock cost of the file I/O is the caller's to meter
    (telemetry only); simulated cost is charged by the engine through
    :class:`~repro.storage.pager.DiskModel` exactly as before.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh = open(self.path, "ab")
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        #: Highest seqno covered by an appended record (0 when none yet).
        self.max_seqno = 0

    def _append(self, frame: bytes, max_seqno: int) -> None:
        if self._fh.closed:
            raise DurabilityError(f"WAL {self.path} is closed")
        if faults.crash_hit("wal.torn"):
            # Injected torn write: only a prefix of the frame reaches the
            # file before the process dies.
            self._fh.write(frame[: max(1, len(frame) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            faults.die()
        self._fh.write(frame)
        self.records_appended += 1
        self.bytes_appended += len(frame)
        self.max_seqno = max(self.max_seqno, max_seqno)
        faults.maybe_crash("wal.append")

    def append_put(self, seqno: int, keys: np.ndarray, values: np.ndarray) -> None:
        self._append(
            encode_record(OP_PUT, seqno, keys, values), seqno + len(keys) - 1
        )

    def append_delete(self, seqno: int, keys: np.ndarray) -> None:
        self._append(
            encode_record(OP_DELETE, seqno, keys), seqno + len(keys) - 1
        )

    def sync(self, seqno: int) -> None:
        """Append an fsync-boundary marker and make everything durable.

        ``seqno`` is the last already-consumed sequence number — the ack
        watermark the marker certifies.
        """
        self._append(encode_record(OP_SYNC, seqno), seqno)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.syncs += 1
        faults.maybe_crash("wal.sync")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()


class WalReader:
    """Reads one WAL segment, stopping at the first invalid frame."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as fh:
            data = fh.read()
        self.records, self.valid_bytes, self.torn = replay_wal_bytes(data)
        self.total_bytes = len(data)

    @property
    def last_synced_seqno(self) -> int:
        """Ack watermark of the newest sync marker in the segment (0 when
        the segment holds none)."""
        for record in reversed(self.records):
            if record.op == OP_SYNC:
                return record.seqno
        return 0

    @property
    def max_seqno(self) -> int:
        """Highest seqno covered by any valid record (0 when empty)."""
        top = 0
        for record in self.records:
            if record.op == OP_SYNC:
                top = max(top, record.seqno)
            elif record.n_ops:
                top = max(top, record.seqno + record.n_ops - 1)
        return top


def segment_path(directory: str, file_id: int) -> str:
    return os.path.join(directory, SEGMENT_FMT.format(file_id))


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(file_id, path)`` of every WAL segment in ``directory``, id order."""
    out: List[Tuple[int, str]] = []
    for name in os.listdir(directory):
        if name.startswith("wal-") and name.endswith(".log"):
            try:
                file_id = int(name[4:-4])
            except ValueError:
                continue
            out.append((file_id, os.path.join(directory, name)))
    return sorted(out)
