"""Deterministic crash-point injection for the durability layer.

The crash-recovery suite does not kill processes at random wall-clock
moments — CI needs the same crash every run. Instead the durable write
paths are instrumented with *named crash points*; a child process armed
via the ``REPRO_CRASH`` environment variable dies (``os._exit``, no
cleanup, no atexit — the closest a single process gets to ``kill -9``)
the *n*-th time a named point is reached::

    REPRO_CRASH="wal.append:3"       # die on the 3rd WAL record append
    REPRO_CRASH="manifest.swap:1"    # die between writing a new manifest
                                     # and swapping CURRENT

Format: ``point:n`` (1-based n; ``point`` alone means ``point:1``).
Multiple comma-separated specs may be armed at once; the first to reach
its count wins. Counting is per-process and starts at import, so a spec
is deterministic for a deterministic op stream.

Instrumented points (see DESIGN.md §13 for the write protocol they cut):

========================  ====================================================
``wal.append``            after a WAL record is fully buffered, before fsync
``wal.torn``              mid-append — only a prefix of the frame hits disk
``wal.sync``              after fsync, before the ack returns to the caller
``commit.before``         a flush/compaction commit is due; nothing written
``sst.partial``           mid-SSTable-write — a half-written orphan file
``commit.mid``            between two SSTables of one multi-file commit
``manifest.edit``         SSTables durable, before the manifest edit lands
``manifest.torn``         mid-manifest-append — a torn final edit record
``manifest.swap``         new MANIFEST written, before CURRENT is swapped
========================  ====================================================
"""

from __future__ import annotations

import os
from typing import Dict

#: Exit status used by injected crashes; chosen to match the shell's code
#: for a SIGKILL-ed process so harnesses treat both uniformly.
CRASH_EXIT_CODE = 137

_counts: Dict[str, int] = {}


def _armed() -> Dict[str, int]:
    spec = os.environ.get("REPRO_CRASH", "")
    armed: Dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        point, _, nth = part.partition(":")
        armed[point] = int(nth) if nth else 1
    return armed


def reset_counts() -> None:
    """Forget per-point hit counts (tests re-arm within one process)."""
    _counts.clear()


def crash_hit(point: str) -> bool:
    """Record one hit of ``point``; ``True`` when the armed count is reached.

    Callers that need to do damage *before* dying (write half a record,
    flush it) branch on this and call :func:`die` themselves; plain
    call sites use :func:`maybe_crash`.
    """
    armed = _armed()
    if point not in armed:
        return False
    _counts[point] = _counts.get(point, 0) + 1
    return _counts[point] == armed[point]


def die() -> None:
    """Terminate immediately: no flushing, no atexit, no cleanup."""
    os._exit(CRASH_EXIT_CODE)


def maybe_crash(point: str) -> None:
    """Die mid-operation when ``point`` reaches its armed count."""
    if crash_hit(point):
        die()
