"""Versioned manifest: an append-only edit log of the store's file set.

A manifest file (``MANIFEST-%06d.log``) is a sequence of CRC-framed JSON
edit records using the same ``u32 len | u32 crc32 | payload`` framing as
the WAL. The first edit of every manifest is a *snapshot* edit carrying
the full state (config, complete file list, metadata); subsequent edits
are deltas. ``CURRENT`` is a one-line text file naming the live manifest
and is only ever updated by an atomic ``os.replace`` — a crash leaves
either the old or the new pointer, never garbage.

Edit record fields (all optional except where noted; unknown fields are
ignored so the format can grow):

``snapshot``          bool — this edit rebases state instead of patching it
``config``            :func:`repro.persist.snapshot.config_to_state` dict
                      (snapshot edits only)
``files``             ``[[level, run_id, filename], ...]`` full live file
                      list in level-then-age order (snapshot edits only)
``ops``               ``[["add", level, run_id, filename] | ["drop",
                      level, run_id], ...]`` applied in order
``checkpoint_seqno``  every WAL op with seqno <= this is covered by the
                      SSTables named in the (post-edit) file set
``wal_head``          id of the WAL segment new appends go to
``n_levels``          depth of the tree at edit time (levels may be empty)
``policies``          ``[[policy, pending_or_null], ...]`` shallow → deep
``named_policy``      pinned named compaction policy or ``None``
``next_run_id``       run-id counter floor for the reopened tree
``bits_per_key``      current Bloom budget

Recovery invariant: every ``add`` is only appended *after* its SSTable
file is fully written and fsynced, so a manifest whose edits all pass
their CRC never references a torn table. A torn **final** edit record
(the writer died mid-append) is discarded exactly like a torn WAL tail —
that edit's commit never acknowledged.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.durable import faults
from repro.durable.atomio import atomic_file
from repro.errors import DurabilityError

_FRAME = struct.Struct("<II")

CURRENT_NAME = "CURRENT"
MANIFEST_FMT = "MANIFEST-{:06d}.log"


def manifest_path(directory: str, manifest_id: int) -> str:
    return os.path.join(directory, MANIFEST_FMT.format(manifest_id))


def current_path(directory: str) -> str:
    return os.path.join(directory, CURRENT_NAME)


def _jsonable(value):
    """Coerce numpy scalars (and containers of them) to plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def encode_edit(edit: Dict[str, object]) -> bytes:
    payload = json.dumps(_jsonable(edit), sort_keys=True).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_edits(data: bytes) -> Tuple[List[Dict[str, object]], bool]:
    """All valid edits in ``data`` plus whether a torn tail was discarded."""
    edits: List[Dict[str, object]] = []
    offset = 0
    total = len(data)
    while True:
        if offset + _FRAME.size > total:
            return edits, offset != total
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            return edits, True
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return edits, True
        try:
            edit = json.loads(payload.decode("utf-8"))
        except ValueError:
            return edits, True
        if not isinstance(edit, dict):
            return edits, True
        edits.append(edit)
        offset = end


class ManifestState:
    """The live file set and tree metadata implied by a manifest's edits."""

    def __init__(self) -> None:
        self.config_state: Optional[Dict[str, object]] = None
        #: level -> ordered ``[(run_id, filename)]``, oldest run first.
        self.files: Dict[int, List[Tuple[int, str]]] = {}
        self.checkpoint_seqno = 0
        self.wal_head = 1
        self.n_levels = 0
        #: shallow → deep ``(policy, pending_policy_or_None)``.
        self.policies: List[Tuple[int, Optional[int]]] = []
        self.named_policy: Optional[str] = None
        self.next_run_id = 0
        self.bits_per_key: Optional[float] = None
        self.edits_applied = 0

    def apply_edit(self, edit: Dict[str, object]) -> None:
        if edit.get("snapshot"):
            self.files = {}
            for level, run_id, filename in edit.get("files", []):
                self.files.setdefault(int(level), []).append(
                    (int(run_id), str(filename))
                )
        if "config" in edit:
            self.config_state = edit["config"]
        for op in edit.get("ops", []):
            kind = op[0]
            if kind == "add":
                _, level, run_id, filename = op
                self.files.setdefault(int(level), []).append(
                    (int(run_id), str(filename))
                )
            elif kind == "drop":
                _, level, run_id = op
                runs = self.files.get(int(level), [])
                before = len(runs)
                runs[:] = [(r, f) for r, f in runs if r != int(run_id)]
                if len(runs) == before:
                    raise DurabilityError(
                        f"manifest drops unknown run {run_id} at level {level}"
                    )
            else:
                raise DurabilityError(f"unknown manifest op {kind!r}")
        if "checkpoint_seqno" in edit:
            self.checkpoint_seqno = int(edit["checkpoint_seqno"])
        if "wal_head" in edit:
            self.wal_head = int(edit["wal_head"])
        if "n_levels" in edit:
            self.n_levels = int(edit["n_levels"])
        if "policies" in edit:
            self.policies = [
                (int(p), None if pending is None else int(pending))
                for p, pending in edit["policies"]
            ]
        if "named_policy" in edit:
            raw = edit["named_policy"]
            self.named_policy = None if raw is None else str(raw)
        if "next_run_id" in edit:
            self.next_run_id = int(edit["next_run_id"])
        if "bits_per_key" in edit:
            self.bits_per_key = float(edit["bits_per_key"])
        self.edits_applied += 1

    def live_filenames(self) -> List[str]:
        return [f for runs in self.files.values() for _, f in runs]

    def snapshot_edit(self) -> Dict[str, object]:
        """A single snapshot edit reproducing this state (manifest rotation)."""
        edit: Dict[str, object] = {
            "snapshot": True,
            "files": [
                [level, run_id, filename]
                for level in sorted(self.files)
                for run_id, filename in self.files[level]
            ],
            "checkpoint_seqno": self.checkpoint_seqno,
            "wal_head": self.wal_head,
            "n_levels": self.n_levels,
            "policies": [[p, pending] for p, pending in self.policies],
            "named_policy": self.named_policy,
            "next_run_id": self.next_run_id,
        }
        if self.config_state is not None:
            edit["config"] = self.config_state
        if self.bits_per_key is not None:
            edit["bits_per_key"] = self.bits_per_key
        return edit


class ManifestWriter:
    """Appends edit records to one manifest file, fsync per edit."""

    def __init__(self, directory: str, manifest_id: int) -> None:
        self.directory = os.fspath(directory)
        self.manifest_id = manifest_id
        self.path = manifest_path(self.directory, manifest_id)
        self._fh = open(self.path, "ab")
        self.edits_written = 0

    def append_edit(self, edit: Dict[str, object]) -> None:
        if self._fh.closed:
            raise DurabilityError(f"manifest {self.path} is closed")
        faults.maybe_crash("manifest.edit")
        frame = encode_edit(edit)
        if faults.crash_hit("manifest.torn"):
            # Injected torn append: half the edit record reaches disk.
            self._fh.write(frame[: max(1, len(frame) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            faults.die()
        self._fh.write(frame)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.edits_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()


def write_current(directory: str, manifest_id: int) -> None:
    """Atomically repoint ``CURRENT`` at ``MANIFEST-<manifest_id>``.

    Published through :func:`repro.durable.atomio.atomic_file` (temp
    file, fsync, ``os.replace`` over CURRENT, directory fsync) — a crash
    at any point leaves a valid pointer (old or new, never torn), and a
    completed swap survives the crash.
    """
    target = current_path(directory)
    with atomic_file(
        target,
        "w",
        encoding="utf-8",
        before_replace=lambda: faults.maybe_crash("manifest.swap"),
    ) as fh:
        fh.write(MANIFEST_FMT.format(manifest_id) + "\n")


def read_current(directory: str) -> int:
    """Manifest id named by ``CURRENT``; raises when absent or malformed."""
    path = current_path(directory)
    try:
        with open(path, encoding="utf-8") as fh:
            name = fh.read().strip()
    except FileNotFoundError:
        raise DurabilityError(f"no CURRENT file in {directory}") from None
    prefix, suffix = "MANIFEST-", ".log"
    if not (name.startswith(prefix) and name.endswith(suffix)):
        raise DurabilityError(f"CURRENT names an invalid manifest: {name!r}")
    try:
        manifest_id = int(name[len(prefix) : -len(suffix)])
    except ValueError:
        raise DurabilityError(
            f"CURRENT names an invalid manifest: {name!r}"
        ) from None
    if not os.path.exists(manifest_path(directory, manifest_id)):
        raise DurabilityError(f"CURRENT names a missing manifest: {name!r}")
    return manifest_id


def read_manifest(directory: str) -> Tuple[ManifestState, int, bool]:
    """Replay the live manifest: ``(state, manifest_id, torn_tail)``."""
    manifest_id = read_current(directory)
    with open(manifest_path(directory, manifest_id), "rb") as fh:
        data = fh.read()
    edits, torn = decode_edits(data)
    if not edits:
        raise DurabilityError(
            f"manifest {manifest_id} in {directory} holds no valid edits"
        )
    state = ManifestState()
    for edit in edits:
        state.apply_edit(edit)
    return state, manifest_id, torn
