"""`DurableStore`: a crash-recoverable KVEngine over an in-memory LSMTree.

The store composes the three durable primitives around an unmodified
:class:`~repro.lsm.tree.LSMTree` working set:

* every write appends to the WAL (and fsyncs a sync marker — the ack
  boundary) *before* touching the memtable;
* every run the tree installs is mirrored to an SSTable file the moment
  the in-memory install happens (via the tree's change-observer hooks),
  and every flush cascade commits one manifest edit recording the adds,
  drops, the new WAL head and a conservative ``checkpoint_seqno``;
* recovery replays MANIFEST → opens the live SSTables → replays the WAL
  tail, then garbage-collects orphan files from interrupted commits.

Write protocol (the order is the whole durability argument)::

    put_batch(keys, values):
      1. WAL append + fsync sync marker          -> op is ACKNOWLEDGED
      2. tree.put_batch                           (may flush/compact)
           per installed run: write SSTable file (fsync, tmp+rename)
           per flush cascade: append manifest edit (fsync), rotate WAL,
                              delete covered segments + dropped tables

    A kill at any point:
      before 1 completes  -> op unacked; torn WAL tail truncated on reopen
      between 1 and 2     -> replayed from the WAL on reopen
      mid-SSTable         -> orphan .tmp / unreferenced file, GC'd; WAL
                             still holds the data
      mid-manifest-edit   -> torn final edit discarded; the tables it
                             named become orphans; WAL still holds the data
      after the edit      -> recovered from MANIFEST + WAL tail

``checkpoint_seqno`` is conservative: when a flush fires in the middle of
op N (the memtable filled partway through a batch), the edit records
``N - 1`` — the last op *fully* applied before it. Replay may therefore
re-apply a prefix the SSTables already hold, which is harmless under
newest-wins merge semantics; what it can never do is lose an
acknowledged suffix.

SimClock discipline: the inner tree charges all simulated costs exactly
as the in-memory engine does — the durable layer never touches the
simulated clock, RNG, cache or counters, so a ``DurableStore`` is
bit-identical to a bare ``LSMTree`` in every simulated observable. Wall
time spent on real file I/O is tallied in :attr:`telemetry` and exported
through :func:`repro.obs.collect.collect_durable_metrics`.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.config import SystemConfig, TransitionKind
from repro.durable import faults
from repro.durable.manifest import (
    ManifestState,
    ManifestWriter,
    current_path,
    manifest_path,
    read_manifest,
    write_current,
)
from repro.durable.sstable import read_sstable, sstable_path, write_sstable
from repro.durable.wal import (
    OP_DELETE,
    OP_PUT,
    WalReader,
    WalWriter,
    list_segments,
    segment_path,
)
from repro.errors import DurabilityError
from repro.lsm.entry import MAX_KEY, MIN_KEY, TOMBSTONE
from repro.lsm.policy import PolicyLike, resolve_policy
from repro.lsm.run import SortedRun
from repro.lsm.stats import MissionStats
from repro.lsm.tree import LSMTree
from repro.storage.pager import IOCounters


class RecoveryReport(NamedTuple):
    """What reopening a durable directory found and did."""

    created: bool
    manifest_id: int
    manifest_edits: int
    manifest_torn: bool
    runs_opened: int
    recovered_entries: int
    checkpoint_seqno: int
    recovered_seqno: int
    wal_segments: int
    wal_records_replayed: int
    wal_ops_replayed: int
    wal_torn: bool
    orphans_removed: int
    replay_wall_s: float


def _sstable_filename(run_id: int, level_no: int) -> str:
    return os.path.basename(sstable_path("", run_id, level_no))


class DurableStore:
    """A durable :class:`~repro.engine.base.KVEngine` backed by one
    :class:`~repro.lsm.tree.LSMTree` plus a WAL, SSTables and a manifest
    in ``data_dir``.

    Opening an empty (or absent) directory creates a fresh store —
    ``config`` is then required. Opening a directory holding a ``CURRENT``
    pointer recovers the store; a ``config`` passed alongside must match
    the one recorded in the manifest.

    The store registers itself as the tree's only tuning target so the
    serving layer's write path (which writes through ``tuning_targets``)
    cannot bypass the WAL; the tuner-facing tree surface (``levels``,
    ``level()``, ``set_policy``, ``set_named_policy``, ...) is delegated
    with manifest commits wrapped around every mutation.
    """

    # Durable state lives in the WAL/manifest/SSTables on disk, not in the
    # pickle snapshot: the _pending_* accumulators and _segment_max_seqno
    # map are re-derived by _recover() on reopen, config and
    # rotate_manifest_every come from the blueprint, telemetry/_profile are
    # injected observers, and last_recovery/_closed are per-process
    # lifecycle flags.
    _snapshot_exempt = frozenset({
        "rotate_manifest_every", "_profile", "telemetry", "_pending_ops",
        "_pending_deletions", "_pending_wal_head", "_segment_max_seqno",
        "_closed", "last_recovery", "config",
    })

    def __init__(
        self,
        data_dir: str,
        config: Optional[SystemConfig] = None,
        *,
        rotate_manifest_every: int = 64,
        profile: bool = False,
    ) -> None:
        self.data_dir = os.fspath(data_dir)
        self.rotate_manifest_every = max(2, int(rotate_manifest_every))
        self._profile = profile
        #: Wall-clock/file-volume telemetry (never simulated state); see
        #: :func:`repro.obs.collect.collect_durable_metrics`.
        self.telemetry: Dict[str, float] = {
            "wal_records": 0,
            "wal_bytes": 0,
            "wal_syncs": 0,
            "sstables_written": 0,
            "sstable_bytes": 0,
            "manifest_edits": 0,
            "commits": 0,
            "wal_rotations": 0,
            "manifest_rotations": 0,
            "orphans_removed": 0,
            "wal_records_replayed": 0,
            "wall_wal_s": 0.0,
            "wall_sstable_s": 0.0,
            "wall_manifest_s": 0.0,
            "wall_recovery_s": 0.0,
        }
        self._pending_ops: List[List[object]] = []
        self._pending_deletions: List[str] = []
        self._pending_wal_head: Optional[int] = None
        #: WAL segment id -> highest seqno its on-disk records cover.
        self._segment_max_seqno: Dict[int, int] = {}
        self._closed = False

        os.makedirs(self.data_dir, exist_ok=True)
        if os.path.exists(current_path(self.data_dir)):
            self.last_recovery = self._recover(config)
        else:
            if config is None:
                raise DurabilityError(
                    f"{self.data_dir} holds no store and no config was given"
                )
            self.last_recovery = self._create(config)
        self.config = self._tree.config

    # ------------------------------------------------------------------
    # Creation / recovery
    # ------------------------------------------------------------------
    def _config_state(self, config: SystemConfig) -> Dict[str, object]:
        from repro.persist.snapshot import config_to_state

        return config_to_state(config)

    def _create(self, config: SystemConfig) -> RecoveryReport:
        leftovers = [
            name
            for name in os.listdir(self.data_dir)
            if name.endswith(".sst") or name.startswith(("wal-", "MANIFEST-"))
        ]
        if leftovers:
            raise DurabilityError(
                f"{self.data_dir} holds store files but no CURRENT pointer "
                f"({sorted(leftovers)[:4]}...); refusing to overwrite"
            )
        self._tree = LSMTree(config, profile=self._profile)
        self._tree.set_change_observer(self)
        self._state = ManifestState()
        self._state.config_state = self._config_state(config)
        self._state.wal_head = 1
        self._manifest = ManifestWriter(self.data_dir, 1)
        self._manifest.append_edit(self._state.snapshot_edit())
        self._state.edits_applied = 0  # own snapshot doesn't count as a delta
        write_current(self.data_dir, 1)
        self._wal = WalWriter(segment_path(self.data_dir, 1))
        self._wal_head_id = 1
        self._next_seqno = 1
        self._acked_seqno = 0
        self._applied_seqno = 0
        # ``_flushed_seqno``: every op <= it has all its data in SSTables —
        # the only value a manifest checkpoint may record. ``_inflight_floor``:
        # the last *fully* applied op; while an op is mid-application it
        # lags to op_start - 1, which is what a mid-op flush may claim.
        self._flushed_seqno = 0
        self._inflight_floor = 0
        return RecoveryReport(
            created=True,
            manifest_id=1,
            manifest_edits=1,
            manifest_torn=False,
            runs_opened=0,
            recovered_entries=0,
            checkpoint_seqno=0,
            recovered_seqno=0,
            wal_segments=1,
            wal_records_replayed=0,
            wal_ops_replayed=0,
            wal_torn=False,
            orphans_removed=0,
            replay_wall_s=0.0,
        )

    def _recover(self, config: Optional[SystemConfig]) -> RecoveryReport:
        from repro.persist.snapshot import config_from_state

        t0 = perf_counter()
        state, manifest_id, manifest_torn = read_manifest(self.data_dir)
        if state.config_state is None:
            raise DurabilityError(
                f"manifest {manifest_id} in {self.data_dir} records no config"
            )
        recorded = config_from_state(dict(state.config_state))
        if config is not None and config != recorded:
            raise DurabilityError(
                f"{self.data_dir} was created under a different SystemConfig"
            )
        config = recorded

        tree = LSMTree(config, profile=self._profile)
        if state.n_levels:
            tree._ensure_level(state.n_levels)
        for level, (policy, pending) in zip(tree.levels, state.policies):
            level.set_policy_immediate(policy)
            level.pending_policy = pending
        if state.named_policy is not None:
            tree.compaction_policy = resolve_policy(state.named_policy)
        if state.bits_per_key is not None and tree.levels:
            tree.set_bits_per_key(state.bits_per_key)

        # Open live SSTables in manifest order (per level: oldest first).
        runs_opened = 0
        max_run_id = -1
        for level_no in sorted(state.files):
            tree._ensure_level(level_no)
            level = tree.level(level_no)
            for run_id, filename in state.files[level_no]:
                path = os.path.join(self.data_dir, filename)
                if not os.path.exists(path):
                    raise DurabilityError(
                        f"manifest names missing SSTable {filename}"
                    )
                run, _ = read_sstable(path, config.bloom_mode, tree._rng)
                if run.run_id != run_id or run.level_no != level_no:
                    raise DurabilityError(
                        f"SSTable {filename} identifies as run {run.run_id} "
                        f"level {run.level_no}, manifest says {run_id}/{level_no}"
                    )
                level.runs.append(run)
                runs_opened += 1
                max_run_id = max(max_run_id, run_id)
        # Seal/capacity fixup: flexible policy transitions mutate the active
        # run's capacity (and may seal it) without rewriting its file, so
        # the authoritative post-recovery state is recomputed from the
        # level's policy, not trusted from the header.
        for level in tree.levels:
            for run in level.runs[:-1]:
                run.sealed = True
            if level.runs and not level.runs[-1].sealed:
                tail = level.runs[-1]
                tail.capacity_entries = level.active_run_capacity()
                if tail.n_entries >= tail.capacity_entries:
                    tail.seal()
        tree._next_run_id = max(state.next_run_id, max_run_id + 1)
        tree.check_invariants()

        # Read every WAL segment; truncate torn tails to the last valid
        # record so post-recovery appends extend a clean prefix.
        readers: List[Tuple[int, WalReader]] = []
        wal_torn = False
        for file_id, path in list_segments(self.data_dir):
            reader = WalReader(path)
            if reader.torn:
                wal_torn = True
                os.truncate(path, reader.valid_bytes)
            readers.append((file_id, reader))
            self._segment_max_seqno[file_id] = reader.max_seqno

        checkpoint = state.checkpoint_seqno
        recovered_seqno = checkpoint
        for _, reader in readers:
            recovered_seqno = max(recovered_seqno, reader.max_seqno)

        # GC: orphan temp files, unreferenced SSTables (interrupted
        # commits), superseded manifests, fully-covered WAL segments.
        orphans = 0
        live = set(state.live_filenames())
        current_manifest = os.path.basename(
            manifest_path(self.data_dir, manifest_id)
        )
        for name in sorted(os.listdir(self.data_dir)):
            path = os.path.join(self.data_dir, name)
            if name.endswith(".tmp"):
                os.unlink(path)
                orphans += 1
            elif name.endswith(".sst") and name not in live:
                os.unlink(path)
                orphans += 1
            elif (
                name.startswith("MANIFEST-")
                and name.endswith(".log")
                and name != current_manifest
            ):
                os.unlink(path)
                orphans += 1
        # The live head is the highest segment on disk (a crash between
        # opening a new segment and committing its manifest edit can leave
        # the head one ahead of the recorded ``wal_head``).
        head_id = state.wal_head
        for file_id, _ in readers:
            head_id = max(head_id, file_id)
        kept_readers: List[Tuple[int, WalReader]] = []
        for file_id, reader in readers:
            if reader.max_seqno <= checkpoint and file_id < head_id:
                os.unlink(segment_path(self.data_dir, file_id))
                self._segment_max_seqno.pop(file_id, None)
                orphans += 1
            else:
                kept_readers.append((file_id, reader))

        # Wire up the live write path *before* replay: a replay-induced
        # flush must commit durably like any other flush.
        self._tree = tree
        self._state = state
        self._manifest = ManifestWriter(self.data_dir, manifest_id)
        self._manifest.edits_written = state.edits_applied
        self._wal = WalWriter(segment_path(self.data_dir, head_id))
        self._wal_head_id = head_id
        if head_id != state.wal_head:
            self._pending_wal_head = head_id
        self._next_seqno = recovered_seqno + 1
        self._acked_seqno = recovered_seqno
        self._applied_seqno = checkpoint
        self._flushed_seqno = checkpoint
        self._inflight_floor = checkpoint
        tree.set_change_observer(self)

        # Replay the WAL tail (ops past the checkpoint) into the memtable.
        records_replayed = 0
        ops_replayed = 0
        for _, reader in kept_readers:
            for record in reader.records:
                if record.op not in (OP_PUT, OP_DELETE) or record.n_ops == 0:
                    continue
                first, last = record.seqno, record.seqno + record.n_ops - 1
                if last <= checkpoint:
                    continue
                skip = max(0, checkpoint - first + 1)
                self._inflight_floor = max(
                    self._applied_seqno, first + skip - 1
                )
                if record.op == OP_PUT:
                    tree.put_batch(record.keys[skip:], record.values[skip:])
                else:
                    for key in record.keys[skip:]:
                        tree.delete(int(key))
                self._applied_seqno = last
                records_replayed += 1
                ops_replayed += record.n_ops - skip
        self._inflight_floor = self._applied_seqno = recovered_seqno
        if self._pending_ops:
            # A replay flush mid-commit never leaves buffered edits, but a
            # replay that ended exactly on a flush boundary may; land them.
            self._commit()

        wall = perf_counter() - t0
        self.telemetry["wall_recovery_s"] += wall
        self.telemetry["orphans_removed"] += orphans
        self.telemetry["wal_records_replayed"] += records_replayed
        return RecoveryReport(
            created=False,
            manifest_id=manifest_id,
            manifest_edits=state.edits_applied,
            manifest_torn=manifest_torn,
            runs_opened=runs_opened,
            recovered_entries=tree.total_entries,
            checkpoint_seqno=checkpoint,
            recovered_seqno=recovered_seqno,
            wal_segments=len(kept_readers),
            wal_records_replayed=records_replayed,
            wal_ops_replayed=ops_replayed,
            wal_torn=wal_torn,
            orphans_removed=orphans,
            replay_wall_s=wall,
        )

    # ------------------------------------------------------------------
    # Change-observer hooks (invoked synchronously by the inner tree)
    # ------------------------------------------------------------------
    def run_installed(
        self, level_no: int, run: SortedRun, replaced_run_id: Optional[int]
    ) -> None:
        faults.maybe_crash("commit.before")
        filename = _sstable_filename(run.run_id, level_no)
        t0 = perf_counter()
        n_bytes = write_sstable(os.path.join(self.data_dir, filename), run)
        self.telemetry["wall_sstable_s"] += perf_counter() - t0
        self.telemetry["sstables_written"] += 1
        self.telemetry["sstable_bytes"] += n_bytes
        if replaced_run_id is not None:
            self._pending_ops.append(["drop", level_no, replaced_run_id])
            self._pending_deletions.append(
                _sstable_filename(replaced_run_id, level_no)
            )
        self._pending_ops.append(["add", level_no, run.run_id, filename])
        faults.maybe_crash("commit.mid")

    def runs_dropped(self, level_no: int, run_ids: Sequence[int]) -> None:
        for run_id in run_ids:
            self._pending_ops.append(["drop", level_no, run_id])
            self._pending_deletions.append(_sstable_filename(run_id, level_no))

    def flush_completed(self) -> None:
        """One flush cascade finished: commit its edits and rotate the WAL.

        The drained memtable held every op up to ``_inflight_floor`` (plus
        possibly part of the op in flight), so that floor is now fully
        covered by SSTables and becomes the new manifest checkpoint.
        """
        self._flushed_seqno = self._inflight_floor
        self._rotate_wal()
        self._commit()

    # ------------------------------------------------------------------
    # Commit machinery
    # ------------------------------------------------------------------
    def _meta_fields(self) -> Dict[str, object]:
        tree = self._tree
        return {
            "n_levels": tree.n_levels,
            "policies": [
                [level.policy, level.pending_policy] for level in tree.levels
            ],
            "named_policy": tree.named_policy(),
            "next_run_id": tree._next_run_id,
            "bits_per_key": tree.bits_per_key,
        }

    def _rotate_wal(self) -> None:
        """Retire the live WAL segment and open the next one.

        Called at flush commits: everything up to ``_checkpoint_floor`` is
        about to be covered by SSTables, so the retired segment becomes
        deletable once every seqno it holds falls under a later
        checkpoint. The new head id rides the same manifest edit.
        """
        old = self._wal
        old.close()
        old_id = self._wal_head_id
        self._segment_max_seqno[old_id] = max(
            old.max_seqno, self._segment_max_seqno.get(old_id, 0)
        )
        new_id = old_id + 1
        self._wal = WalWriter(segment_path(self.data_dir, new_id))
        self._wal_head_id = new_id
        self._pending_wal_head = new_id
        self.telemetry["wal_rotations"] += 1

    def _commit(self) -> None:
        """Append one manifest edit covering all buffered structure changes
        (plus current policy/meta state), then delete newly dead files."""
        if self._closed:
            raise DurabilityError(f"store at {self.data_dir} is closed")
        edit: Dict[str, object] = {
            "ops": self._pending_ops,
            "checkpoint_seqno": self._flushed_seqno,
        }
        edit.update(self._meta_fields())
        if self._pending_wal_head is not None:
            edit["wal_head"] = self._pending_wal_head
        t0 = perf_counter()
        self._manifest.append_edit(edit)
        self.telemetry["wall_manifest_s"] += perf_counter() - t0
        self.telemetry["manifest_edits"] += 1
        self.telemetry["commits"] += 1
        self._state.apply_edit(edit)
        self._pending_ops = []
        self._pending_wal_head = None
        # The edit is durable; dropped tables and covered WAL segments are
        # now unreferenced by any recovery path.
        for filename in self._pending_deletions:
            path = os.path.join(self.data_dir, filename)
            if os.path.exists(path):
                os.unlink(path)
        self._pending_deletions = []
        checkpoint = self._state.checkpoint_seqno
        for file_id in sorted(self._segment_max_seqno):
            if (
                file_id < self._wal_head_id
                and self._segment_max_seqno[file_id] <= checkpoint
            ):
                path = segment_path(self.data_dir, file_id)
                if os.path.exists(path):
                    os.unlink(path)
                del self._segment_max_seqno[file_id]
        if self._manifest.edits_written >= self.rotate_manifest_every:
            self._rotate_manifest()

    def _rotate_manifest(self) -> None:
        """Write a snapshot manifest and atomically repoint CURRENT at it."""
        old = self._manifest
        new_id = old.manifest_id + 1
        writer = ManifestWriter(self.data_dir, new_id)
        t0 = perf_counter()
        writer.append_edit(self._state.snapshot_edit())
        write_current(self.data_dir, new_id)
        self.telemetry["wall_manifest_s"] += perf_counter() - t0
        old.close()
        os.unlink(old.path)
        self._manifest = writer
        self._manifest.edits_written = 0
        self.telemetry["manifest_rotations"] += 1

    def _commit_meta(self) -> None:
        """Commit buffered edits (possibly none — policy metadata alone).

        The checkpoint stays at ``_flushed_seqno``: a metadata commit
        moves no data into SSTables, so it must not let the WAL tail
        (acked ops still living only in the memtable) become deletable.
        """
        self._commit()

    # ------------------------------------------------------------------
    # Write path (WAL first, then the tree)
    # ------------------------------------------------------------------
    def _ack_wal_put(self, keys: np.ndarray, values: np.ndarray) -> int:
        seq = self._next_seqno
        t0 = perf_counter()
        before = self._wal.bytes_appended
        self._wal.append_put(seq, keys, values)
        self._next_seqno = seq + len(keys)
        self._wal.sync(self._next_seqno - 1)
        self.telemetry["wall_wal_s"] += perf_counter() - t0
        self.telemetry["wal_bytes"] += self._wal.bytes_appended - before
        self.telemetry["wal_records"] += 1
        self.telemetry["wal_syncs"] += 1
        self._acked_seqno = self._next_seqno - 1
        return seq

    def _ack_wal_delete(self, keys: np.ndarray) -> int:
        seq = self._next_seqno
        t0 = perf_counter()
        before = self._wal.bytes_appended
        self._wal.append_delete(seq, keys)
        self._next_seqno = seq + len(keys)
        self._wal.sync(self._next_seqno - 1)
        self.telemetry["wall_wal_s"] += perf_counter() - t0
        self.telemetry["wal_bytes"] += self._wal.bytes_appended - before
        self.telemetry["wal_records"] += 1
        self.telemetry["wal_syncs"] += 1
        self._acked_seqno = self._next_seqno - 1
        return seq

    @property
    def acked_seqno(self) -> int:
        """Highest sequence number covered by an fsync'd sync marker."""
        return self._acked_seqno

    def put(self, key: int, value: int) -> None:
        self.put_batch(
            np.array([key], dtype=np.int64), np.array([value], dtype=np.int64)
        )

    def delete(self, key: int) -> None:
        keys = np.array([key], dtype=np.int64)
        seq = self._ack_wal_delete(keys)
        self._inflight_floor = seq - 1
        self._tree.delete(int(key))
        self._applied_seqno = self._inflight_floor = self._next_seqno - 1

    def put_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if len(keys) == 0:
            return
        if (values == TOMBSTONE).any():
            raise ValueError(
                "value collides with the tombstone sentinel; "
                f"use a value other than {TOMBSTONE}"
            )
        seq = self._ack_wal_put(keys, values)
        # Conservative floor while this op is in flight: a flush mid-batch
        # may only checkpoint the last op *fully* applied before it.
        self._inflight_floor = seq - 1
        self._tree.put_batch(keys, values)
        self._applied_seqno = self._inflight_floor = self._next_seqno - 1

    def bulk_load(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        distribute: bool = False,
    ) -> None:
        """Bulk-populate the empty store; runs land directly as SSTables
        (no WAL traffic — there is nothing to replay)."""
        self._tree.bulk_load(keys, values, distribute=distribute)
        self._commit_meta()

    # ------------------------------------------------------------------
    # Read path (pure delegation — reads never touch the durable layer)
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[int]:
        return self._tree.get(key)

    def get_strict(self, key: int) -> int:
        return self._tree.get_strict(key)

    def get_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self._tree.get_batch(keys)

    def range_lookup(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        return self._tree.range_lookup(lo, hi)

    def range_scan(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._tree.range_scan(lo, hi)

    def range_scan_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._tree.range_scan_batch(los, his)

    # ------------------------------------------------------------------
    # Mission windows / tuning surface (KVEngine contract)
    # ------------------------------------------------------------------
    def begin_mission(self) -> None:
        self._tree.begin_mission()

    def end_mission(self) -> MissionStats:
        return self._tree.end_mission()

    def tuning_targets(self) -> List["DurableStore"]:
        """The store itself: tuners (and the serving write path) must go
        through the WAL-wrapped surface, never the bare inner tree."""
        return [self]

    def last_mission_breakdown(self) -> List[MissionStats]:
        return self._tree.last_mission_breakdown()

    def policies(self) -> List[int]:
        return self._tree.policies()

    def apply_transition(
        self, policies: Sequence[int], transition: TransitionKind
    ) -> None:
        self._tree.apply_transition(policies, transition)
        self._commit_meta()

    def named_policy(self) -> Optional[str]:
        return self._tree.named_policy()

    def apply_named_policy(
        self,
        policy: PolicyLike,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
    ) -> None:
        self._tree.apply_named_policy(policy, transition)
        self._commit_meta()

    # Tuner-facing tree surface (tuning_targets() returns the store, so
    # everything a Tuner reads or mutates on a "tree" must exist here).
    @property
    def levels(self):
        return self._tree.levels

    @property
    def n_levels(self) -> int:
        return self._tree.n_levels

    def level(self, level_no: int):
        return self._tree.level(level_no)

    @property
    def compaction_policy(self):
        return self._tree.compaction_policy

    @property
    def memtable(self):
        return self._tree.memtable

    @property
    def read_profiler(self):
        return self._tree.read_profiler

    def set_policy(
        self, level_no: int, new_policy: int, transition: TransitionKind
    ) -> None:
        self._tree.set_policy(level_no, new_policy, transition)
        self._commit_meta()

    def set_policies(
        self, new_policies: Sequence[int], transition: TransitionKind
    ) -> None:
        self._tree.set_policies(new_policies, transition)
        self._commit_meta()

    def set_named_policy(
        self,
        policy: PolicyLike,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
    ) -> None:
        self._tree.set_named_policy(policy, transition)
        self._commit_meta()

    def set_bits_per_key(self, bits_per_key: float) -> None:
        self._tree.set_bits_per_key(bits_per_key)
        self._commit_meta()

    @property
    def bits_per_key(self) -> float:
        return self._tree.bits_per_key

    def describe(self) -> List[Dict[str, object]]:
        return self._tree.describe()

    def read_amplification_snapshot(self) -> Dict[int, int]:
        return self._tree.read_amplification_snapshot()

    # ------------------------------------------------------------------
    # Observability / introspection (KVEngine contract)
    # ------------------------------------------------------------------
    def set_tracer(self, tracer) -> None:
        self._tree.set_tracer(tracer)

    @property
    def tracer(self):
        return self._tree.tracer

    @property
    def stats(self):
        return self._tree.stats

    @property
    def cache_hits(self) -> int:
        return self._tree.cache_hits

    @property
    def cache_misses(self) -> int:
        return self._tree.cache_misses

    @property
    def io_counters(self) -> IOCounters:
        return self._tree.io_counters

    @property
    def clock_now(self) -> float:
        return self._tree.clock_now

    @property
    def total_entries(self) -> int:
        return self._tree.total_entries

    def check_invariants(self) -> None:
        self._tree.check_invariants()
        for level_no, runs in self._state.files.items():
            manifest_ids = [run_id for run_id, _ in runs]
            tree_ids = [
                run.run_id for run in self._tree.level(level_no).runs
            ]
            if manifest_ids != tree_ids:
                raise DurabilityError(
                    f"level {level_no}: manifest runs {manifest_ids} diverge "
                    f"from tree runs {tree_ids}"
                )
            for _, filename in runs:
                if not os.path.exists(os.path.join(self.data_dir, filename)):
                    raise DurabilityError(
                        f"live SSTable {filename} missing on disk"
                    )

    # ------------------------------------------------------------------
    # Snapshot interop (repro.persist): a DurableStore can still checkpoint
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Whole-store snapshot (tree state + durable watermarks).

        ``repro.persist`` stores this alongside the config and data_dir;
        :meth:`load_state_dict` re-materializes the directory from it.
        """
        return {
            "tree": self._tree.state_dict(),
            "data_dir": self.data_dir,
            "next_seqno": self._next_seqno,
            "acked_seqno": self._acked_seqno,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore from a snapshot and re-materialize the directory.

        The on-disk WAL/SSTables/manifest are replaced wholesale by the
        snapshot's state: every run is rewritten as an SSTable, a fresh
        manifest (and empty WAL) is installed, and the old generation's
        files are removed — after this the directory recovers to exactly
        the snapshot, not to whatever preceded the load.
        """
        observer = self._tree.change_observer
        self._tree.set_change_observer(None)
        try:
            self._tree.load_state_dict(state["tree"])
        finally:
            self._tree.set_change_observer(observer)
        self._next_seqno = int(state["next_seqno"])
        self._acked_seqno = int(state["acked_seqno"])
        self._applied_seqno = self._inflight_floor = self._next_seqno - 1
        self._rematerialize()

    def _rematerialize(self) -> None:
        """Rebuild every durable file from the current in-memory tree."""
        tree = self._tree
        self._wal.close()
        self._manifest.close()
        old_files = [
            name
            for name in os.listdir(self.data_dir)
            if name.endswith((".sst", ".tmp"))
            or name.startswith(("wal-", "MANIFEST-"))
        ]
        new_state = ManifestState()
        new_state.config_state = self._config_state(tree.config)
        new_id = self._manifest.manifest_id + 1
        kept: set = set()
        for level in tree.levels:
            for run in level.runs:
                filename = _sstable_filename(run.run_id, level.level_no)
                write_sstable(os.path.join(self.data_dir, filename), run)
                new_state.files.setdefault(level.level_no, []).append(
                    (run.run_id, filename)
                )
                kept.add(filename)
        # Everything up to the snapshot is in SSTables *except* the
        # memtable, which is journaled into the fresh WAL below under new
        # seqnos — so the checkpoint sits just before them.
        checkpoint = self._next_seqno - 1
        new_state.checkpoint_seqno = checkpoint
        new_state.wal_head = 1
        new_state.n_levels = tree.n_levels
        new_state.policies = [
            (level.policy, level.pending_policy) for level in tree.levels
        ]
        new_state.named_policy = tree.named_policy()
        new_state.next_run_id = tree._next_run_id
        new_state.bits_per_key = tree.bits_per_key
        writer = ManifestWriter(self.data_dir, new_id)
        writer.append_edit(new_state.snapshot_edit())
        write_current(self.data_dir, new_id)
        for name in old_files:
            if name in kept:
                continue
            path = os.path.join(self.data_dir, name)
            if os.path.exists(path):
                os.unlink(path)
        self._manifest = writer
        self._manifest.edits_written = 0
        self._state = new_state
        self._segment_max_seqno = {}
        self._pending_ops = []
        self._pending_deletions = []
        self._pending_wal_head = None
        self._wal = WalWriter(segment_path(self.data_dir, 1))
        self._wal_head_id = 1
        self._flushed_seqno = checkpoint
        buffered = tree.memtable.range_items(MIN_KEY, MAX_KEY)
        if buffered:
            all_keys = np.fromiter(
                buffered.keys(), dtype=np.int64, count=len(buffered)
            )
            all_values = np.fromiter(
                buffered.values(), dtype=np.int64, count=len(buffered)
            )
            live = all_values != TOMBSTONE
            if live.any():
                self._ack_wal_put(all_keys[live], all_values[live])
            if (~live).any():
                self._ack_wal_delete(all_keys[~live])
        self._applied_seqno = self._inflight_floor = self._next_seqno - 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the WAL and manifest (the store stays readable
        on disk; reopen with ``DurableStore(data_dir)``)."""
        if self._closed:
            return
        self._wal.close()
        self._manifest.close()
        self._closed = True

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableStore(dir={self.data_dir!r}, "
            f"entries={self._tree.total_entries}, "
            f"acked_seqno={self._acked_seqno})"
        )
