"""Binary SSTable files mapping 1:1 onto in-memory :class:`SortedRun` s.

File layout (all integers little-endian; offsets from the file start)::

    header      : magic "RSST" | u32 version | u32 header_len
                  u32 level_no | u64 run_id | u64 n_entries
                  u32 entries_per_page | u8 bloom_mode | u8 sealed
                  f64 fpr | u64 capacity_entries
                  u64 keys_off | u64 values_off | u64 index_off
                  u64 bloom_off | u64 bloom_bits | u64 footer_off
    keys block  : int64[n_entries]            (sorted, strictly increasing)
    values block: int64[n_entries]            (TOMBSTONE encodes deletes)
    index block : int64[n_pages]              (fence pointers: min key/page)
    bloom block : packed bits (np.packbits)   (empty under ANALYTICAL mode)
    footer      : u32 crc32(everything before the footer) | magic "TSSR"

Blocks are plain contiguous arrays so a reader can ``np.fromfile`` (or
mmap) each one straight into the dtype it already uses in memory — no
row-by-row decode. The bloom block serializes the
:class:`~repro.bloom.filter.BitArrayBloomFilter` bit array for format
fidelity and offline inspection, but the in-memory run **rebuilds** its
filter from the keys on open (the filter is a pure function of
``(keys, fpr, run_id)``), which keeps recovered stores bit-identical to
never-crashed ones; the block's length is cross-checked instead.

The index block is likewise derivable (fence pointers are implicit:
``page = rank // entries_per_page``) and is cross-checked on read.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import NamedTuple

import numpy as np

from repro.config import BloomMode
from repro.durable import faults
from repro.durable.atomio import atomic_file
from repro.errors import DurabilityError
from repro.lsm.run import SortedRun

MAGIC = b"RSST"
FOOTER_MAGIC = b"TSSR"
VERSION = 1

_HEADER = struct.Struct("<4sIIIQQIBBdQQQQQQQ")
_FOOTER = struct.Struct("<I4s")

_BLOOM_MODE_CODES = {BloomMode.BIT_ARRAY: 0, BloomMode.ANALYTICAL: 1}
_BLOOM_MODE_FROM_CODE = {v: k for k, v in _BLOOM_MODE_CODES.items()}

#: ``sst-%08d-L%02d.sst`` — run ``run_id`` installed at level ``level_no``.
FILE_FMT = "sst-{:08d}-L{:02d}.sst"


def sstable_path(directory: str, run_id: int, level_no: int) -> str:
    return os.path.join(directory, FILE_FMT.format(run_id, level_no))


class SSTableInfo(NamedTuple):
    """Header metadata of a decoded SSTable."""

    run_id: int
    level_no: int
    n_entries: int
    entries_per_page: int
    bloom_mode: BloomMode
    sealed: bool
    fpr: float
    capacity_entries: int
    file_bytes: int


def _fence_pointers(keys: np.ndarray, entries_per_page: int) -> np.ndarray:
    """Min key of each fence-pointer page (empty for an empty run)."""
    if len(keys) == 0:
        return np.zeros(0, dtype=np.int64)
    return keys[::entries_per_page].astype(np.int64, copy=True)


def _bloom_block(run: SortedRun) -> "tuple[bytes, int]":
    """``(packed_bits, n_bits)`` for the run's filter (empty when the
    analytical filter is in use — it has no bit array to serialize)."""
    bloom = run._bloom
    bits = getattr(bloom, "_bits", None)
    if bits is None or len(bits) == 0:
        return b"", 0
    return np.packbits(bits).tobytes(), len(bits)


def write_sstable(path: str, run: SortedRun) -> int:
    """Serialize ``run`` to ``path``; returns the file size in bytes.

    Published through :func:`repro.durable.atomio.atomic_file`
    (tmp → fsync → rename → directory fsync), so a crash mid-write
    leaves at worst an orphan temp file, never a half-written table
    under a live name (recovery deletes orphans), and the publish
    itself survives the crash once this returns.
    """
    keys = np.ascontiguousarray(run.keys, dtype="<i8")
    values = np.ascontiguousarray(run.values, dtype="<i8")
    index = _fence_pointers(run.keys, run.entries_per_page).astype("<i8")
    bloom_bytes, bloom_bits = _bloom_block(run)
    bloom_mode = (
        BloomMode.BIT_ARRAY
        if run._bloom.__class__.__name__ == "BitArrayBloomFilter"
        else BloomMode.ANALYTICAL
    )

    keys_off = _HEADER.size
    values_off = keys_off + keys.nbytes
    index_off = values_off + values.nbytes
    bloom_off = index_off + index.nbytes
    footer_off = bloom_off + len(bloom_bytes)

    header = _HEADER.pack(
        MAGIC,
        VERSION,
        _HEADER.size,
        run.level_no,
        run.run_id,
        run.n_entries,
        run.entries_per_page,
        _BLOOM_MODE_CODES[bloom_mode],
        1 if run.sealed else 0,
        run.fpr,
        run.capacity_entries,
        keys_off,
        values_off,
        index_off,
        bloom_off,
        bloom_bits,
        footer_off,
    )
    body = b"".join(
        [header, keys.tobytes(), values.tobytes(), index.tobytes(), bloom_bytes]
    )
    footer = _FOOTER.pack(zlib.crc32(body), FOOTER_MAGIC)

    with atomic_file(path) as fh:
        if faults.crash_hit("sst.partial"):
            # Injected mid-write crash: half the body, no footer, no rename.
            fh.write(body[: max(1, len(body) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            faults.die()
        fh.write(body)
        fh.write(footer)
    return len(body) + len(footer)


def read_sstable(
    path: str,
    bloom_mode: BloomMode,
    rng: np.random.Generator,
) -> "tuple[SortedRun, SSTableInfo]":
    """Open an SSTable, verify it, and rebuild its :class:`SortedRun`.

    ``bloom_mode``/``rng`` come from the owning tree's configuration so
    the rebuilt filter is identical to the one the writer held. Raises
    :class:`DurabilityError` on any structural damage — a live table
    (one named by the manifest) must never be torn; torn *temp* files
    are garbage-collected before this is called.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _HEADER.size + _FOOTER.size:
        raise DurabilityError(f"SSTable {path}: file too short ({len(data)} bytes)")
    (
        magic,
        version,
        header_len,
        level_no,
        run_id,
        n_entries,
        entries_per_page,
        bloom_code,
        sealed,
        fpr,
        capacity_entries,
        keys_off,
        values_off,
        index_off,
        bloom_off,
        bloom_bits,
        footer_off,
    ) = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise DurabilityError(f"SSTable {path}: bad magic {magic!r}")
    if version != VERSION:
        raise DurabilityError(f"SSTable {path}: unsupported version {version}")
    if header_len != _HEADER.size:
        raise DurabilityError(f"SSTable {path}: bad header length {header_len}")
    if footer_off + _FOOTER.size != len(data):
        raise DurabilityError(
            f"SSTable {path}: truncated (expected {footer_off + _FOOTER.size} "
            f"bytes, found {len(data)})"
        )
    crc, footer_magic = _FOOTER.unpack_from(data, footer_off)
    if footer_magic != FOOTER_MAGIC:
        raise DurabilityError(f"SSTable {path}: bad footer magic {footer_magic!r}")
    if zlib.crc32(data[:footer_off]) != crc:
        raise DurabilityError(f"SSTable {path}: CRC mismatch")
    if _BLOOM_MODE_FROM_CODE.get(bloom_code) is None:
        raise DurabilityError(f"SSTable {path}: unknown bloom mode {bloom_code}")

    keys = np.frombuffer(data, dtype="<i8", count=n_entries, offset=keys_off)
    values = np.frombuffer(data, dtype="<i8", count=n_entries, offset=values_off)
    n_pages = -(-n_entries // entries_per_page) if n_entries else 0
    index = np.frombuffer(data, dtype="<i8", count=n_pages, offset=index_off)
    expected_index = _fence_pointers(
        keys.astype(np.int64), entries_per_page
    )
    if not np.array_equal(index, expected_index):
        raise DurabilityError(f"SSTable {path}: fence-pointer index mismatch")

    run = SortedRun(
        run_id=int(run_id),
        level_no=int(level_no),
        keys=keys.astype(np.int64),
        values=values.astype(np.int64),
        fpr=float(fpr),
        capacity_entries=int(capacity_entries),
        entries_per_page=int(entries_per_page),
        bloom_mode=bloom_mode,
        rng=rng,
        sealed=bool(sealed),
    )
    if bloom_mode is BloomMode.BIT_ARRAY:
        rebuilt_bytes, rebuilt_bits = _bloom_block(run)
        stored = data[bloom_off : bloom_off + len(rebuilt_bytes)]
        if rebuilt_bits != bloom_bits or stored != rebuilt_bytes:
            raise DurabilityError(f"SSTable {path}: bloom block mismatch")
    info = SSTableInfo(
        run_id=int(run_id),
        level_no=int(level_no),
        n_entries=int(n_entries),
        entries_per_page=int(entries_per_page),
        bloom_mode=_BLOOM_MODE_FROM_CODE[bloom_code],
        sealed=bool(sealed),
        fpr=float(fpr),
        capacity_entries=int(capacity_entries),
        file_bytes=len(data),
    )
    return run, info
