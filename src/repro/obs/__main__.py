"""Telemetry CLI: render the registry view of a snapshot or a demo run.

Examples::

    # Metrics view of any repro.persist snapshot (engine / store / tuner
    # / obs kinds are auto-detected from the file):
    python -m repro.obs run.ckpt
    python -m repro.obs run.ckpt --format json

    # Decision timeline replay of an audit-carrying snapshot:
    python -m repro.obs run.ckpt --timeline

    # Self-contained demo: short tuned run with tracing + audit on,
    # printing the Prometheus exposition, a span tree and the timeline:
    python -m repro.obs --demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.obs.audit import DecisionAuditLog, format_decision_timeline
from repro.obs.collect import (
    collect_engine_metrics,
    collect_store_metrics,
    collect_tuner_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _registry_from_snapshot(
    path: str,
) -> Tuple[MetricsRegistry, Optional[DecisionAuditLog]]:
    """Rebuild the snapshotted component and collect its registry view.

    Engine/store/tuner state round-trips bit-exactly, so the collected
    registry equals the live system's view at snapshot time; ``obs``
    snapshots carry a saved registry directly.
    """
    from repro.persist import (
        load_engine,
        load_obs,
        load_snapshot,
        load_tuner,
        store_from_snapshot,
    )

    kind = load_snapshot(path)["kind"]
    if kind == "engine":
        return collect_engine_metrics(load_engine(path)), None
    if kind == "store":
        store = store_from_snapshot(load_snapshot(path, expected_kind="store"))
        registry = collect_store_metrics(store)
        audits = [
            t.audit
            for t in dict.fromkeys(store.tuners)
            if getattr(t, "audit", None) is not None
        ]
        merged: Optional[DecisionAuditLog] = None
        if len(audits) == 1:
            merged = audits[0]
        elif audits:
            merged = DecisionAuditLog()
            for audit in audits:
                for event in audit.events:
                    merged.record(event.kind, event.mission, **event.data)
        return registry, merged
    if kind == "tuner":
        tuner = load_tuner(path)
        return collect_tuner_metrics([tuner]), getattr(tuner, "audit", None)
    if kind == "obs":
        registry, audit = load_obs(path)
        return registry if registry is not None else MetricsRegistry(), audit
    raise ReproError(
        f"snapshot kind {kind!r} has no registry view "
        "(expected engine / store / tuner / obs)"
    )


def _run_demo(missions: int, fmt: str) -> int:
    """A tiny tuned run with every telemetry layer enabled."""
    from repro.core.lerp import LerpConfig
    from repro.core.ruskey import RusKey
    from repro.obs.collect import collect_store_metrics
    from repro.workload import UniformWorkload

    workload = UniformWorkload(n_records=4000, lookup_fraction=0.5, seed=7)
    # A short burn-in so a handful of demo missions already produces
    # auditable decisions (the default 5-mission burn-in would swallow
    # the whole demo stream).
    store = RusKey(n_shards=2, lerp_config=LerpConfig(burn_in_missions=1))
    audit = DecisionAuditLog()
    store.attach_audit(audit)
    tracer = Tracer(sample_every=2)
    store.engine.set_tracer(tracer)
    keys, values = workload.load_records()
    store.bulk_load(keys, values)
    for mission in workload.missions(missions, 600):
        store.run_mission(mission)
    print(collect_store_metrics(store).render(fmt))
    print(f"--- spans (kept {tracer.roots_kept}/{tracer.roots_seen} roots)")
    for root in tracer.spans()[:3]:
        _print_span(root)
    print("--- decision timeline")
    print(format_decision_timeline(audit), end="")
    return 0


def _print_span(span, depth: int = 0) -> None:
    print(f"{'  ' * depth}{span.name}  {span.duration * 1e3:.3f}ms")
    for child in span.children:
        _print_span(child, depth + 1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "snapshot",
        nargs="?",
        help="a repro.persist snapshot file (engine/store/tuner/obs kind)",
    )
    parser.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format (default: prometheus text)",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="print the decision-timeline replay instead of metrics",
    )
    parser.add_argument(
        "--output", help="write to this file instead of stdout"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a short tuned mission stream with all telemetry enabled",
    )
    parser.add_argument(
        "--missions",
        type=int,
        default=6,
        help="demo mission count (default 6)",
    )
    args = parser.parse_args(argv)
    if args.demo:
        return _run_demo(args.missions, args.format)
    if not args.snapshot:
        parser.error("pass a snapshot path or --demo")
    try:
        registry, audit = _registry_from_snapshot(args.snapshot)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.timeline:
        if audit is None or len(audit) == 0:
            print(
                "error: snapshot carries no decision audit events",
                file=sys.stderr,
            )
            return 1
        text = format_decision_timeline(audit)
    else:
        text = registry.render(args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
