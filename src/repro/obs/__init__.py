"""Unified telemetry: metrics registry, span tracing, RL decision audit.

Three layers, one contract (DESIGN.md §12):

* :mod:`repro.obs.metrics` — labeled counter/gauge/histogram families
  with associative cross-shard merge and Prometheus-text + JSON
  exposition (``MetricsRegistry.render()``);
* :mod:`repro.obs.trace` — nested wall-clock spans through
  ``KVServer._serve_batch`` → ``ShardedStore`` → ``LSMTree``, absorbing
  ``ReadPathProfiler`` stage timers as child spans, with deterministic
  sampling and JSONL export;
* :mod:`repro.obs.audit` — structured audit log of every RL tuning
  decision (arm, ε, reward, detector restarts), replayable into a
  per-mission decision timeline.

The contract: telemetry observes the host wall clock only. It never
charges the simulated clock, never draws from the Bloom RNG stream and
never touches engine counters — instrumented-on and instrumented-off
runs are bit-identical in every simulated observable, and disabled
instrumentation costs one ``is None`` test per batch.

``python -m repro.obs`` renders the registry view of a live demo run or
of any ``repro.persist`` snapshot file.
"""

from repro.obs.audit import (
    AuditEvent,
    DecisionAuditLog,
    format_decision_timeline,
)
from repro.obs.collect import (
    collect_durable_metrics,
    collect_engine_metrics,
    collect_server_metrics,
    collect_store_metrics,
    collect_tuner_metrics,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricFamily,
    MetricsRegistry,
    flatten_numeric,
    parse_prometheus_text,
    registry_from_payload,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "AuditEvent",
    "Counter",
    "DecisionAuditLog",
    "Gauge",
    "HistogramMetric",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "collect_durable_metrics",
    "collect_engine_metrics",
    "collect_server_metrics",
    "collect_store_metrics",
    "collect_tuner_metrics",
    "flatten_numeric",
    "format_decision_timeline",
    "parse_prometheus_text",
    "registry_from_payload",
]
