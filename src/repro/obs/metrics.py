"""Labeled metrics registry with Prometheus-text and JSON exposition.

The registry holds *families* — a metric name plus a fixed label schema —
and each family holds one series per distinct label-value tuple. Three
kinds are supported:

* **counter** — monotone non-negative accumulator (``inc``);
* **gauge** — a set-point (``set`` / ``inc``); in this codebase gauges
  carry *distributive* quantities (entry counts, clock totals), so the
  cross-shard merge rule is addition, same as counters;
* **histogram** — log-bucketed distribution reusing
  :class:`~repro.serve.latency.LatencyHistogram`'s geometric bucket math,
  so serving-layer latency histograms merge straight into the registry.

Registries **merge associatively and commutatively** (counters/gauges add,
histograms add bucket-wise), which is what makes per-shard and per-process
registries aggregate after the fact exactly like
:class:`LatencyHistogram` parts do — a hypothesis property test in
``tests/test_obs.py`` checks this.

Everything here is host-side bookkeeping: nothing touches the simulated
clock, the Bloom RNG stream, or any engine counter. The registry observes;
it never participates.
"""

from __future__ import annotations

import json
import math
import re
from threading import Lock
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import ObsError
from repro.serve.latency import (
    DEFAULT_BUCKETS_PER_DECADE,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MIN_LATENCY,
    LatencyHistogram,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default per-family series ceiling. High-cardinality labels (request ids,
#: raw keys) are an observability anti-pattern — the guard turns them into
#: a loud error instead of unbounded memory.
DEFAULT_MAX_SERIES = 1024


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """Monotone accumulator; merge rule is addition."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def state_dict(self) -> Dict[str, object]:
        return {"value": self.value}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.value = float(state["value"])


class Gauge:
    """A set-point. The merge rule is addition: registry gauges carry
    distributive quantities (entries, simulated seconds, queue depths), so
    cross-shard aggregation sums — the same rule ``ShardedStore`` applies
    to its own counters."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def merge(self, other: "Gauge") -> None:
        self.value += other.value

    def state_dict(self) -> Dict[str, object]:
        return {"value": self.value}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.value = float(state["value"])


class HistogramMetric:
    """A log-bucketed distribution (``LatencyHistogram`` under the hood)."""

    kind = "histogram"
    __slots__ = ("hist",)

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_LATENCY,
        max_value: float = DEFAULT_MAX_LATENCY,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        self.hist = LatencyHistogram(min_value, max_value, buckets_per_decade)

    def observe(self, value: float) -> None:
        self.hist.record(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self.hist.record_many(values)

    def merge_histogram(self, hist: LatencyHistogram) -> None:
        """Fold an existing :class:`LatencyHistogram` (e.g. a serving-lane
        latency histogram) into this series; bucketing must match."""
        self.hist.merge(hist)

    def merge(self, other: "HistogramMetric") -> None:
        self.hist.merge(other.hist)

    def state_dict(self) -> Dict[str, object]:
        return self.hist.state_dict()

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.hist = LatencyHistogram.from_state_dict(dict(state))


class MetricFamily:
    """One metric name + label schema, holding one series per label tuple."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        max_series: int,
        factory: Callable[[], object],
        lock: Lock,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ObsError(f"invalid label name {label!r} on {name!r}")
        if len(set(label_names)) != len(label_names):
            raise ObsError(f"duplicate label names on {name!r}")
        if max_series < 1:
            raise ObsError(f"max_series must be >= 1, got {max_series}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self.max_series = int(max_series)
        self._factory = factory
        self._series: Dict[Tuple[str, ...], object] = {}
        self._lock = lock

    def labels(self, **labels: object):
        """The series for one label-value assignment (created on first
        use). The label *names* must match the family schema exactly; the
        values are stringified. Raises :class:`ObsError` once the family
        exceeds ``max_series`` distinct label tuples."""
        if set(labels) != set(self.label_names):
            raise ObsError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.label_names)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        return self._child(key)

    def _child(self, key: Tuple[str, ...]):
        series = self._series.get(key)
        if series is not None:
            return series
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self.max_series:
                    raise ObsError(
                        f"metric {self.name!r} exceeded its series budget "
                        f"({self.max_series}); a label is likely carrying "
                        "unbounded values (keys, request ids, ...)"
                    )
                series = self._factory()
                self._series[key] = series
        return series

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """All (label-values, metric) pairs in sorted label order."""
        with self._lock:
            return sorted(self._series.items())

    def __len__(self) -> int:
        return len(self._series)

    def compatible_with(self, other: "MetricFamily") -> bool:
        return (
            self.name == other.name
            and self.kind == other.kind
            and self.label_names == other.label_names
        )


class MetricsRegistry:
    """A named collection of metric families with associative merge and
    Prometheus-text / JSON exposition."""

    # Process-local mutex, recreated fresh in every process.
    _snapshot_exempt = frozenset({"_lock"})

    def __init__(self, default_max_series: int = DEFAULT_MAX_SERIES) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = Lock()
        self.default_max_series = int(default_max_series)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        max_series: Optional[int],
        factory: Callable[[], object],
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != tuple(labels):
                    raise ObsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.label_names)}; cannot re-register "
                        f"as {kind} with labels {list(labels)}"
                    )
                return existing
            family = MetricFamily(
                name,
                kind,
                help,
                labels,
                max_series or self.default_max_series,
                factory,
                self._lock,
            )
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> MetricFamily:
        """Register (or fetch) a counter family. Idempotent for identical
        shape; an incompatible re-registration raises."""
        return self._family(name, "counter", help, labels, max_series, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labels, max_series, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: Optional[int] = None,
        min_value: float = DEFAULT_MIN_LATENCY,
        max_value: float = DEFAULT_MAX_LATENCY,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> MetricFamily:
        """Register (or fetch) a log-bucketed histogram family."""

        def factory() -> HistogramMetric:
            return HistogramMetric(min_value, max_value, buckets_per_decade)

        return self._family(name, "histogram", help, labels, max_series, factory)

    def families(self) -> List[MetricFamily]:
        """All families sorted by metric name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    # ------------------------------------------------------------------
    # Merge (associative + commutative)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place and return ``self``.

        Counters and gauges add, histograms add bucket-wise; series
        missing on one side are copied over. The operation is associative
        and commutative, so per-shard registries aggregate in any
        grouping — exactly the ``LatencyHistogram.merge`` contract lifted
        to whole registries.
        """
        for theirs in other.families():
            mine = self._family(
                theirs.name,
                theirs.kind,
                theirs.help,
                theirs.label_names,
                theirs.max_series,
                theirs._factory,
            )
            if not mine.compatible_with(theirs):  # pragma: no cover - _family raises first
                raise ObsError(f"incompatible families for {theirs.name!r}")
            for key, series in theirs.series():
                target = mine._child(key)
                fresh = theirs._factory()
                fresh.load_state_dict(series.state_dict())
                target.merge(fresh)
        return self

    @classmethod
    def merged(cls, parts: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the sum of ``parts``."""
        result = cls()
        for part in parts:
            result.merge(part)
        return result

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render(self, fmt: str = "prometheus") -> str:
        """The whole registry in Prometheus text format (default) or as an
        indented JSON document (``fmt="json"``)."""
        if fmt == "prometheus":
            return self._render_prometheus()
        if fmt == "json":
            return json.dumps(self.as_dict(), indent=2, sort_keys=True)
        raise ObsError(f"render format must be prometheus or json, got {fmt!r}")

    def _render_prometheus(self) -> str:
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, series in family.series():
                base = _label_text(family.label_names, key)
                if family.kind in ("counter", "gauge"):
                    lines.append(
                        f"{family.name}{base} {_format_value(series.value)}"
                    )
                    continue
                hist = series.hist
                cumulative = 0
                for index in np.flatnonzero(hist.counts):
                    cumulative = int(hist.counts[: index + 1].sum())
                    _, hi = hist.bucket_edges(int(index))
                    le = _label_text(
                        family.label_names + ("le",),
                        key + (_format_value(hi),),
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                inf = _label_text(
                    family.label_names + ("le",), key + ("+Inf",)
                )
                lines.append(f"{family.name}_bucket{inf} {hist.count}")
                lines.append(
                    f"{family.name}_sum{base} {_format_value(hist.sum)}"
                )
                lines.append(f"{family.name}_count{base} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view: one entry per family, one record per series
        (histograms expose exact count/sum/min/max plus p50/p99/p99.9)."""
        families: Dict[str, object] = {}
        for family in self.families():
            records: List[Dict[str, object]] = []
            for key, series in family.series():
                record: Dict[str, object] = {
                    "labels": dict(zip(family.label_names, key)),
                }
                if family.kind in ("counter", "gauge"):
                    record["value"] = series.value
                else:
                    hist = series.hist
                    record.update(
                        count=hist.count,
                        sum=hist.sum,
                        min=hist.min_seen if hist.count else 0.0,
                        max=hist.max_seen,
                        mean=hist.mean,
                        **{
                            k.rsplit("_", 1)[0]: v
                            for k, v in hist.percentile_summary(
                                (50.0, 99.0, 99.9), unit="s"
                            ).items()
                        },
                    )
                records.append(record)
            families[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": records,
            }
        return {"families": families}

    # ------------------------------------------------------------------
    # Persistence (see repro.persist.save_obs / load_obs)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot (primitives + numpy arrays only)."""
        families: List[Dict[str, object]] = []
        for family in self.families():
            extra: Dict[str, object] = {}
            if family.kind == "histogram":
                probe = family._factory()
                extra = {
                    "min_value": probe.hist.min_latency,
                    "max_value": probe.hist.max_latency,
                    "buckets_per_decade": probe.hist.buckets_per_decade,
                }
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    "max_series": family.max_series,
                    "series": [
                        {"key": list(key), "state": series.state_dict()}
                        for key, series in family.series()
                    ],
                    **extra,
                }
            )
        return {"families": families, "default_max_series": self.default_max_series}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore the registry in place from :meth:`state_dict` output."""
        self._families = {}
        self.default_max_series = int(
            state.get("default_max_series", DEFAULT_MAX_SERIES)
        )
        for fam_state in state["families"]:
            kind = fam_state["kind"]
            name = fam_state["name"]
            kwargs = dict(
                help=fam_state["help"],
                labels=tuple(fam_state["labels"]),
                max_series=int(fam_state["max_series"]),
            )
            if kind == "counter":
                family = self.counter(name, **kwargs)
            elif kind == "gauge":
                family = self.gauge(name, **kwargs)
            elif kind == "histogram":
                family = self.histogram(
                    name,
                    min_value=float(fam_state["min_value"]),
                    max_value=float(fam_state["max_value"]),
                    buckets_per_decade=int(fam_state["buckets_per_decade"]),
                    **kwargs,
                )
            else:
                raise ObsError(f"unknown metric kind {kind!r} in state")
            for item in fam_state["series"]:
                series = family._child(tuple(item["key"]))
                series.load_state_dict(item["state"])

    @classmethod
    def from_state_dict(cls, state: Mapping[str, object]) -> "MetricsRegistry":
        registry = cls()
        registry.load_state_dict(state)
        return registry


# ----------------------------------------------------------------------
# Benchmark payload bridging (see benchmarks/_common.py)
# ----------------------------------------------------------------------
def flatten_numeric(
    payload: object, prefix: str = ""
) -> List[Tuple[str, float]]:
    """Dotted-path numeric leaves of a nested dict/list payload, skipping
    booleans — the same leaf set ``scripts/bench_compare.py`` diffs."""
    leaves: List[Tuple[str, float]] = []
    if isinstance(payload, Mapping):
        for key in payload:
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.extend(flatten_numeric(payload[key], path))
    elif isinstance(payload, (list, tuple)):
        for i, item in enumerate(payload):
            path = f"{prefix}.{i}" if prefix else str(i)
            leaves.extend(flatten_numeric(item, path))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float, np.integer, np.floating)):
        leaves.append((prefix, float(payload)))
    return leaves


def registry_from_payload(
    benchmark: str,
    payload: Mapping[str, object],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """A registry holding one gauge series per numeric leaf of a benchmark
    metrics record, labeled by benchmark name and dotted leaf path.

    This makes every benchmark's machine-readable record exportable in
    Prometheus text format without inventing per-benchmark metric names
    (system names like ``"static K=5"`` are not legal metric-name
    characters, but are fine as label values).
    """
    registry = registry if registry is not None else MetricsRegistry()
    family = registry.gauge(
        "repro_bench_metric",
        "one series per numeric leaf of a benchmark metrics record",
        labels=("benchmark", "path"),
        max_series=4096,
    )
    for path, value in flatten_numeric(payload):
        family.labels(benchmark=benchmark, path=path).set(value)
    return registry


# ----------------------------------------------------------------------
# Exposition parsing (tests + CI smoke)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(text: str) -> Dict[str, object]:
    """Parse Prometheus text exposition into ``{"types": {...},
    "samples": {...}}`` where sample keys are ``(name, ((label, value),
    ...))`` tuples. Strict enough for round-trip tests and the CI smoke;
    not a general-purpose scraper."""
    types: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObsError(f"unparseable exposition line: {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            (name, _unescape_label_value(value))
            for name, value in _LABEL_PAIR_RE.findall(labels_text)
        )
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples[(match.group("name"), labels)] = value
    return {"types": types, "samples": samples}
