"""Span-based wall-clock tracing for the serve → engine → tree path.

A :class:`Tracer` records *spans* — named wall-clock intervals with
attributes — nested via a per-thread stack, so a serving batch produces a
tree like::

    serve.batch
    └── serve.get_batch
        └── store.get_batch
            └── lsm.get_batch
                ├── stage.bloom      (absorbed from ReadPathProfiler)
                └── stage.search

Design constraints (the PR 6/7 invariant):

* **Zero simulated impact.** The tracer reads ``time.perf_counter`` only.
  It never charges the :class:`~repro.storage.simclock.SimClock`, never
  draws from any RNG (sampling is a deterministic counter, not a coin
  flip), and never touches engine counters — instrumented-on and
  instrumented-off runs are bit-identical in every simulated observable
  (``tests/test_obs.py`` checks this with a twin run).
* **Near-zero cost when absent.** Instrumented call sites hold the tracer
  in a local and skip everything on ``None`` — one attribute load and one
  ``is None`` test per batch, the same idiom ``ReadPathProfiler`` uses.

Threading: the span stack is ``threading.local`` (each serving lane
thread nests its own spans); finished *root* spans land in one bounded,
lock-guarded buffer. Sampling keeps every ``sample_every``-th root span
(children ride along with their root).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

from repro.errors import ObsError

#: Default bound on retained root spans (oldest evicted first).
DEFAULT_MAX_SPANS = 4096


class Span:
    """One named wall-clock interval with attributes and child spans."""

    __slots__ = ("name", "start", "end", "attrs", "children", "synthetic")

    def __init__(
        self,
        name: str,
        start: float,
        attrs: Optional[Dict[str, object]] = None,
        synthetic: bool = False,
    ) -> None:
        self.name = name
        self.start = start
        self.end = start
        self.attrs: Dict[str, object] = attrs or {}
        self.children: List[Span] = []
        self.synthetic = synthetic

    @property
    def duration(self) -> float:
        """Wall seconds the span covered (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view (durations in seconds, start relative to the
        process ``perf_counter`` epoch)."""
        record: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.synthetic:
            record["synthetic"] = True
        if self.children:
            record["children"] = [c.as_dict() for c in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Collects nested spans with deterministic every-Nth root sampling."""

    def __init__(
        self,
        sample_every: int = 1,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if sample_every < 1:
            raise ObsError(f"sample_every must be >= 1, got {sample_every}")
        if max_spans < 1:
            raise ObsError(f"max_spans must be >= 1, got {max_spans}")
        self.sample_every = int(sample_every)
        self._local = threading.local()
        self._finished: "deque[Span]" = deque(maxlen=int(max_spans))
        self._lock = threading.Lock()
        self._root_seen = 0
        self._root_kept = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a span around the ``with`` body. Nested calls on the same
        thread become children; the root decides (deterministically)
        whether the whole tree is kept."""
        stack = self._stack()
        span = Span(name, perf_counter(), attrs or None)
        stack.append(span)
        try:
            yield span
        finally:
            span.end = perf_counter()
            stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                self._finish_root(span)

    def _finish_root(self, root: Span) -> None:
        with self._lock:
            index = self._root_seen
            self._root_seen += 1
            if index % self.sample_every == 0:
                self._root_kept += 1
                self._finished.append(root)

    def add_child(
        self, parent: Span, name: str, duration: float, **attrs: object
    ) -> Span:
        """Attach a synthetic child span of known ``duration`` — used to
        absorb :class:`~repro.lsm.readpath.ReadPathProfiler` stage deltas
        as children of the enclosing tree-level span."""
        child = Span(name, parent.start, attrs or None, synthetic=True)
        child.end = parent.start + max(0.0, float(duration))
        parent.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    @property
    def roots_seen(self) -> int:
        """Root spans opened so far (kept or sampled away)."""
        return self._root_seen

    @property
    def roots_kept(self) -> int:
        """Root spans retained by sampling (before buffer eviction)."""
        return self._root_kept

    def spans(self) -> List[Span]:
        """Retained root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Drop retained spans and restart the sampling counter."""
        with self._lock:
            self._finished.clear()
            self._root_seen = 0
            self._root_kept = 0

    def export_jsonl(self, path: str) -> int:
        """Write retained root spans (with their subtrees) as one JSON
        object per line; returns the number of spans written."""
        roots = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for root in roots:
                handle.write(json.dumps(root.as_dict()) + "\n")
        return len(roots)
