"""Build registry views of live (or restored) system components.

These collectors *read* engine, tuner and server state into a
:class:`~repro.obs.metrics.MetricsRegistry` — they never mutate what they
observe, so collecting is safe at any point between missions and has zero
simulated impact by construction. Because every value here is sourced
from state that round-trips bit-exactly through :mod:`repro.persist`
snapshots, the registry view of a restored system equals the view of the
live system it was cut from (wall-clock serving histograms, which
snapshots deliberately exclude, are collected only from live servers).

Label vocabulary: ``shard`` (tree index within the engine), ``level``
(LSM level number, 0 = memtable pseudo-level), ``tenant`` (serving
traffic class), ``policy`` (named compaction discipline), ``op``
(operation / IO class).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry


def collect_engine_metrics(
    engine, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Registry view of any :class:`~repro.engine.base.KVEngine` — one
    series per shard (``tuning_targets`` order) and per level where
    applicable."""
    registry = registry if registry is not None else MetricsRegistry()
    clock = registry.counter(
        "repro_sim_clock_seconds",
        "simulated seconds consumed by the shard's cost model",
        labels=("shard",),
    )
    level_time = registry.counter(
        "repro_sim_level_seconds",
        "cumulative simulated seconds attributed to one level",
        labels=("shard", "level", "op"),
    )
    io_pages = registry.counter(
        "repro_io_pages",
        "cumulative simulated page IOs by class",
        labels=("shard", "op"),
    )
    cache = registry.counter(
        "repro_cache_events",
        "cumulative block-cache hits and misses",
        labels=("shard", "op"),
    )
    ops = registry.counter(
        "repro_ops",
        "cumulative operations counted on their home shard",
        labels=("shard", "op"),
    )
    entries = registry.gauge(
        "repro_engine_entries",
        "stored entries including the memtable",
        labels=("shard",),
    )
    levels = registry.gauge(
        "repro_engine_levels", "instantiated LSM levels", labels=("shard",)
    )
    level_k = registry.gauge(
        "repro_engine_level_k",
        "per-level compaction policy K (runs per level)",
        labels=("shard", "level"),
    )
    named = registry.gauge(
        "repro_engine_named_policy",
        "1 for the pinned named compaction policy (absent when unpinned)",
        labels=("shard", "policy"),
    )
    missions = registry.counter(
        "repro_missions",
        "completed mission windows",
        labels=("shard",),
    )
    for index, tree in enumerate(engine.tuning_targets()):
        shard = str(index)
        clock.labels(shard=shard).inc(float(tree.clock_now))
        stats = tree.stats
        for level_no, seconds in sorted(stats.level_read_time.items()):
            level_time.labels(shard=shard, level=level_no, op="read").inc(
                float(seconds)
            )
        for level_no, seconds in sorted(stats.level_write_time.items()):
            level_time.labels(shard=shard, level=level_no, op="write").inc(
                float(seconds)
            )
        io = tree.io_counters
        io_pages.labels(shard=shard, op="random_read").inc(io.random_reads)
        io_pages.labels(shard=shard, op="random_write").inc(io.random_writes)
        io_pages.labels(shard=shard, op="seq_read").inc(io.seq_reads)
        io_pages.labels(shard=shard, op="seq_write").inc(io.seq_writes)
        cache.labels(shard=shard, op="hit").inc(int(tree.cache_hits))
        cache.labels(shard=shard, op="miss").inc(int(tree.cache_misses))
        ops.labels(shard=shard, op="lookup").inc(stats.total_lookups)
        ops.labels(shard=shard, op="update").inc(stats.total_updates)
        ops.labels(shard=shard, op="range").inc(stats.total_ranges)
        entries.labels(shard=shard).set(int(tree.total_entries))
        levels.labels(shard=shard).set(tree.n_levels)
        for level_no, k in enumerate(tree.policies(), start=1):
            level_k.labels(shard=shard, level=level_no).set(int(k))
        pinned = tree.named_policy()
        if pinned is not None:
            named.labels(shard=shard, policy=pinned).set(1)
        missions.labels(shard=shard).inc(len(stats.completed))
    return registry


def collect_durable_metrics(
    store, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Registry view of a :class:`~repro.durable.store.DurableStore`:
    engine metrics plus durability telemetry (WAL/SSTable/manifest byte
    and record counters, wall-clock file-I/O seconds, and the last
    recovery's replay summary).

    Wall-clock series here are telemetry only — the simulated cost model
    never sees file I/O, so these counters have zero simulated impact
    (the same contract as the serve-path histograms).
    """
    registry = registry if registry is not None else MetricsRegistry()
    collect_engine_metrics(store, registry)
    telemetry = store.telemetry
    events = registry.counter(
        "repro_durable_events",
        "durable-store event counts (records, files, commits, orphans)",
        labels=("op",),
    )
    for op in (
        "wal_records",
        "wal_syncs",
        "wal_rotations",
        "wal_records_replayed",
        "sstables_written",
        "manifest_edits",
        "manifest_rotations",
        "commits",
        "orphans_removed",
    ):
        events.labels(op=op).inc(int(telemetry[op]))
    written = registry.counter(
        "repro_durable_bytes",
        "bytes appended to durable files by kind",
        labels=("op",),
    )
    written.labels(op="wal").inc(int(telemetry["wal_bytes"]))
    written.labels(op="sstable").inc(int(telemetry["sstable_bytes"]))
    wall = registry.counter(
        "repro_durable_wall_seconds",
        "host wall seconds spent on durable file I/O (telemetry only)",
        labels=("op",),
    )
    wall.labels(op="wal").inc(float(telemetry["wall_wal_s"]))
    wall.labels(op="sstable").inc(float(telemetry["wall_sstable_s"]))
    wall.labels(op="manifest").inc(float(telemetry["wall_manifest_s"]))
    wall.labels(op="recovery").inc(float(telemetry["wall_recovery_s"]))
    registry.gauge(
        "repro_durable_acked_seqno",
        "highest WAL-acknowledged sequence number",
    ).labels().set(int(store.acked_seqno))
    report = store.last_recovery
    if report is not None:
        recovery = registry.gauge(
            "repro_durable_recovery",
            "summary of the most recent directory open/recovery",
            labels=("op",),
        )
        recovery.labels(op="created").set(int(report.created))
        recovery.labels(op="manifest_edits").set(int(report.manifest_edits))
        recovery.labels(op="runs_opened").set(int(report.runs_opened))
        recovery.labels(op="recovered_entries").set(
            int(report.recovered_entries)
        )
        recovery.labels(op="wal_segments").set(int(report.wal_segments))
        recovery.labels(op="wal_records_replayed").set(
            int(report.wal_records_replayed)
        )
        recovery.labels(op="wal_ops_replayed").set(
            int(report.wal_ops_replayed)
        )
        recovery.labels(op="wal_torn").set(int(report.wal_torn))
        recovery.labels(op="manifest_torn").set(int(report.manifest_torn))
        recovery.labels(op="orphans_removed").set(int(report.orphans_removed))
    return registry


def collect_tuner_metrics(
    tuners, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Registry view of a tuner list (one label per ``shard`` position).

    Works for any :class:`~repro.core.tuners.Tuner`; fields specific to
    :class:`~repro.core.lerp.Lerp` (restarts, convergence, model-update
    time) appear only when present.
    """
    registry = registry if registry is not None else MetricsRegistry()
    restarts = registry.counter(
        "repro_tuner_restarts",
        "exploration restarts (workload-shift detector and resets)",
        labels=("shard",),
    )
    converged = registry.gauge(
        "repro_tuner_converged",
        "1 once the tuner considers per-level tuning converged",
        labels=("shard",),
    )
    policy_converged = registry.gauge(
        "repro_tuner_policy_converged",
        "1 once the named-policy arm is committed",
        labels=("shard",),
    )
    model_seconds = registry.counter(
        "repro_tuner_model_seconds",
        "host wall seconds spent in tuning-model updates",
        labels=("shard",),
    )
    audit_events = registry.counter(
        "repro_tuner_audit_events",
        "decision audit events recorded",
        labels=("shard",),
    )
    seen = set()
    for index, tuner in enumerate(tuners):
        if id(tuner) in seen:  # a shared tuner counts once
            continue
        seen.add(id(tuner))
        shard = str(index)
        if hasattr(tuner, "restarts"):
            restarts.labels(shard=shard).inc(int(tuner.restarts))
        if hasattr(tuner, "converged"):
            converged.labels(shard=shard).set(int(bool(tuner.converged)))
        if hasattr(tuner, "policy_converged"):
            policy_converged.labels(shard=shard).set(
                int(bool(tuner.policy_converged))
            )
        if hasattr(tuner, "total_model_update_s"):
            model_seconds.labels(shard=shard).inc(
                float(tuner.total_model_update_s)
            )
        audit = getattr(tuner, "audit", None)
        if audit is not None:
            audit_events.labels(shard=shard).inc(len(audit))
    return registry


def collect_store_metrics(
    store, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Registry view of a :class:`~repro.core.ruskey.RusKey` store:
    engine + tuner metrics plus the controller's mission log summary."""
    registry = registry if registry is not None else MetricsRegistry()
    collect_engine_metrics(store.engine, registry)
    collect_tuner_metrics(store.tuners, registry)
    registry.counter(
        "repro_store_missions", "missions the controller has processed"
    ).labels().inc(store.missions_run)
    if store.mission_log:
        registry.gauge(
            "repro_store_mean_latency_seconds",
            "mean simulated latency per operation over the mission log",
        ).labels().set(store.mean_latency())
    return registry


def collect_server_metrics(
    server, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Registry view of a live :class:`~repro.serve.server.KVServer`:
    engine metrics plus per-lane admission counters and per-tenant
    wall-clock latency histograms (labels ``shard`` / ``tenant``)."""
    registry = registry if registry is not None else MetricsRegistry()
    collect_engine_metrics(server.engine, registry)
    completed = registry.counter(
        "repro_serve_requests",
        "requests completed or rejected per lane",
        labels=("shard", "op"),
    )
    latency = registry.histogram(
        "repro_serve_latency_seconds",
        "wall-clock request latency (queueing + service)",
        labels=("shard", "tenant"),
    )
    for index, lane in enumerate(server.lanes):
        shard = str(index)
        completed.labels(shard=shard, op="completed").inc(int(lane.completed))
        completed.labels(shard=shard, op="rejected").inc(int(lane.rejected))
        for tenant, hist in lane.histograms.items():
            latency.labels(shard=shard, tenant=tenant).merge_histogram(
                hist.copy()
            )
    return registry
