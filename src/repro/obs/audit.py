"""Structured audit log of RL tuning decisions.

Every action the :class:`~repro.core.lerp.Lerp` tuner takes — which named
policy arm the DQN picked, which ΔK the per-level DDPG agents chose, the
exploration rate and reward behind each, detector-triggered exploration
restarts, the final policy commit — is appended as one structured
:class:`AuditEvent`. The log explains *why* the tuner did what it did,
which the mission-latency columns in ``bench_reports/`` cannot:
``scripts/decision_timeline.py`` replays a log into the per-window
decision table the ISSUE asks for.

The log is host-side bookkeeping only: events are recorded inside
``observe_mission``'s already-wall-timed block, consume no RNG draws and
charge no simulated time, so attaching a log leaves every simulated
observable bit-identical (the twin test in ``tests/test_obs.py``).

Persistence: an attached log rides its tuner's ``state_dict()`` (a
``Lerp`` snapshot carries its audit events), and can also be saved
standalone via :func:`repro.persist.save_obs`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

#: Event kinds a Lerp emits, in the order they typically appear.
EVENT_KINDS = (
    "policy_action",  # DQN named-policy arm choice (ε, reward, switch)
    "policy_commit",  # empirically-best arm pinned; policy stage done
    "level_action",  # per-level DDPG ΔK choice (noise σ / ε, reward)
    "stage_commit",  # one level's K learned; stage advances
    "propagate",  # learned policies pushed to deeper levels
    "restart",  # exploration restart (detector / reset / warm-start)
)


@dataclass
class AuditEvent:
    """One tuning decision (or lifecycle event) with its context."""

    seq: int
    kind: str
    #: Mission window index the decision was made in (None for lifecycle
    #: events outside a mission, e.g. ``reset``).
    mission: Optional[int] = None
    #: Kind-specific fields (arm, epsilon, reward, ...) — JSON-able only.
    data: Dict[str, object] = field(default_factory=dict)

    def state_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "mission": self.mission,
            "data": dict(self.data),
        }

    @classmethod
    def from_state_dict(cls, state: Mapping[str, object]) -> "AuditEvent":
        mission = state.get("mission")
        return cls(
            seq=int(state["seq"]),
            kind=str(state["kind"]),
            mission=None if mission is None else int(mission),
            data=dict(state["data"]),
        )


class DecisionAuditLog:
    """An append-only sequence of :class:`AuditEvent` records.

    One log may be shared by several tuners (e.g. one per shard) — pass a
    ``source`` when attaching so events stay attributable; the sequence
    number provides a total order either way.
    """

    def __init__(self) -> None:
        self.events: List[AuditEvent] = []
        self._seq = 0

    def record(
        self,
        kind: str,
        mission: Optional[int] = None,
        **data: object,
    ) -> AuditEvent:
        """Append one event; returns it (callers may enrich ``data``)."""
        event = AuditEvent(seq=self._seq, kind=kind, mission=mission, data=data)
        self._seq += 1
        self.events.append(event)
        return event

    def filter(self, kind: Optional[str] = None) -> List[AuditEvent]:
        """Events of one kind (or all, in sequence order)."""
        if kind is None:
            return list(self.events)
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "seq": self._seq,
            "events": [e.state_dict() for e in self.events],
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self._seq = int(state["seq"])
        self.events = [
            AuditEvent.from_state_dict(e) for e in state["events"]
        ]

    @classmethod
    def from_state_dict(cls, state: Mapping[str, object]) -> "DecisionAuditLog":
        log = cls()
        log.load_state_dict(state)
        return log

    def export_jsonl(self, path: str) -> int:
        """One JSON object per event; returns the number written."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event.state_dict()) + "\n")
        return len(self.events)


def format_decision_timeline(
    log: DecisionAuditLog,
    policy_history: Optional[Sequence[Optional[str]]] = None,
) -> str:
    """Render a log as a per-window decision table.

    One row per ``policy_action`` / ``level_action`` event (the decisions),
    with ``restart`` / ``policy_commit`` / ``propagate`` events shown as
    interleaved marker rows. When ``policy_history`` (the engine's named
    policy after each mission, e.g. classified from
    ``RusKey.policy_history``) is given, a ``store`` column cross-checks
    that the arm the audit log claims matches what the engine applied.
    """
    header = (
        f"{'mission':>7} | {'event':<13} | {'arm / level':<14} | "
        f"{'explore':>8} | {'reward':>10} | {'store':<13} | notes"
    )
    rows = [header, "-" * len(header)]
    for event in log.events:
        mission = "" if event.mission is None else str(event.mission)
        data = event.data
        arm = ""
        explore = ""
        reward = ""
        store = ""
        notes = ""
        if event.kind == "policy_action":
            arm = str(data.get("arm", ""))
            explore = f"ε={data.get('epsilon', 0.0):.3f}"
            r = data.get("reward")
            reward = "" if r is None else f"{r:+.4f}"
            notes = (
                f"γ={data.get('lookup_fraction', 0.0):.2f}"
                + (" switch" if data.get("switched") else "")
            )
        elif event.kind == "level_action":
            arm = f"L{data.get('level', '?')} ΔK={data.get('delta', 0):+d}"
            explore = f"σ={data.get('sigma', 0.0):.3f}"
            r = data.get("reward")
            reward = "" if r is None else f"{r:+.4f}"
            notes = f"K={data.get('k', '?')}"
        elif event.kind == "policy_commit":
            arm = str(data.get("arm", ""))
            means = data.get("arm_means") or {}
            notes = "commit: " + ", ".join(
                f"{name}={value:.3e}" for name, value in means.items()
            )
        elif event.kind == "restart":
            notes = f"restart ({data.get('reason', '?')})"
        elif event.kind == "stage_commit":
            arm = f"L{data.get('level', '?')}"
            notes = f"learned K={data.get('k', '?')}"
        elif event.kind == "propagate":
            notes = f"propagate K={data.get('policies', '')}"
        else:
            notes = json.dumps(data, sort_keys=True, default=str)
        if (
            policy_history is not None
            and event.mission is not None
            and 0 <= event.mission < len(policy_history)
        ):
            named = policy_history[event.mission]
            store = "-" if named is None else str(named)
        rows.append(
            f"{mission:>7} | {event.kind:<13} | {arm:<14} | "
            f"{explore:>8} | {reward:>10} | {store:<13} | {notes}"
        )
    return "\n".join(rows) + "\n"
