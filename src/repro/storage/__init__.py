"""Simulated storage substrate: clock, disk cost model and block cache."""

from repro.storage.cache import LRUBlockCache
from repro.storage.clock import SimClock
from repro.storage.pager import DiskModel, IOCounters

__all__ = ["SimClock", "LRUBlockCache", "DiskModel", "IOCounters"]
