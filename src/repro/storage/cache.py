"""A small LRU block cache.

The paper motivates reinforcement learning over white-box formulas partly
because "memory cache can significantly affect the performance, but white-box
formulas are often unable to model such bottom-level details". The simulated
store therefore includes an optional page-granularity LRU cache so that
experiments can exercise exactly that effect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator

from repro.errors import SnapshotError


class LRUBlockCache:
    """Fixed-capacity LRU cache keyed by ``(run_id, page_index)`` pairs.

    A ``capacity`` of 0 disables caching entirely (every probe misses).
    """

    __slots__ = ("_capacity", "_pages", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._pages: "OrderedDict[Hashable, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pages

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._pages)

    def access(self, key: Hashable) -> bool:
        """Record an access to ``key``.

        Returns ``True`` on a cache hit. On a miss the page is admitted
        (evicting the least recently used page if the cache is full).
        """
        if self._capacity == 0:
            self.misses += 1
            return False
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[key] = None
        if len(self._pages) > self._capacity:
            self._pages.popitem(last=False)
        return False

    def access_batch(self, run_id: int, page_indices) -> int:
        """Record accesses to ``(run_id, page)`` for each page, in order.

        Returns the number of hits. State-machine-equivalent to calling
        :meth:`access` per page — same hit/miss tallies, same admissions,
        same LRU recency and eviction order — with the per-call overhead
        (attribute lookups, capacity branch) hoisted out of the loop.
        ``page_indices`` must be plain ints (callers ``.tolist()`` numpy
        arrays so snapshot page keys stay JSON-clean).
        """
        n = len(page_indices)
        if self._capacity == 0:
            self.misses += n
            return 0
        pages = self._pages
        capacity = self._capacity
        hits = 0
        for page in page_indices:
            key = (run_id, page)
            if key in pages:
                pages.move_to_end(key)
                hits += 1
            else:
                pages[key] = None
                if len(pages) > capacity:
                    pages.popitem(last=False)
        self.hits += hits
        self.misses += n - hits
        return hits

    def invalidate_run(self, run_id: int) -> int:
        """Drop every cached page belonging to run ``run_id``.

        Called when a run is deleted by compaction. Returns the number of
        pages dropped.
        """
        stale = [key for key in self._pages if key[0] == run_id]
        for key in stale:
            del self._pages[key]
        return len(stale)

    def clear(self) -> None:
        """Empty the cache without resetting hit/miss counters."""
        self._pages.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit, or 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: resident pages in LRU order plus counters."""
        return {
            "capacity": self._capacity,
            "pages": list(self._pages),  # oldest → most recently used
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore cache contents and counters in place.

        The receiving cache must have the capacity the snapshot was taken
        with — resident pages beyond a smaller capacity would silently
        change future hit patterns.
        """
        if int(state["capacity"]) != self._capacity:
            raise SnapshotError(
                f"cache capacity mismatch: snapshot has {state['capacity']}, "
                f"this cache holds {self._capacity}"
            )
        self._pages.clear()
        for key in state["pages"]:
            self._pages[key] = None
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
