"""Simulated disk with page-granularity cost accounting.

:class:`DiskModel` is the substitute for the paper's NVMe SSD accessed with
direct I/O. It does not store page contents (run data lives in numpy arrays
owned by the runs themselves); it *prices* page accesses and keeps the I/O
counters that the statistics collector and the RL state vector consume.

Random reads model point-lookup page fetches (the paper's ``I_r``); random
writes model metadata/WAL-style writes (``I_w``); sequential reads and writes
model compaction traffic, which streams large sorted runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CostModelParams
from repro.errors import StorageError
from repro.storage.cache import LRUBlockCache
from repro.storage.clock import SimClock


@dataclass
class IOCounters:
    """Cumulative page-level I/O counts."""

    random_reads: int = 0
    random_writes: int = 0
    seq_reads: int = 0
    seq_writes: int = 0

    @property
    def total_reads(self) -> int:
        return self.random_reads + self.seq_reads

    @property
    def total_writes(self) -> int:
        return self.random_writes + self.seq_writes

    @property
    def total(self) -> int:
        return self.total_reads + self.total_writes

    def snapshot(self) -> "IOCounters":
        """An independent copy of the current counters."""
        return IOCounters(
            random_reads=self.random_reads,
            random_writes=self.random_writes,
            seq_reads=self.seq_reads,
            seq_writes=self.seq_writes,
        )

    def diff(self, earlier: "IOCounters") -> "IOCounters":
        """Counters accumulated since ``earlier`` (an older snapshot)."""
        return IOCounters(
            random_reads=self.random_reads - earlier.random_reads,
            random_writes=self.random_writes - earlier.random_writes,
            seq_reads=self.seq_reads - earlier.seq_reads,
            seq_writes=self.seq_writes - earlier.seq_writes,
        )

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the counters."""
        return {
            "random_reads": self.random_reads,
            "random_writes": self.random_writes,
            "seq_reads": self.seq_reads,
            "seq_writes": self.seq_writes,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the counters in place (the owning ``DiskModel`` and any
        stats snapshots keep referring to this object)."""
        self.random_reads = int(state["random_reads"])
        self.random_writes = int(state["random_writes"])
        self.seq_reads = int(state["seq_reads"])
        self.seq_writes = int(state["seq_writes"])


class DiskModel:
    """Prices page accesses on the simulated device and advances the clock.

    Each accessor returns the simulated seconds charged so that callers can
    attribute the cost to a specific LSM level.
    """

    def __init__(
        self,
        costs: CostModelParams,
        clock: SimClock,
        cache: LRUBlockCache | None = None,
    ) -> None:
        self._costs = costs
        self._clock = clock
        self._cache = cache if cache is not None else LRUBlockCache(0)
        self.counters = IOCounters()

    @property
    def cache(self) -> LRUBlockCache:
        return self._cache

    @property
    def clock(self) -> SimClock:
        return self._clock

    # ------------------------------------------------------------------
    # Point I/O (lookups)
    # ------------------------------------------------------------------
    def random_read(self, run_id: int, page_index: int) -> float:
        """Read one page of ``run_id`` at random; cached pages cost nothing."""
        if page_index < 0:
            raise StorageError(f"page_index must be >= 0, got {page_index}")
        if self._cache.access((run_id, page_index)):
            return 0.0
        self.counters.random_reads += 1
        cost = self._costs.random_read_s
        self._clock.advance(cost)
        return cost

    def random_read_batch(self, run_id: int, page_indices) -> float:
        """Read several pages of one run; returns total charged seconds.

        With no cache configured, the whole batch is priced in one step.
        With a cache, the batch runs through
        :meth:`LRUBlockCache.access_batch` — hit/miss tallies, admissions
        and eviction order are exactly those of a per-page
        :meth:`random_read` loop, and the clock/total accumulate by
        repeated per-miss addition (:meth:`SimClock.advance_repeated`) so
        simulated charges are bit-identical to per-page charging.
        """
        n = len(page_indices)
        if n == 0:
            return 0.0
        if self._cache.capacity == 0:
            self._cache.misses += n
            self.counters.random_reads += n
            cost = n * self._costs.random_read_s
            self._clock.advance(cost)
            return cost
        pages = np.asarray(page_indices)
        if pages.size and int(pages.min()) < 0:
            raise StorageError(
                f"page_index must be >= 0, got {int(pages.min())}"
            )
        hits = self._cache.access_batch(run_id, pages.tolist())
        misses = n - hits
        self.counters.random_reads += misses
        return self._clock.advance_repeated(self._costs.random_read_s, misses)

    def random_write(self, n_pages: int = 1) -> float:
        """Write ``n_pages`` pages at random offsets."""
        if n_pages < 0:
            raise StorageError(f"n_pages must be >= 0, got {n_pages}")
        self.counters.random_writes += n_pages
        cost = n_pages * self._costs.random_write_s
        self._clock.advance(cost)
        return cost

    # ------------------------------------------------------------------
    # Streaming I/O (flush / compaction)
    # ------------------------------------------------------------------
    def sequential_read(self, n_pages: int) -> float:
        """Stream-read ``n_pages`` pages (compaction input)."""
        if n_pages < 0:
            raise StorageError(f"n_pages must be >= 0, got {n_pages}")
        self.counters.seq_reads += n_pages
        cost = n_pages * self._costs.seq_read_s
        self._clock.advance(cost)
        return cost

    def sequential_write(self, n_pages: int) -> float:
        """Stream-write ``n_pages`` pages (flush or compaction output)."""
        if n_pages < 0:
            raise StorageError(f"n_pages must be >= 0, got {n_pages}")
        self.counters.seq_writes += n_pages
        cost = n_pages * self._costs.seq_write_s
        self._clock.advance(cost)
        return cost

    # ------------------------------------------------------------------
    # CPU work (still advances the simulated clock)
    # ------------------------------------------------------------------
    def probe_cpu(self, n_runs: int = 1) -> float:
        """CPU cost of probing the metadata of ``n_runs`` sorted runs
        (the paper's ``c_r``)."""
        if n_runs < 0:
            raise StorageError(f"n_runs must be >= 0, got {n_runs}")
        cost = n_runs * self._costs.run_probe_cpu_s
        self._clock.advance(cost)
        return cost

    def compaction_cpu(self, n_entries: int) -> float:
        """CPU cost of merge-sorting ``n_entries`` entries (the paper's
        ``c_w``)."""
        if n_entries < 0:
            raise StorageError(f"n_entries must be >= 0, got {n_entries}")
        cost = n_entries * self._costs.compaction_entry_cpu_s
        self._clock.advance(cost)
        return cost

    def drop_run(self, run_id: int) -> None:
        """Forget cached pages of a run deleted by compaction."""
        self._cache.invalidate_run(run_id)
