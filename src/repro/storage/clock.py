"""Simulated wall clock.

Every component that "spends time" (disk I/O, CPU work during compaction,
Bloom probes) advances a shared :class:`SimClock`. The clock is the single
source of truth for the latency figures reported by the benchmark harness,
which keeps the reproduction deterministic and independent of the host
machine's speed.
"""

from __future__ import annotations

from repro.errors import StorageError


class SimClock:
    """Monotonic simulated clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise StorageError(f"clock cannot start before 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time never runs backwards.
        """
        if seconds < 0:
            raise StorageError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        return self._now

    def advance_repeated(self, seconds: float, times: int) -> float:
        """Advance by ``seconds``, ``times`` times; returns the total charged.

        Bit-equivalent to calling :meth:`advance` in a loop — the clock and
        the returned total accumulate by repeated addition, preserving the
        exact float rounding sequence of per-event charging. Batched cost
        paths (:meth:`repro.storage.pager.DiskModel.random_read_batch`) use
        this so a batch charges the clock identically to its per-page loop.
        """
        if seconds < 0:
            raise StorageError(f"cannot advance clock by {seconds} s")
        if times < 0:
            raise StorageError(f"cannot advance clock {times} times")
        now = self._now
        total = 0.0
        for _ in range(times):
            total += seconds
            now += seconds
        self._now = now
        return total

    def elapsed_since(self, t0: float) -> float:
        """Simulated seconds elapsed since ``t0``."""
        return self._now - t0

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the clock."""
        return {"now": self._now}

    def load_state_dict(self, state: dict) -> None:
        """Restore the clock in place from :meth:`state_dict` output."""
        now = float(state["now"])
        if now < 0:
            raise StorageError(f"clock cannot be restored to {now}")
        self._now = now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}s)"
