"""repro — a from-scratch reproduction of RusKey.

RusKey ("Learning to Optimize LSM-trees: Towards A Reinforcement Learning
based Key-Value Store for Dynamic Workloads", SIGMOD) is an LSM-tree
key-value store that tunes its per-level compaction policies online with a
level-based DDPG model (Lerp) on top of a transition-friendly LSM variant
(the FLSM-tree).

Quickstart::

    import numpy as np
    from repro import RusKey, SystemConfig
    from repro.workload import UniformWorkload

    store = RusKey(SystemConfig(seed=7))
    workload = UniformWorkload(n_records=50_000, lookup_fraction=0.5)
    store.run_workload(workload, n_missions=200, mission_size=1_000)
    print(store.policies(), store.mean_latency(last_n=50))

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
tables and figures.
"""

from repro.config import (
    BloomMode,
    BloomScheme,
    CostModelParams,
    SystemConfig,
    TransitionKind,
)
from repro.core.lerp import Lerp, LerpConfig
from repro.core.ruskey import RusKey
from repro.engine import KVEngine, ShardedStore
from repro.core.tuners import (
    GreedyThresholdTuner,
    LazyLevelingTuner,
    StaticTuner,
    Tuner,
)
from repro.errors import ReproError
from repro.lsm.flsm import FLSMTree
from repro.lsm.tree import LSMTree

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "CostModelParams",
    "BloomScheme",
    "BloomMode",
    "TransitionKind",
    "RusKey",
    "Lerp",
    "LerpConfig",
    "Tuner",
    "StaticTuner",
    "LazyLevelingTuner",
    "GreedyThresholdTuner",
    "LSMTree",
    "FLSMTree",
    "KVEngine",
    "ShardedStore",
    "ReproError",
    "__version__",
]
