"""Bloom filters over integer keys.

Two interchangeable implementations are provided:

* :class:`BitArrayBloomFilter` — a real Bloom filter (bit array + double
  hashing). Used by correctness tests and available for any experiment.
* :class:`AnalyticalBloomFilter` — answers membership exactly and draws
  false positives as Bernoulli(f) events from a seeded RNG. For keys absent
  from the run, both filters produce i.i.d. Bernoulli(f) positives, so the
  analytical filter is statistically identical while avoiding per-probe
  hashing. The large benchmarks use it for speed (see DESIGN.md §2).

Keys are signed 64-bit integers (the simulated store's key type).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

_LN2 = math.log(2.0)

# Mixing constants from splitmix64; good avalanche behaviour on 64-bit ints.
_MIX_MUL_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MUL_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 arrays."""
    x = (x + _GOLDEN).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _MIX_MUL_1
    x ^= x >> np.uint64(27)
    x *= _MIX_MUL_2
    x ^= x >> np.uint64(31)
    return x


def optimal_num_hashes(bits_per_key: float) -> int:
    """Optimal number of hash functions ``k = bpk * ln 2`` (at least 1)."""
    if bits_per_key <= 0:
        raise ConfigError(f"bits_per_key must be > 0, got {bits_per_key}")
    return max(1, round(bits_per_key * _LN2))


class BitArrayBloomFilter:
    """Classic Bloom filter backed by a numpy boolean array.

    The number of bits is sized from the requested false-positive rate
    ``fpr`` via ``m = -n ln f / (ln 2)^2``; hashes are derived by double
    hashing two splitmix64 streams.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes", "_fpr", "_salt")

    def __init__(self, keys: np.ndarray, fpr: float, salt: int = 0) -> None:
        if not 0.0 < fpr <= 1.0:
            raise ConfigError(f"fpr must be in (0, 1], got {fpr}")
        self._fpr = float(fpr)
        self._salt = np.uint64(salt & 0xFFFFFFFFFFFFFFFF)
        n = len(keys)
        if fpr >= 1.0 or n == 0:
            # A degenerate filter that always answers "maybe".
            self._num_bits = 0
            self._num_hashes = 0
            self._bits = np.zeros(0, dtype=bool)
            return
        num_bits = max(8, int(math.ceil(-n * math.log(fpr) / (_LN2 * _LN2))))
        bits_per_key = num_bits / n
        self._num_bits = num_bits
        self._num_hashes = optimal_num_hashes(bits_per_key)
        self._bits = np.zeros(num_bits, dtype=bool)
        self._insert(np.asarray(keys, dtype=np.int64))

    @property
    def design_fpr(self) -> float:
        """The false-positive rate this filter was sized for."""
        return self._fpr

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """Bit positions for each key: shape ``(len(keys), num_hashes)``."""
        raw = keys.astype(np.int64).view(np.uint64) ^ self._salt
        h1 = _splitmix64(raw)
        h2 = _splitmix64(raw ^ _MIX_MUL_1) | np.uint64(1)
        steps = np.arange(self._num_hashes, dtype=np.uint64)
        combined = h1[:, None] + steps[None, :] * h2[:, None]
        return (combined % np.uint64(self._num_bits)).astype(np.int64)

    def _insert(self, keys: np.ndarray) -> None:
        if len(keys) == 0:
            return
        self._bits[self._positions(keys).ravel()] = True

    def might_contain(self, key: int) -> bool:
        """``False`` guarantees absence; ``True`` means "maybe present"."""
        if self._num_bits == 0:
            return True
        positions = self._positions(np.asarray([key], dtype=np.int64))[0]
        return bool(self._bits[positions].all())

    def might_contain_batch(
        self, keys: np.ndarray, present: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Vectorized :meth:`might_contain` over an int64 array.

        ``present`` (exact membership of each key, when the caller already
        knows it) is accepted for interface parity with the analytical
        filter; a real bit-array filter still has to hash every key, so it
        is ignored here.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if self._num_bits == 0:
            return np.ones(len(keys), dtype=bool)
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        return self._bits[self._positions(keys)].all(axis=1)

    @property
    def memory_bits(self) -> int:
        """Bits of memory this filter occupies."""
        return self._num_bits


class AnalyticalBloomFilter:
    """Statistically exact Bloom filter simulation.

    Present keys always answer ``True`` (no false negatives); absent keys
    answer ``True`` with probability ``fpr`` using the provided RNG. The
    sorted key array is shared with the owning run, so memory overhead is a
    reference plus the RNG.
    """

    __slots__ = ("_sorted_keys", "_fpr", "_rng", "_num_bits")

    def __init__(
        self, sorted_keys: np.ndarray, fpr: float, rng: np.random.Generator
    ) -> None:
        if not 0.0 < fpr <= 1.0:
            raise ConfigError(f"fpr must be in (0, 1], got {fpr}")
        self._sorted_keys = np.asarray(sorted_keys, dtype=np.int64)
        self._fpr = float(fpr)
        self._rng = rng
        if fpr >= 1.0 or len(sorted_keys) == 0:
            self._num_bits = 0
        else:
            self._num_bits = int(
                math.ceil(-len(sorted_keys) * math.log(fpr) / (_LN2 * _LN2))
            )

    @property
    def design_fpr(self) -> float:
        return self._fpr

    def _contains(self, keys: np.ndarray) -> np.ndarray:
        if len(self._sorted_keys) == 0:
            return np.zeros(len(keys), dtype=bool)
        pos = np.searchsorted(self._sorted_keys, keys)
        in_range = pos < len(self._sorted_keys)
        found = np.zeros(len(keys), dtype=bool)
        found[in_range] = self._sorted_keys[pos[in_range]] == keys[in_range]
        return found

    def might_contain(self, key: int) -> bool:
        if self._fpr >= 1.0:
            return True
        keys = np.asarray([key], dtype=np.int64)
        if self._contains(keys)[0]:
            return True
        return bool(self._rng.random() < self._fpr)

    def might_contain_batch(
        self, keys: np.ndarray, present: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Vectorized :meth:`might_contain`.

        ``present`` is an optional exact-membership mask aligned with
        ``keys``. When the caller already knows membership (the stacked
        level index in :meth:`repro.lsm.tree.LSMTree.get_batch` does), the
        internal binary search is skipped. The RNG is consumed *identically*
        either way — one ``random(n_absent)`` draw over the same absent
        mask in the same key order — so simulated results are bit-identical
        with or without the hint.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        if self._fpr >= 1.0:
            return np.ones(len(keys), dtype=bool)
        if present is None:
            result = self._contains(keys)
        else:
            result = np.array(present, dtype=bool)
        absent = ~result
        n_absent = int(absent.sum())
        if n_absent:
            result[absent] = self._rng.random(n_absent) < self._fpr
        return result

    @property
    def memory_bits(self) -> int:
        """Bits a real filter of this design would occupy."""
        return self._num_bits
