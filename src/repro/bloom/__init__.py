"""Bloom filters and per-level FPR allocation schemes."""

from repro.bloom.allocation import (
    allocate_fprs,
    bits_per_key_from_fpr,
    fpr_from_bits_per_key,
    monkey_allocation,
    uniform_allocation,
)
from repro.bloom.filter import (
    AnalyticalBloomFilter,
    BitArrayBloomFilter,
    optimal_num_hashes,
)

__all__ = [
    "BitArrayBloomFilter",
    "AnalyticalBloomFilter",
    "optimal_num_hashes",
    "fpr_from_bits_per_key",
    "bits_per_key_from_fpr",
    "uniform_allocation",
    "monkey_allocation",
    "allocate_fprs",
]
