"""Bits-per-key / false-positive-rate allocation across LSM levels.

Two schemes (paper Section 5.2):

* **Uniform** — every level gets the same bits-per-key; this is the default
  in RocksDB and the paper's "Case 1".
* **Monkey** — level *i* gets an exponentially higher false-positive rate
  than level *i-1* (``f_i = f_1 * T**(i-1)``, Dayan et al.). Given a global
  memory budget expressed as *average* bits-per-key, :func:`monkey_allocation`
  solves for ``f_1`` by bisection so that total filter memory matches the
  budget, weighting each level by its capacity (deep levels hold
  exponentially more keys).
"""

from __future__ import annotations

import math
from typing import List

from repro.config import BloomScheme
from repro.errors import ConfigError

_LN2_SQ = math.log(2.0) ** 2


def fpr_from_bits_per_key(bits_per_key: float) -> float:
    """Standard Bloom filter FPR for a given bits-per-key: ``e^{-bpk ln2^2}``."""
    if bits_per_key < 0:
        raise ConfigError(f"bits_per_key must be >= 0, got {bits_per_key}")
    return min(1.0, math.exp(-bits_per_key * _LN2_SQ))


def bits_per_key_from_fpr(fpr: float) -> float:
    """Inverse of :func:`fpr_from_bits_per_key` (0 bits for ``fpr >= 1``)."""
    if not 0.0 < fpr <= 1.0:
        raise ConfigError(f"fpr must be in (0, 1], got {fpr}")
    if fpr >= 1.0:
        return 0.0
    return -math.log(fpr) / _LN2_SQ


def uniform_allocation(bits_per_key: float, n_levels: int) -> List[float]:
    """Per-level FPRs under the uniform scheme (all identical)."""
    if n_levels < 1:
        raise ConfigError(f"n_levels must be >= 1, got {n_levels}")
    fpr = fpr_from_bits_per_key(bits_per_key)
    return [fpr] * n_levels


def _monkey_average_bits(f1: float, n_levels: int, size_ratio: int) -> float:
    """Average bits-per-key over all levels when level 1 uses FPR ``f1``.

    Level *i* holds a fraction of keys proportional to ``T**i``; levels whose
    FPR saturates at 1 cost no memory.
    """
    total_weight = 0.0
    total_bits = 0.0
    for level in range(1, n_levels + 1):
        weight = float(size_ratio) ** level
        fpr = min(1.0, f1 * size_ratio ** (level - 1))
        total_weight += weight
        if fpr < 1.0:
            total_bits += weight * bits_per_key_from_fpr(fpr)
    return total_bits / total_weight


def monkey_allocation(
    bits_per_key: float, n_levels: int, size_ratio: int
) -> List[float]:
    """Per-level FPRs under Monkey for an average ``bits_per_key`` budget.

    Returns ``[f_1, ..., f_L]`` with ``f_i = min(1, f_1 * T**(i-1))`` and
    ``f_1`` chosen so that the capacity-weighted average bits-per-key equals
    the budget (bisection to 1e-12 relative tolerance).
    """
    if n_levels < 1:
        raise ConfigError(f"n_levels must be >= 1, got {n_levels}")
    if size_ratio < 2:
        raise ConfigError(f"size_ratio must be >= 2, got {size_ratio}")
    if bits_per_key <= 0:
        raise ConfigError(f"bits_per_key must be > 0, got {bits_per_key}")
    if n_levels == 1:
        return [fpr_from_bits_per_key(bits_per_key)]

    lo, hi = 1e-300, 1.0
    # _monkey_average_bits decreases monotonically in f1: more bits <=> lower f1.
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # geometric bisection: f1 spans many decades
        if _monkey_average_bits(mid, n_levels, size_ratio) > bits_per_key:
            lo = mid
        else:
            hi = mid
        if hi / lo < 1.0 + 1e-12:
            break
    f1 = math.sqrt(lo * hi)
    return [min(1.0, f1 * size_ratio ** (i - 1)) for i in range(1, n_levels + 1)]


def allocate_fprs(
    scheme: BloomScheme, bits_per_key: float, n_levels: int, size_ratio: int
) -> List[float]:
    """Dispatch to the scheme-specific allocation."""
    if scheme is BloomScheme.UNIFORM:
        return uniform_allocation(bits_per_key, n_levels)
    if scheme is BloomScheme.MONKEY:
        return monkey_allocation(bits_per_key, n_levels, size_ratio)
    raise ConfigError(f"unknown Bloom scheme: {scheme!r}")
