"""White-box cost model of an (F)LSM-tree (paper Section 5, Eq. 5).

The expected simulated time per operation contributed by level *i* under
policy ``K_i``, Bloom FPR ``f_i`` and lookup fraction ``γ`` is::

    f_i · I_r · K_i · γ            (query I/O:   false-positive page reads)
  + c_r · K_i · γ                  (query CPU:   probing K_i runs' metadata)
  + (T·E / (B·K_i)) · (I_r + I_w) · (1 − γ)   (update I/O: T/K_i rewrites)
  + (T / K_i) · c_w · (1 − γ)      (update CPU:  merge-sort work)

Minimizing over ``K_i`` (Lagrange analysis in the paper's Lemma 5.1) gives::

    K_i*² = X / (Y·T^{i-1} + Z)
    X = T·E·(I_r+I_w)·(1−γ) + T·B·c_w·(1−γ)
    Y = B·f_1·I_r·γ
    Z = B·c_r·γ

and the propagation identity (paper Eq. 4)::

    1/K*_{i+1} = sqrt( 1/K*_i² + T·(1/K*_i² − 1/K*_{i-1}²) )

which lets the learned optima of two consecutive levels extend to all deeper
levels without further training. Everything here is also used to cross-check
what the RL tuner converges to.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.bloom.allocation import allocate_fprs
from repro.config import CostModelParams, SystemConfig
from repro.errors import ConfigError


def level_operation_cost(
    policy: int,
    fpr: float,
    lookup_fraction: float,
    costs: CostModelParams,
    size_ratio: int,
    entry_bytes: int,
    page_bytes: int,
) -> float:
    """Expected time per operation contributed by one level (Eq. 5)."""
    if policy < 1:
        raise ConfigError(f"policy must be >= 1, got {policy}")
    if not 0.0 <= lookup_fraction <= 1.0:
        raise ConfigError(
            f"lookup_fraction must be in [0, 1], got {lookup_fraction}"
        )
    gamma = lookup_fraction
    query_io = fpr * costs.random_read_s * policy * gamma
    query_cpu = costs.run_probe_cpu_s * policy * gamma
    # The paper's I_r + I_w for updates is compaction traffic, which streams
    # large sorted runs; the simulated device prices that as sequential I/O.
    update_io = (
        (size_ratio * entry_bytes / (page_bytes * policy))
        * (costs.seq_read_s + costs.seq_write_s)
        * (1.0 - gamma)
    )
    update_cpu = (size_ratio / policy) * costs.compaction_entry_cpu_s * (1.0 - gamma)
    return query_io + query_cpu + update_io + update_cpu


def optimal_policy_continuous(
    level_no: int,
    f1: float,
    lookup_fraction: float,
    costs: CostModelParams,
    size_ratio: int,
    entry_bytes: int,
    page_bytes: int,
) -> float:
    """The real-valued ``K*`` minimizing Eq. 5 under Monkey FPRs
    (``f_i = f_1 · T^{i-1}``): ``K*² = X / (Y·T^{i-1} + Z)``.

    Degenerate workloads are handled explicitly: a read-only workload
    (γ = 1) wants the most aggressive policy (K* → its lower bound) and a
    write-only workload (γ = 0) the laziest (K* → ∞, to be clamped by the
    caller).
    """
    gamma = lookup_fraction
    t = size_ratio
    x = (
        t * entry_bytes * (costs.seq_read_s + costs.seq_write_s) * (1 - gamma)
        + t * page_bytes * costs.compaction_entry_cpu_s * (1 - gamma)
    )
    y = page_bytes * f1 * costs.random_read_s * gamma
    z = page_bytes * costs.run_probe_cpu_s * gamma
    denominator = y * t ** (level_no - 1) + z
    if denominator <= 0.0:
        return math.inf  # γ == 0: no read pressure at all
    if x <= 0.0:
        return 0.0  # γ == 1: no write pressure at all
    return math.sqrt(x / denominator)


def clamp_policy(k: float, size_ratio: int) -> int:
    """Round a continuous policy to the closest valid integer in [1, T]."""
    if math.isinf(k):
        return size_ratio
    return int(min(max(round(k), 1), size_ratio))


def lemma_next_policy(k_prev_prev: float, k_prev: float, size_ratio: int) -> float:
    """Paper Eq. 4: infer ``K*_{i+1}`` from ``K*_{i-1}`` and ``K*_i``.

    If the two inputs imply a non-physical (negative) right-hand side —
    which can only happen when ``K*_i > K*_{i-1}``, i.e. the inputs do not
    come from a Monkey-optimal profile — the result saturates at the lazy
    extreme (``T``), mirroring how the paper rounds to the closest *valid*
    policy.
    """
    if k_prev_prev < 1 or k_prev < 1:
        raise ConfigError("policies must be >= 1")
    inv_sq = 1.0 / (k_prev * k_prev) + size_ratio * (
        1.0 / (k_prev * k_prev) - 1.0 / (k_prev_prev * k_prev_prev)
    )
    if inv_sq <= 0.0:
        return float(size_ratio)
    return 1.0 / math.sqrt(inv_sq)


def propagate_policies(
    k1: int, k2: int, n_levels: int, size_ratio: int
) -> List[int]:
    """Extend learned policies of levels 1 and 2 to ``n_levels`` levels via
    repeated application of Eq. 4, rounding each step to a valid policy.

    The paper's example: ``k1=9, k2=7, T=10`` gives level 3 ≈ 3 and
    level 4 ≈ 1.
    """
    if n_levels < 1:
        raise ConfigError(f"n_levels must be >= 1, got {n_levels}")
    policies = [clamp_policy(k1, size_ratio)]
    if n_levels >= 2:
        policies.append(clamp_policy(k2, size_ratio))
    prev_prev, prev = float(policies[0]), float(policies[-1])
    while len(policies) < n_levels:
        nxt = lemma_next_policy(prev_prev, prev, size_ratio)
        policies.append(clamp_policy(nxt, size_ratio))
        prev_prev, prev = prev, max(nxt, 1.0)
    return policies


def tree_operation_cost(
    policies: Sequence[int],
    fprs: Sequence[float],
    lookup_fraction: float,
    config: SystemConfig,
) -> float:
    """Expected time per operation summed over all levels."""
    if len(policies) != len(fprs):
        raise ConfigError("policies and fprs must have equal length")
    return sum(
        level_operation_cost(
            policy,
            fpr,
            lookup_fraction,
            config.costs,
            config.size_ratio,
            config.entry_bytes,
            config.page_bytes,
        )
        for policy, fpr in zip(policies, fprs)
    )


def optimal_policies_whitebox(
    lookup_fraction: float,
    n_levels: int,
    config: SystemConfig,
) -> List[int]:
    """Per-level integer optimum of Eq. 5 under the configured Bloom scheme.

    Uses exhaustive search over ``K ∈ [1, T]`` per level (levels are
    independent in the model), which is exact and fast for any realistic T.
    """
    fprs = allocate_fprs(
        config.bloom_scheme, config.bits_per_key, n_levels, config.size_ratio
    )
    best: List[int] = []
    for level_no in range(1, n_levels + 1):
        fpr = fprs[level_no - 1]
        candidates = range(1, config.size_ratio + 1)
        best_k = min(
            candidates,
            key=lambda k: level_operation_cost(
                k,
                fpr,
                lookup_fraction,
                config.costs,
                config.size_ratio,
                config.entry_bytes,
                config.page_bytes,
            ),
        )
        best.append(best_k)
    return best
