"""Read/write amplification estimators and measurement helpers.

Analytic forms follow the paper:

* level read amplification at fill ratio ``x``: ``f · K · x`` expected
  page reads per (zero-result) lookup probing the level (Figure 5);
* level write amplification: ``T / K`` rewrites per entry passing through
  a level (Section 5.1.3, citing the design-continuum analysis).

Measured counterparts are derived from :class:`~repro.storage.pager.IOCounters`
so experiments can check the simulator against the theory.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.storage.pager import IOCounters


def level_read_amplification(fpr: float, policy: int, fill_ratio: float) -> float:
    """Expected page reads a zero-result lookup incurs in one level."""
    if policy < 1:
        raise ConfigError(f"policy must be >= 1, got {policy}")
    if not 0.0 <= fill_ratio <= 1.0:
        raise ConfigError(f"fill_ratio must be in [0, 1], got {fill_ratio}")
    return fpr * policy * fill_ratio


def level_write_amplification(size_ratio: int, policy: int) -> float:
    """Rewrites an entry takes part in while resident in one level: T/K."""
    if policy < 1:
        raise ConfigError(f"policy must be >= 1, got {policy}")
    if size_ratio < 2:
        raise ConfigError(f"size_ratio must be >= 2, got {size_ratio}")
    return size_ratio / policy


def tree_write_amplification(size_ratio: int, policies: "list[int]") -> float:
    """Total expected rewrites per entry across all levels."""
    return sum(level_write_amplification(size_ratio, k) for k in policies)


def named_policy_write_amplification(
    policy, size_ratio: int, n_levels: int
) -> float:
    """Analytic write amplification of a named compaction policy
    (:mod:`repro.lsm.policy`) at depth ``n_levels``.

    Leveling costs ``L·T`` rewrites per entry, tiering ``L``, lazy-leveling
    ``(L-1) + T`` — the ordering the policy matrix benchmark's write-heavy
    panel reproduces empirically.
    """
    from repro.lsm.policy import resolve_policy

    if n_levels < 1:
        raise ConfigError(f"n_levels must be >= 1, got {n_levels}")
    assignments = resolve_policy(policy).assignments(n_levels, size_ratio)
    return tree_write_amplification(size_ratio, assignments)


def measured_write_amplification(
    io: IOCounters, n_updates: int, entries_per_page: int
) -> float:
    """Pages written per update, normalized to entry rewrites.

    ``(seq_writes + random_writes) * entries_per_page / n_updates`` — the
    average number of times each ingested entry was physically rewritten.
    """
    if n_updates <= 0:
        return 0.0
    return io.total_writes * entries_per_page / n_updates


def measured_read_amplification(io: IOCounters, n_lookups: int) -> float:
    """Random page reads per lookup."""
    if n_lookups <= 0:
        return 0.0
    return io.random_reads / n_lookups
