"""White-box cost models: Eq. 5 operation costs, Table 2 transition costs,
and amplification estimators."""

from repro.cost.amplification import (
    level_read_amplification,
    level_write_amplification,
    measured_read_amplification,
    measured_write_amplification,
    tree_write_amplification,
)
from repro.cost.model import (
    clamp_policy,
    lemma_next_policy,
    level_operation_cost,
    optimal_policies_whitebox,
    optimal_policy_continuous,
    propagate_policies,
    tree_operation_cost,
)
from repro.cost.transition import (
    TransitionCosts,
    TransitionScenario,
    amortized_greedy_immediate_ios,
    amortized_lazy_delay_seconds,
    flexible_costs,
    greedy_costs,
    lazy_costs,
    paper_case_study,
)

__all__ = [
    "level_operation_cost",
    "optimal_policy_continuous",
    "clamp_policy",
    "lemma_next_policy",
    "propagate_policies",
    "tree_operation_cost",
    "optimal_policies_whitebox",
    "TransitionScenario",
    "TransitionCosts",
    "greedy_costs",
    "lazy_costs",
    "flexible_costs",
    "amortized_greedy_immediate_ios",
    "amortized_lazy_delay_seconds",
    "paper_case_study",
    "level_read_amplification",
    "level_write_amplification",
    "tree_write_amplification",
    "measured_read_amplification",
    "measured_write_amplification",
]
