"""Transition cost analysis (paper Section 4.3, Table 2).

For a level of capacity ``C`` bytes moving from policy ``K`` to ``K'`` when
it is ``x`` full, with page size ``B``, entry size ``E``, Bloom FPR ``f``,
lookup fraction ``γ`` and update arrival rate ``N_u`` (updates/second), the
paper derives:

=============  ============== ==============  ====================================
Method         Transition      Delay           Additional cost (I/Os)
               cost (I/Os)     (seconds)
=============  ============== ==============  ====================================
Greedy         ``C/2B``        0               ``T·C·(1-x) / (2·B·K)``
Lazy           0               ``C/(2·N_u·E)`` ``K<K'``: ``T·C·(1-x)·(K'-K)/(2BKK')``
                                               ``K>K'``: ``f·C·(1-x²)·(K-K')·γ/(2E(1-γ))``
Flexible       0               0               ``K<K'``: 0
                                               ``K>K'``: ``f·C·(x-x²)·(K-K')·γ/(E(1-γ))``
=============  ============== ==============  ====================================

The module reproduces every formula plus the paper's worked case study
(T=10, B=4096, E=1024, C=1024000, f=0.01, K=5→4, x=γ=1/2 gives
125 / 3.75 / 2.5 I/Os), which the Table 2 benchmark regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TransitionScenario:
    """Inputs of the Table 2 analysis. ``x`` and ``gamma`` may be ``None``
    to request the amortized expectation (both distributed uniformly in
    (0, 1), giving x = 1/2 as in the paper's case study)."""

    size_ratio: int  # T
    level_capacity_bytes: float  # C
    page_bytes: int  # B
    entry_bytes: int  # E
    fpr: float  # f
    old_policy: int  # K
    new_policy: int  # K'
    fill_ratio: float = 0.5  # x
    lookup_fraction: float = 0.5  # γ
    updates_per_second: float = 1000.0  # N_u

    def __post_init__(self) -> None:
        if self.size_ratio < 2:
            raise ConfigError(f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.level_capacity_bytes <= 0:
            raise ConfigError("level_capacity_bytes must be > 0")
        if self.page_bytes <= 0 or self.entry_bytes <= 0:
            raise ConfigError("page_bytes and entry_bytes must be > 0")
        if not 0.0 <= self.fpr <= 1.0:
            raise ConfigError(f"fpr must be in [0, 1], got {self.fpr}")
        if self.old_policy < 1 or self.new_policy < 1:
            raise ConfigError("policies must be >= 1")
        if not 0.0 <= self.fill_ratio <= 1.0:
            raise ConfigError(f"fill_ratio must be in [0, 1], got {self.fill_ratio}")
        if not 0.0 <= self.lookup_fraction < 1.0:
            raise ConfigError(
                "lookup_fraction must be in [0, 1); the additional-cost "
                "formulas divide by (1 - gamma)"
            )
        if self.updates_per_second <= 0:
            raise ConfigError("updates_per_second must be > 0")


@dataclass(frozen=True)
class TransitionCosts:
    """Outputs of the analysis for one transition method."""

    immediate_ios: float
    delay_seconds: float
    additional_ios: float


def greedy_costs(s: TransitionScenario) -> TransitionCosts:
    """Costs of the greedy transition (merge the level away immediately)."""
    immediate = s.fill_ratio * s.level_capacity_bytes / s.page_bytes
    additional = (
        s.size_ratio
        * s.level_capacity_bytes
        * (1.0 - s.fill_ratio)
        / (2.0 * s.page_bytes * s.old_policy)
    )
    return TransitionCosts(
        immediate_ios=immediate, delay_seconds=0.0, additional_ios=additional
    )


def lazy_costs(s: TransitionScenario) -> TransitionCosts:
    """Costs of the lazy transition (defer until the level empties)."""
    delay = (
        (1.0 - s.fill_ratio)
        * s.level_capacity_bytes
        / (s.updates_per_second * s.entry_bytes)
    )
    k, k_new = s.old_policy, s.new_policy
    if k_new > k:
        additional = (
            s.size_ratio
            * s.level_capacity_bytes
            * (1.0 - s.fill_ratio)
            * (k_new - k)
            / (2.0 * s.page_bytes * k * k_new)
        )
    elif k_new < k:
        additional = (
            s.fpr
            * s.level_capacity_bytes
            * (1.0 - s.fill_ratio**2)
            * (k - k_new)
            * s.lookup_fraction
            / (2.0 * s.entry_bytes * (1.0 - s.lookup_fraction))
        )
    else:
        additional = 0.0
    return TransitionCosts(
        immediate_ios=0.0, delay_seconds=delay, additional_ios=additional
    )


def flexible_costs(s: TransitionScenario) -> TransitionCosts:
    """Costs of the FLSM-tree's flexible transition."""
    k, k_new = s.old_policy, s.new_policy
    if k_new < k:
        additional = (
            s.fpr
            * s.level_capacity_bytes
            * (s.fill_ratio - s.fill_ratio**2)
            * (k - k_new)
            * s.lookup_fraction
            / (s.entry_bytes * (1.0 - s.lookup_fraction))
        )
    else:
        additional = 0.0
    return TransitionCosts(
        immediate_ios=0.0, delay_seconds=0.0, additional_ios=additional
    )


def amortized_greedy_immediate_ios(s: TransitionScenario) -> float:
    """Expected immediate greedy cost over a uniform fill ratio: ``C/2B``."""
    return s.level_capacity_bytes / (2.0 * s.page_bytes)


def amortized_lazy_delay_seconds(s: TransitionScenario) -> float:
    """Expected lazy delay over a uniform fill ratio: ``C/(2·N_u·E)``."""
    return s.level_capacity_bytes / (2.0 * s.updates_per_second * s.entry_bytes)


def paper_case_study() -> "dict[str, TransitionCosts]":
    """The worked example at the end of paper Section 4.3.

    Returns additional-cost figures for all three methods under
    T=10, B=4096, E=1024, C=1024000, f=0.01, K=5 → K'=4, x=γ=1/2:
    greedy 125 I/Os, lazy 3.75 I/Os, flexible 2.5 I/Os.
    """
    scenario = TransitionScenario(
        size_ratio=10,
        level_capacity_bytes=1_024_000,
        page_bytes=4096,
        entry_bytes=1024,
        fpr=0.01,
        old_policy=5,
        new_policy=4,
        fill_ratio=0.5,
        lookup_fraction=0.5,
    )
    return {
        "greedy": greedy_costs(scenario),
        "lazy": lazy_costs(scenario),
        "flexible": flexible_costs(scenario),
    }
