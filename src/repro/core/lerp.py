"""Lerp: the Level-based Reinforcement-learning tuner with policy
Propagation (paper Section 5).

Lerp trains one DDPG agent per *tuned* level. The action is a continuous
scalar in ``[-1, 1]`` discretized to ``ΔK ∈ {-1, 0, +1}`` — the paper's
"continuous change" restriction that shrinks the action space from
``O(T^L)`` to ``O(L)``. The reward is ``-(α·t_level + (1-α)·t_e2e)``.

Tuning proceeds in stages: under the uniform Bloom scheme only Level 1 is
learned; under Monkey, Level 1 then Level 2. When a stage's policy has been
stable for a window of missions (with exploration noise decayed), the stage
finishes; after the last stage the learned policies are *propagated* to all
deeper levels (copying under uniform, Eq. 4 under Monkey) and Lerp enters a
converged phase. A detected workload shift restarts tuning with fresh
exploration — networks and replay are retained because the state vector
encodes the workload mix, so old experience remains valid.

Two deliberately degraded modes reproduce the paper's brute-force
comparison (Section 7): ``mode="joint"`` uses a single agent over the joint
action space of all levels, and ``mode="all-levels"`` trains every level's
agent independently with no propagation.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config import SystemConfig, TransitionKind
from repro.core.detector import WorkloadChangeDetector
from repro.core.propagation import PolicyPropagator
from repro.core.state import (
    POLICY_STATE_DIM,
    STATE_DIM,
    RunningScale,
    current_policy_action,
    level_state,
    mission_reward,
    policy_state,
)
from repro.core.tuners import Tuner
from repro.errors import RLError
from repro.lsm.policy import POLICY_NAMES, policy_from_index
from repro.lsm.stats import MissionStats
from repro.lsm.tree import LSMTree
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.dqn import DQNAgent, DQNConfig

#: Continuous actions below/above these thresholds map to ΔK = -1 / +1.
ACTION_THRESHOLD = 1.0 / 3.0

#: Maximum tree depth the joint-agent ablation budgets for.
JOINT_MAX_LEVELS = 6


def discretize_action(action: float) -> int:
    """Map a continuous action in [-1, 1] to ΔK ∈ {-1, 0, +1}."""
    if action < -ACTION_THRESHOLD:
        return -1
    if action > ACTION_THRESHOLD:
        return 1
    return 0


@dataclass
class LerpConfig:
    """Hyperparameters of the Lerp tuner.

    ``alpha`` weighs level latency against end-to-end latency in the reward
    (the paper sets 1/2). ``stable_window`` missions of an unchanged policy
    (with noise below ``convergence_sigma``) finish a tuning stage;
    ``max_stage_missions`` bounds a stage even without stability.

    ``tune_policy`` switches Lerp from the per-level ΔK action space to the
    *named-policy* dimension: one DQN agent picks among
    leveling / tiering / lazy-leveling (:data:`repro.lsm.policy.POLICY_NAMES`)
    each mission and the choice is applied through ``transition`` as a
    whole-tree policy switch. The two action spaces are deliberately not
    tuned simultaneously — a named switch rewrites every level's ``K``,
    which would invalidate the per-level agents' credit assignment.
    """

    alpha: float = 0.5
    transition: TransitionKind = TransitionKind.FLEXIBLE
    agent_kind: str = "ddpg"  # "ddpg" | "dqn"
    ddpg: DDPGConfig = field(
        default_factory=lambda: DDPGConfig(state_dim=STATE_DIM, action_dim=1)
    )
    dqn: DQNConfig = field(
        default_factory=lambda: DQNConfig(state_dim=STATE_DIM, n_actions=3)
    )
    tune_policy: bool = False
    policy_dqn: DQNConfig = field(
        default_factory=lambda: DQNConfig(
            state_dim=POLICY_STATE_DIM, n_actions=len(POLICY_NAMES)
        )
    )
    updates_per_mission: int = 8
    stable_window: int = 25
    stability_tolerance: int = 1
    reward_smoothing: int = 3
    convergence_sigma: float = 0.08
    burn_in_missions: int = 5
    max_stage_missions: int = 400
    detector_threshold: float = 0.12
    scale_alpha: float = 0.0
    mode: str = "level"  # "level" | "joint" | "all-levels"
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise RLError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.agent_kind not in ("ddpg", "dqn"):
            raise RLError(f"unknown agent_kind: {self.agent_kind!r}")
        if self.mode not in ("level", "joint", "all-levels"):
            raise RLError(f"unknown mode: {self.mode!r}")
        if self.stable_window < 2:
            raise RLError("stable_window must be >= 2")
        if self.max_stage_missions < self.stable_window:
            raise RLError("max_stage_missions must be >= stable_window")
        if self.updates_per_mission < 1:
            raise RLError("updates_per_mission must be >= 1")
        if self.stability_tolerance < 0:
            raise RLError("stability_tolerance must be >= 0")
        if self.reward_smoothing < 1:
            raise RLError("reward_smoothing must be >= 1")
        if self.burn_in_missions < 0:
            raise RLError("burn_in_missions must be >= 0")
        if self.tune_policy:
            if self.policy_dqn.n_actions != len(POLICY_NAMES):
                raise RLError(
                    f"policy_dqn.n_actions must be {len(POLICY_NAMES)} "
                    f"(one per named policy), got {self.policy_dqn.n_actions}"
                )
            if self.policy_dqn.state_dim != POLICY_STATE_DIM:
                raise RLError(
                    f"policy_dqn.state_dim must be {POLICY_STATE_DIM}, "
                    f"got {self.policy_dqn.state_dim}"
                )


AgentType = Union[DDPGAgent, DQNAgent]


class Lerp(Tuner):
    """The RusKey tuning model."""

    name = "ruskey"

    # system_config/propagator are immutable wiring rebuilt from the
    # blueprint; every mutable learning component serializes itself.
    _snapshot_exempt = frozenset({"system_config", "propagator"})

    def __init__(self, system_config: SystemConfig, config: Optional[LerpConfig] = None):
        self.system_config = system_config
        self.config = config if config is not None else LerpConfig()
        self.config.validate()
        self._rng = np.random.default_rng(self.config.seed)
        self.propagator = PolicyPropagator(
            system_config.bloom_scheme, system_config.size_ratio
        )
        self.detector = WorkloadChangeDetector(
            threshold=self.config.detector_threshold
        )
        self._scale = RunningScale(alpha=self.config.scale_alpha)
        self._level_scales: Dict[int, RunningScale] = {}
        self._agents: Dict[int, AgentType] = {}
        self._joint_agent: Optional[DDPGAgent] = None
        self._last: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._reward_windows: Dict[int, Deque[float]] = {}
        # Per-level, per-policy mean of the raw (unnormalized) combined
        # latency observed while that policy was active in this workload
        # era: the empirical readout used to commit a finished stage.
        self._arm_stats: Dict[int, Dict[int, List[float]]] = {}
        self._k_history: Deque[int] = deque(maxlen=self.config.stable_window)
        self._stage_missions = 0
        self._stage_idx = 0
        self._learned: List[int] = []
        self._burn_in_left = self.config.burn_in_missions
        self._propagated: Optional[List[int]] = None
        self.converged = False
        self.restarts = 0
        self.total_model_update_s = 0.0
        # --- named-policy action dimension (config.tune_policy) ----------
        self._policy_agent: Optional[DQNAgent] = None
        self._policy_last: Optional[Tuple[np.ndarray, int]] = None
        self._policy_arm_stats: Dict[int, List[float]] = {}
        self._policy_history: Deque[int] = deque(
            maxlen=self.config.stable_window
        )
        self._policy_stage_missions = 0
        self.policy_converged = False
        # --- decision audit (repro.obs.audit) -----------------------------
        #: Optional :class:`~repro.obs.audit.DecisionAuditLog`. ``None``
        #: (the default) keeps every audit site a single attribute check.
        #: Events are emitted inside the ``observe_mission`` wall timer, so
        #: their cost lands in host ``model_update_time`` and no simulated
        #: observable moves (the zero-sim-impact contract, DESIGN.md §12).
        self.audit = None
        #: Missions observed so far — the audit events' mission index,
        #: aligned with the controller's per-mission ``policy_history``.
        self.missions_observed = 0

    # ------------------------------------------------------------------
    # Agent plumbing
    # ------------------------------------------------------------------
    def _make_agent(self) -> AgentType:
        if self.config.agent_kind == "ddpg":
            return DDPGAgent(self.config.ddpg, self._rng)
        return DQNAgent(self.config.dqn, self._rng)

    def _agent(self, level_no: int) -> AgentType:
        if level_no not in self._agents:
            self._agents[level_no] = self._make_agent()
        return self._agents[level_no]

    def _level_scale(self, level_no: int) -> RunningScale:
        if level_no not in self._level_scales:
            self._level_scales[level_no] = RunningScale(alpha=self.config.scale_alpha)
        return self._level_scales[level_no]

    def _select_action(
        self, agent: AgentType, state: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """Returns (raw action for the replay buffer, ΔK).

        Besides the agent's own exploration noise, a small ε share of
        actions is drawn uniformly from {-1, 0, +1} while exploration is
        active (ε decays with the noise). A saturated tanh actor would
        otherwise stop producing counterfactual actions long before the
        critic has seen all policies, which traps short tuning stages at
        whatever K the first random walk reached.
        """
        if isinstance(agent, DDPGAgent):
            epsilon = 0.3 * min(
                1.0, agent.noise.sigma / max(agent.config.noise_sigma, 1e-9)
            )
            if not self.converged and self._rng.random() < epsilon:
                delta = int(self._rng.integers(-1, 2))
                # Store a representative continuous action for the critic.
                return np.asarray([0.8 * delta], dtype=float), delta
            raw = agent.act(state, explore=not self.converged)
            return raw, discretize_action(float(raw[0]))
        index = agent.act(state, explore=not self.converged)
        return np.asarray([index], dtype=float), index - 1

    def _exploration_low(self, agent: AgentType) -> bool:
        if isinstance(agent, DDPGAgent):
            return agent.noise.sigma <= self.config.convergence_sigma
        return agent.epsilon <= agent.config.epsilon_min + 1e-9

    # ------------------------------------------------------------------
    # Decision audit (repro.obs.audit)
    # ------------------------------------------------------------------
    def attach_audit(self, audit) -> None:
        """Attach a :class:`repro.obs.audit.DecisionAuditLog` (``None``
        detaches). Every subsequent decision — arm picks, ΔK moves, stage
        and policy commits, propagation, exploration restarts — is
        recorded with its context (ε/σ, reward, window stats)."""
        self.audit = audit

    def _audit(self, kind: str, **data: object) -> None:
        """Record one decision event; a no-op without an attached log."""
        if self.audit is not None:
            mission = self.missions_observed - 1
            self.audit.record(kind, mission if mission >= 0 else None, **data)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        # repro: allow[SIM-PURITY] model_update_time is a documented host-wall
        # measurement (paper Fig. 13: tuner overhead); it is reported alongside
        # sim results but never enters SimClock or the decision state.
        started = time.perf_counter()
        try:
            self._observe(tree, mission)
        finally:
            # repro: allow[SIM-PURITY] closing half of the wall measurement above.
            elapsed = time.perf_counter() - started
            mission.model_update_time += elapsed
            self.total_model_update_s += elapsed

    def _observe(self, tree: LSMTree, mission: MissionStats) -> None:
        self.missions_observed += 1
        ops = max(1, mission.n_operations)
        self._scale.update(mission.total_time / ops)
        if self.detector.observe(mission.lookup_fraction):
            self._restart(reason="detector")
        if tree.n_levels == 0:
            return
        burning_in = self._burn_in_left > 0
        if burning_in:
            self._burn_in_left -= 1
        if self.config.tune_policy:
            self._tune_named_policy(tree, mission, burning_in)
            return
        if self.config.mode == "joint":
            self._observe_joint(tree, mission)
            return
        if self.converged:
            self._maintain_converged(tree)
            return
        if self.config.mode == "all-levels":
            for level in tree.levels:
                self._tune_level(tree, mission, level.level_no, track_stage=False)
            return
        # --- level mode: tune the current stage's level -------------------
        target = self.propagator.levels_to_learn
        stage_level = self._stage_idx + 1
        if tree.n_levels < stage_level:
            return
        self._tune_level(tree, mission, stage_level, track_stage=True)
        if self._stage_complete(stage_level):
            learned = self._stage_policy(tree, stage_level)
            if tree.level(stage_level).policy != learned:
                tree.set_policy(stage_level, learned, self.config.transition)
            self._learned.append(learned)
            self._audit(
                "stage_commit",
                level=stage_level,
                k=learned,
                stage_missions=self._stage_missions,
            )
            self._stage_idx += 1
            self._k_history.clear()
            self._stage_missions = 0
            if self._stage_idx >= target:
                self._finish_tuning(tree)

    # ------------------------------------------------------------------
    # Named-policy tuning step (the discrete policy action dimension)
    # ------------------------------------------------------------------
    def _tune_named_policy(
        self, tree: LSMTree, mission: MissionStats, burning_in: bool
    ) -> None:
        """One step of the tiering/leveling/lazy-leveling action dimension.

        A DQN agent over :data:`~repro.lsm.policy.POLICY_NAMES` observes a
        tree-global state and reward (−normalized end-to-end latency per
        op) and switches the whole tree's named policy through the
        configured transition. Convergence mirrors the ΔK stages: once the
        action has been stable for ``stable_window`` missions with
        exploration annealed (or ``max_stage_missions`` elapsed), the
        empirically best arm is committed; a detected workload shift
        re-opens exploration via :meth:`_restart`.
        """
        cfg = self.config
        if self._policy_agent is None:
            self._policy_agent = DQNAgent(cfg.policy_dqn, self._rng)
        agent = self._policy_agent
        if tree.compaction_policy is None:
            # Pin the tree so level growth keeps the active discipline while
            # the agent explores (flexible semantics: free, immediate).
            tree.set_named_policy(
                policy_from_index(current_policy_action(tree)),
                TransitionKind.FLEXIBLE,
            )
        current = current_policy_action(tree)
        ops = max(1, mission.n_operations)
        e2e = mission.total_time / ops
        if burning_in:
            # Scale still calibrating; neither learn the warm-up trend nor
            # let it bias the arm means _commit_policy reads.
            return
        if self.policy_converged:
            return
        self._policy_arm_stats.setdefault(current, []).append(e2e)
        state = policy_state(tree, mission, self._scale)
        reward = -self._scale.normalize(e2e)
        previous = self._policy_last
        if previous is not None:
            prev_state, prev_action = previous
            agent.observe(prev_state, prev_action, reward, state)
            for _ in range(cfg.updates_per_mission):
                agent.update()
        action = agent.act(state, explore=True)
        switched = action != current
        if switched:
            tree.set_named_policy(policy_from_index(action), cfg.transition)
        self._audit(
            "policy_action",
            arm=POLICY_NAMES[action],
            previous=POLICY_NAMES[current],
            switched=switched,
            epsilon=float(agent.epsilon),
            reward=None if previous is None else float(reward),
            e2e_latency=float(e2e),
            lookup_fraction=float(mission.lookup_fraction),
            window=len(self._policy_history),
        )
        self._policy_last = (state, action)
        agent.decay_epsilon()
        self._policy_history.append(action)
        self._policy_stage_missions += 1
        if self._policy_stage_complete(agent):
            self._commit_policy(tree)

    def _policy_stage_complete(self, agent: DQNAgent) -> bool:
        cfg = self.config
        if self._policy_stage_missions >= cfg.max_stage_missions:
            return True
        if len(self._policy_history) < cfg.stable_window:
            return False
        stable = len(set(self._policy_history)) == 1
        annealed = agent.epsilon <= agent.config.epsilon_min + 1e-9
        return stable and annealed

    def _commit_policy(self, tree: LSMTree) -> None:
        """Commit the empirically best named policy for this workload era.

        Like the ΔK stages, the exploration trajectory is a biased readout
        (ε-greedy can camp on one arm); the committed answer is the arm with
        the lowest mean observed end-to-end latency among arms with enough
        samples.
        """
        arms = {
            action: float(np.mean(latencies))
            for action, latencies in self._policy_arm_stats.items()
            if len(latencies) >= 3
        }
        if arms:
            best = min(arms, key=arms.get)
        elif self._policy_history:
            best = self._policy_history[-1]
        else:
            best = current_policy_action(tree)
        if best != current_policy_action(tree):
            tree.set_named_policy(
                policy_from_index(best), self.config.transition
            )
        self.policy_converged = True
        self.converged = True
        self._audit(
            "policy_commit",
            arm=POLICY_NAMES[best],
            arm_means={
                POLICY_NAMES[action]: mean for action, mean in arms.items()
            },
            stage_missions=self._policy_stage_missions,
        )

    # ------------------------------------------------------------------
    # Per-level tuning step
    # ------------------------------------------------------------------
    def _tune_level(
        self,
        tree: LSMTree,
        mission: MissionStats,
        level_no: int,
        track_stage: bool,
    ) -> None:
        cfg = self.config
        agent = self._agent(level_no)
        level = tree.level(level_no)
        ops = max(1, mission.n_operations)
        combined_latency = (
            cfg.alpha * mission.level_time(level_no) / ops
            + (1.0 - cfg.alpha) * mission.total_time / ops
        )
        arms = self._arm_stats.setdefault(level_no, {})
        arms.setdefault(level.policy, []).append(combined_latency)
        level_scale = self._level_scale(level_no)
        state = level_state(tree, mission, level_no, level_scale, self._scale)
        raw_reward = mission_reward(
            mission, level_no, cfg.alpha, level_scale, self._scale
        )
        window = self._reward_windows.setdefault(
            level_no, deque(maxlen=cfg.reward_smoothing)
        )
        window.append(raw_reward)
        reward = float(np.mean(window))
        if self._burn_in_left > 0:
            # Scales are still calibrating; acting or learning now would
            # absorb the warm-up trend into the critic.
            return
        previous = self._last.get(level_no)
        if previous is not None:
            prev_state, prev_action = previous
            if isinstance(agent, DDPGAgent):
                agent.observe(prev_state, prev_action, reward, state)
            else:
                agent.observe(prev_state, int(prev_action[0]), reward, state)
            for _ in range(cfg.updates_per_mission):
                agent.update()
        raw, delta = self._select_action(agent, state)
        new_policy = int(
            np.clip(level.policy + delta, 1, self.system_config.size_ratio)
        )
        if new_policy != level.policy:
            tree.set_policy(level_no, new_policy, cfg.transition)
        self._audit(
            "level_action",
            level=level_no,
            delta=int(delta),
            k=new_policy,
            sigma=(
                float(agent.noise.sigma)
                if isinstance(agent, DDPGAgent)
                else float(agent.epsilon)
            ),
            reward=float(reward),
        )
        self._last[level_no] = (state, raw)
        if isinstance(agent, DDPGAgent):
            agent.decay_noise()
        else:
            agent.decay_epsilon()
        if track_stage:
            self._k_history.append(new_policy)
            self._stage_missions += 1

    def _stage_complete(self, level_no: int) -> bool:
        cfg = self.config
        if self._stage_missions >= cfg.max_stage_missions:
            return True
        if len(self._k_history) < cfg.stable_window:
            return False
        spread = max(self._k_history) - min(self._k_history)
        stable = spread <= cfg.stability_tolerance
        return stable and self._exploration_low(self._agent(level_no))

    def _stage_policy(self, tree: LSMTree, level_no: int) -> int:
        """The policy a finished stage settles on.

        The exploration trajectory is a biased estimator of the learned
        optimum: OU noise can pin K against a boundary long enough to look
        "stable" while the critic has already learned to prefer a different
        region. So the stage's answer is extracted from the *actor*: starting
        from the trajectory's rounded mean, greedily follow the actor's
        deterministic ΔK recommendations (substituting the policy-dependent
        state features at each step) until a fixed point.
        """
        t = self.system_config.size_ratio
        arms = {
            policy: (float(np.mean(latencies)), len(latencies))
            for policy, latencies in self._arm_stats.get(level_no, {}).items()
            if len(latencies) >= 3
        }
        if arms:
            # Neighbor-smoothed means: the cost surface is smooth in K, so
            # averaging each arm with its neighbors damps lucky small-sample
            # arms without biasing the argmin.
            def smoothed(policy: int) -> float:
                total_weight = 0.0
                total = 0.0
                for neighbor, weight in (
                    (policy - 1, 0.5),
                    (policy, 1.0),
                    (policy + 1, 0.5),
                ):
                    if neighbor in arms:
                        mean, count = arms[neighbor]
                        effective = weight * min(count, 20)
                        total += effective * mean
                        total_weight += effective
                return total / total_weight

            return min(arms, key=smoothed)
        if self._k_history:
            k = int(np.clip(round(np.mean(self._k_history)), 1, t))
        else:
            k = tree.level(level_no).policy
        agent = self._agents.get(level_no)
        last = self._last.get(level_no)
        if not isinstance(agent, DDPGAgent) or last is None:
            return k
        state = last[0].copy()
        for _ in range(t):
            state[0] = k / t
            state[6] = min(k * state[1] / (2.0 * t), 1.0)
            action = float(agent.actor.forward(state[None, :])[0, 0])
            delta = discretize_action(action)
            next_k = int(np.clip(k + delta, 1, t))
            if next_k == k:
                break
            k = next_k
        return k

    # ------------------------------------------------------------------
    # Convergence & propagation
    # ------------------------------------------------------------------
    def _finish_tuning(self, tree: LSMTree) -> None:
        policies = self.propagator.propagate(self._learned, tree.n_levels)
        for level_no, policy in enumerate(policies, start=1):
            if tree.level(level_no).policy != policy:
                tree.set_policy(level_no, policy, self.config.transition)
        self._propagated = policies
        self.converged = True
        self._audit(
            "propagate",
            learned=list(self._learned),
            policies=list(policies),
        )

    def _maintain_converged(self, tree: LSMTree) -> None:
        """Keep newly created levels on the propagated profile."""
        assert self._propagated is not None
        if tree.n_levels > len(self._propagated):
            self._propagated = self.propagator.propagate(
                self._learned, tree.n_levels
            )
        for level_no in range(1, tree.n_levels + 1):
            want = self._propagated[level_no - 1]
            if tree.level(level_no).policy != want:
                tree.set_policy(level_no, want, self.config.transition)

    def _restart(self, reason: str = "detector") -> None:
        """Re-enter tuning after a workload shift (paper Section 3.1)."""
        self._audit(
            "restart",
            reason=reason,
            prior_restarts=self.restarts,
            was_converged=self.converged,
        )
        self.converged = False
        self._stage_idx = 0
        self._stage_missions = 0
        self._learned = []
        self._propagated = None
        self._k_history.clear()
        self._last.clear()
        self._reward_windows.clear()
        self._arm_stats.clear()
        self._burn_in_left = self.config.burn_in_missions
        self._policy_last = None
        self._policy_arm_stats.clear()
        self._policy_history.clear()
        self._policy_stage_missions = 0
        self.policy_converged = False
        self._scale.boost()
        for scale in self._level_scales.values():
            scale.boost()
        self.restarts += 1
        for agent in self._agents.values():
            agent.reset_exploration()
        if self._joint_agent is not None:
            self._joint_agent.reset_exploration()
        if self._policy_agent is not None:
            self._policy_agent.reset_exploration()

    def reset(self) -> None:
        """Full reset (drops all learned networks)."""
        self._agents.clear()
        self._joint_agent = None
        self._policy_agent = None
        self._restart(reason="reset")
        self.restarts = 0
        self.detector.reset()
        self._scale = RunningScale(alpha=self.config.scale_alpha)
        self._level_scales.clear()

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist and DESIGN.md §6)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Full serializable snapshot of the tuner.

        Covers the learned networks (per-level agents and the joint-ablation
        agent), replay buffers, optimizers, exploration state, normalization
        scales, the change detector, the tuning-stage bookkeeping and the
        shared RNG — everything needed to resume tuning bit-exactly.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "detector": self.detector.state_dict(),
            "scale": self._scale.state_dict(),
            "level_scales": {
                level_no: scale.state_dict()
                for level_no, scale in self._level_scales.items()
            },
            "agents": {
                level_no: agent.state_dict()
                for level_no, agent in self._agents.items()
            },
            "joint_agent": (
                None if self._joint_agent is None
                else self._joint_agent.state_dict()
            ),
            "policy_agent": (
                None if self._policy_agent is None
                else self._policy_agent.state_dict()
            ),
            "policy_last": (
                None if self._policy_last is None
                else (self._policy_last[0].copy(), int(self._policy_last[1]))
            ),
            "policy_arm_stats": {
                action: list(v)
                for action, v in self._policy_arm_stats.items()
            },
            "policy_history": list(self._policy_history),
            "policy_stage_missions": self._policy_stage_missions,
            "policy_converged": self.policy_converged,
            "last": {
                level_no: (state.copy(), action.copy())
                for level_no, (state, action) in self._last.items()
            },
            "reward_windows": {
                level_no: list(window)
                for level_no, window in self._reward_windows.items()
            },
            "arm_stats": {
                level_no: {policy: list(v) for policy, v in arms.items()}
                for level_no, arms in self._arm_stats.items()
            },
            "k_history": list(self._k_history),
            "stage_missions": self._stage_missions,
            "stage_idx": self._stage_idx,
            "learned": list(self._learned),
            "burn_in_left": self._burn_in_left,
            "propagated": (
                None if self._propagated is None else list(self._propagated)
            ),
            "converged": self.converged,
            "restarts": self.restarts,
            "total_model_update_s": self.total_model_update_s,
            "missions_observed": self.missions_observed,
            "audit": None if self.audit is None else self.audit.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the tuner in place from :meth:`state_dict` output.

        The tuner must have been constructed with an equivalent
        :class:`LerpConfig` (same agent architecture and mode). Agents are
        instantiated first — their construction-time weight draws are then
        overwritten, and the shared RNG state is restored last so the draw
        sequence continues exactly where the snapshot left it.
        """
        self.detector.load_state_dict(state["detector"])
        self._scale = RunningScale(alpha=self.config.scale_alpha)
        self._scale.load_state_dict(state["scale"])
        self._level_scales = {}
        for level_no, scale_state in state["level_scales"].items():
            scale = RunningScale(alpha=self.config.scale_alpha)
            scale.load_state_dict(scale_state)
            self._level_scales[int(level_no)] = scale
        self._agents = {}
        for level_no, agent_state in state["agents"].items():
            agent = self._make_agent()
            agent.load_state_dict(agent_state)
            self._agents[int(level_no)] = agent
        if state["joint_agent"] is None:
            self._joint_agent = None
        else:
            self._joint_agent = self._make_joint_agent()
            self._joint_agent.load_state_dict(state["joint_agent"])
        # Policy-dimension keys are absent in pre-policy snapshots.
        policy_agent = state.get("policy_agent")
        if policy_agent is None:
            self._policy_agent = None
        else:
            self._policy_agent = DQNAgent(self.config.policy_dqn, self._rng)
            self._policy_agent.load_state_dict(policy_agent)
        policy_last = state.get("policy_last")
        self._policy_last = (
            None
            if policy_last is None
            else (np.array(policy_last[0]), int(policy_last[1]))
        )
        self._policy_arm_stats = {
            int(action): list(v)
            for action, v in state.get("policy_arm_stats", {}).items()
        }
        self._policy_history = deque(
            state.get("policy_history", []), maxlen=self.config.stable_window
        )
        self._policy_stage_missions = int(state.get("policy_stage_missions", 0))
        self.policy_converged = bool(state.get("policy_converged", False))
        self._last = {
            int(level_no): (np.array(s), np.array(a))
            for level_no, (s, a) in state["last"].items()
        }
        self._reward_windows = {
            int(level_no): deque(values, maxlen=self.config.reward_smoothing)
            for level_no, values in state["reward_windows"].items()
        }
        self._arm_stats = {
            int(level_no): {
                int(policy): list(v) for policy, v in arms.items()
            }
            for level_no, arms in state["arm_stats"].items()
        }
        self._k_history = deque(
            state["k_history"], maxlen=self.config.stable_window
        )
        self._stage_missions = int(state["stage_missions"])
        self._stage_idx = int(state["stage_idx"])
        self._learned = [int(k) for k in state["learned"]]
        self._burn_in_left = int(state["burn_in_left"])
        propagated = state["propagated"]
        self._propagated = (
            None if propagated is None else [int(k) for k in propagated]
        )
        self.converged = bool(state["converged"])
        self.restarts = int(state["restarts"])
        self.total_model_update_s = float(state["total_model_update_s"])
        # Audit keys are absent in pre-telemetry snapshots.
        self.missions_observed = int(state.get("missions_observed", 0))
        audit_state = state.get("audit")
        if audit_state is not None:
            from repro.obs.audit import DecisionAuditLog

            self.audit = DecisionAuditLog.from_state_dict(audit_state)
        # Last: continue the exploration / sampling draw sequence exactly.
        self._rng.bit_generator.state = state["rng"]

    def warm_start(self, exploration_scale: float = 0.5) -> None:
        """Re-enter tuning for a *new* workload with pre-trained models.

        Keeps the learned networks, optimizers and replay buffers (the state
        vector encodes the workload mix, so old experience transfers) but
        clears episode-specific bookkeeping, re-opens scale calibration and
        restores exploration at ``exploration_scale`` of the configured
        level — a pre-trained critic needs less random search than a cold
        start. Used by the warm-start transfer experiment
        (:mod:`repro.bench.transfer`).
        """
        if exploration_scale <= 0.0:
            raise RLError(
                f"exploration_scale must be > 0, got {exploration_scale}"
            )
        self._restart(reason="warm_start")
        self.restarts = 0
        self.detector.reset()
        extra = [
            agent
            for agent in (self._joint_agent, self._policy_agent)
            if agent is not None
        ]
        for agent in list(self._agents.values()) + extra:
            if isinstance(agent, DDPGAgent):
                agent.reset_exploration(
                    agent.config.noise_sigma * exploration_scale
                )
            else:
                agent.reset_exploration(
                    max(
                        agent.config.epsilon_min,
                        agent.config.epsilon_start * exploration_scale,
                    )
                )

    # ------------------------------------------------------------------
    # Brute-force ablation: one agent over the joint action space
    # ------------------------------------------------------------------
    def _joint_state(self, tree: LSMTree, mission: MissionStats) -> np.ndarray:
        t = self.system_config.size_ratio
        ops = max(1, mission.n_operations)
        policies = np.zeros(JOINT_MAX_LEVELS)
        fills = np.zeros(JOINT_MAX_LEVELS)
        for level in tree.levels[:JOINT_MAX_LEVELS]:
            policies[level.level_no - 1] = level.policy / t
            fills[level.level_no - 1] = min(level.fill_ratio, 1.0)
        tail = np.asarray(
            [
                mission.lookup_fraction,
                self._scale.normalize(mission.total_time / ops),
            ]
        )
        return np.concatenate([policies, fills, tail])

    def _make_joint_agent(self) -> DDPGAgent:
        cfg = self.config
        joint_cfg = DDPGConfig(
            state_dim=2 * JOINT_MAX_LEVELS + 2,
            action_dim=JOINT_MAX_LEVELS,
            hidden=cfg.ddpg.hidden,
            noise_sigma=cfg.ddpg.noise_sigma,
            noise_decay=cfg.ddpg.noise_decay,
        )
        return DDPGAgent(joint_cfg, self._rng)

    def _observe_joint(self, tree: LSMTree, mission: MissionStats) -> None:
        cfg = self.config
        if self._joint_agent is None:
            self._joint_agent = self._make_joint_agent()
        agent = self._joint_agent
        state = self._joint_state(tree, mission)
        reward = -self._scale.normalize(
            mission.total_time / max(1, mission.n_operations)
        )
        previous = self._last.get(-1)
        if previous is not None:
            agent.observe(previous[0], previous[1], reward, state)
            for _ in range(cfg.updates_per_mission):
                agent.update()
        raw = agent.act(state, explore=True)
        for level in tree.levels[:JOINT_MAX_LEVELS]:
            delta = discretize_action(float(raw[level.level_no - 1]))
            new_policy = int(
                np.clip(level.policy + delta, 1, self.system_config.size_ratio)
            )
            if new_policy != level.policy:
                tree.set_policy(level.level_no, new_policy, cfg.transition)
        self._last[-1] = (state, raw)
        agent.decay_noise()
