"""RusKey core: the tuning models, mission loop and system facade."""

from repro.core.detector import WorkloadChangeDetector
from repro.core.extensions import BloomBudgetExtension
from repro.core.lerp import Lerp, LerpConfig, discretize_action
from repro.core.missions import MissionRunner
from repro.core.propagation import PolicyPropagator
from repro.core.ruskey import RusKey
from repro.core.state import (
    POLICY_STATE_DIM,
    STATE_DIM,
    RunningScale,
    current_policy_action,
    level_state,
    mission_reward,
    policy_state,
)
from repro.core.tuners import (
    GreedyThresholdTuner,
    LazyLevelingTuner,
    NamedPolicyTuner,
    NoOpTuner,
    StaticTuner,
    Tuner,
    paper_greedy_variants,
)

__all__ = [
    "RusKey",
    "Lerp",
    "LerpConfig",
    "discretize_action",
    "MissionRunner",
    "PolicyPropagator",
    "WorkloadChangeDetector",
    "BloomBudgetExtension",
    "Tuner",
    "NoOpTuner",
    "StaticTuner",
    "LazyLevelingTuner",
    "NamedPolicyTuner",
    "GreedyThresholdTuner",
    "paper_greedy_variants",
    "STATE_DIM",
    "POLICY_STATE_DIM",
    "RunningScale",
    "current_policy_action",
    "level_state",
    "policy_state",
    "mission_reward",
]
