"""RusKey core: the tuning models, mission loop and system facade."""

from repro.core.detector import WorkloadChangeDetector
from repro.core.extensions import BloomBudgetExtension
from repro.core.lerp import Lerp, LerpConfig, discretize_action
from repro.core.missions import MissionRunner
from repro.core.propagation import PolicyPropagator
from repro.core.ruskey import RusKey
from repro.core.state import STATE_DIM, RunningScale, level_state, mission_reward
from repro.core.tuners import (
    GreedyThresholdTuner,
    LazyLevelingTuner,
    NoOpTuner,
    StaticTuner,
    Tuner,
    paper_greedy_variants,
)

__all__ = [
    "RusKey",
    "Lerp",
    "LerpConfig",
    "discretize_action",
    "MissionRunner",
    "PolicyPropagator",
    "WorkloadChangeDetector",
    "BloomBudgetExtension",
    "Tuner",
    "NoOpTuner",
    "StaticTuner",
    "LazyLevelingTuner",
    "GreedyThresholdTuner",
    "paper_greedy_variants",
    "STATE_DIM",
    "RunningScale",
    "level_state",
    "mission_reward",
]
