"""Policy propagation across levels (paper Section 5.2).

Training data for deep levels is scarce (their compactions are exponentially
rarer), so Lerp learns only the shallow levels and *propagates*:

* **Case 1 — uniform bits-per-key**: every level sees the same read/write
  cost ratio, so the policy learned at Level 1 is copied to all levels.
* **Case 2 — Monkey allocation**: per-level FPRs differ by factors of ``T``,
  so the optimum varies by level; Lemma 5.1 (Eq. 4) infers each deeper
  level's optimum from the two levels above it, given the learned optima of
  Levels 1 and 2.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.config import BloomScheme
from repro.cost.model import propagate_policies
from repro.errors import ConfigError, PolicyError


class PolicyPropagator:
    """Extends learned shallow-level policies to a full policy vector."""

    def __init__(self, scheme: BloomScheme, size_ratio: int) -> None:
        if size_ratio < 2:
            raise ConfigError(f"size_ratio must be >= 2, got {size_ratio}")
        self.scheme = scheme
        self.size_ratio = size_ratio

    @property
    def levels_to_learn(self) -> int:
        """How many shallow levels the RL model must tune before
        propagation can take over (1 for uniform, 2 for Monkey)."""
        return 1 if self.scheme is BloomScheme.UNIFORM else 2

    def propagate(self, learned: Sequence[int], n_levels: int) -> List[int]:
        """Full policy vector for ``n_levels`` levels from the learned ones.

        ``learned`` must contain :attr:`levels_to_learn` policies (extra
        entries are ignored so callers can pass their full learned map).
        """
        if n_levels < 1:
            raise ConfigError(f"n_levels must be >= 1, got {n_levels}")
        needed = self.levels_to_learn
        if len(learned) < needed:
            raise PolicyError(
                f"{self.scheme.value} propagation needs {needed} learned "
                f"policies, got {len(learned)}"
            )
        for policy in learned[:needed]:
            if not 1 <= policy <= self.size_ratio:
                raise PolicyError(
                    f"learned policy {policy} outside [1, {self.size_ratio}]"
                )
        if self.scheme is BloomScheme.UNIFORM:
            return [learned[0]] * n_levels
        k1, k2 = learned[0], learned[1]
        return propagate_policies(k1, k2, n_levels, self.size_ratio)
