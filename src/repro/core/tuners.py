"""Tuner interface and the paper's non-RL baselines.

A *tuner* observes each finished mission and may adjust the tree's
compaction policies before the next one. Implementations:

* :class:`StaticTuner` — fixed policy ``K`` on every level; instantiates the
  paper's Aggressive (K=1), Moderate (K=5) and Lazy (K=10) baselines.
* :class:`LazyLevelingTuner` — Dostoevsky's Lazy-Leveling: the largest level
  uses ``K=1``, every other level ``K=T``.
* :class:`GreedyThresholdTuner` — the heuristic family of the paper's
  Figure 12: when the observed lookup share drops below ``h_bottom`` the
  policy is incremented (lazier); above ``h_top`` it is decremented
  (more aggressive).
* :class:`repro.core.lerp.Lerp` — the RL tuner (separate module).
"""

from __future__ import annotations

from repro.config import TransitionKind
from repro.errors import ConfigError
from repro.lsm.policy import PolicyLike, resolve_policy
from repro.lsm.stats import MissionStats
from repro.lsm.tree import LSMTree


class Tuner:
    """Observes missions and adjusts compaction policies."""

    name: str = "tuner"

    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        """Called once after each mission; may change ``tree`` policies."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any adaptive state (between experiment repetitions)."""

    def attach_audit(self, audit) -> None:
        """Attach a :class:`repro.obs.audit.DecisionAuditLog`.

        The non-RL baselines make no decisions worth auditing, so the base
        hook is a no-op; :class:`repro.core.lerp.Lerp` overrides it and
        records every arm pick, ΔK move, commit and restart.
        """
        return None

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of any adaptive state.

        The base tuners (static, lazy-leveling, greedy-threshold) hold only
        construction-time configuration, so the default is empty;
        :class:`repro.core.lerp.Lerp` overrides both hooks with its full
        learned state.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore adaptive state from :meth:`state_dict` output."""
        return None


class NoOpTuner(Tuner):
    """Leaves the tree exactly as configured."""

    name = "noop"

    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        return None


class StaticTuner(Tuner):
    """Pins every level (including newly created ones) to one policy."""

    def __init__(
        self,
        policy: int,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
        name: str = "",
    ) -> None:
        if policy < 1:
            raise ConfigError(f"policy must be >= 1, got {policy}")
        self.policy = policy
        self.transition = transition
        self.name = name or f"K={policy}"

    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        for level in tree.levels:
            if level.policy != self.policy:
                tree.set_policy(level.level_no, self.policy, self.transition)


class NamedPolicyTuner(Tuner):
    """Pins the tree to one named compaction policy (leveling / tiering /
    lazy-leveling, see :mod:`repro.lsm.policy`).

    The pin itself keeps the tree on the discipline as it grows (under
    lazy-leveling the bottom level moves); this tuner only re-establishes
    the pin if something else dropped it. The static arms of the policy
    matrix benchmark are instances of this tuner.
    """

    def __init__(
        self,
        policy: PolicyLike,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
        name: str = "",
    ) -> None:
        self.policy = resolve_policy(policy)
        self.transition = transition
        self.name = name or self.policy.name

    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        if tree.compaction_policy != self.policy:
            tree.set_named_policy(self.policy, self.transition)


class LazyLevelingTuner(Tuner):
    """Dostoevsky's Lazy-Leveling: tiering everywhere, leveling at the
    bottom. Reapplied as the tree grows so the largest level stays K=1."""

    name = "lazy-leveling"

    def __init__(self, transition: TransitionKind = TransitionKind.FLEXIBLE) -> None:
        self.transition = transition

    def desired_policies(self, tree: LSMTree) -> "list[int]":
        t = tree.config.size_ratio
        n = tree.n_levels
        if n == 0:
            return []
        return [t] * (n - 1) + [1]

    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        for level, want in zip(tree.levels, self.desired_policies(tree)):
            if level.policy != want:
                tree.set_policy(level.level_no, want, self.transition)


class GreedyThresholdTuner(Tuner):
    """Per-level threshold heuristic (paper Figure 12).

    "If the percentage of lookups in the level is less than ``h_bottom``,
    the greedy algorithm identifies the workload as write-heavy and
    increases the compaction policy of the level by one. Conversely, if the
    percentage of lookups in the level exceeds ``h_top``, the greedy
    algorithm recognizes the workload as read-heavy and decreases the
    compaction policy by one."

    The per-level lookup share is estimated from the level's read/write
    latency split for the mission, falling back to the global mission mix
    for levels the mission did not touch.
    """

    def __init__(
        self,
        h_bottom: float,
        h_top: float,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
        name: str = "",
    ) -> None:
        if not 0.0 <= h_bottom <= h_top <= 1.0:
            raise ConfigError(
                f"need 0 <= h_bottom <= h_top <= 1, got {h_bottom}, {h_top}"
            )
        self.h_bottom = h_bottom
        self.h_top = h_top
        self.transition = transition
        self.name = name or f"greedy({int(h_bottom*100)}%,{int(h_top*100)}%)"

    def _level_lookup_share(self, mission: MissionStats, level_no: int) -> float:
        read = mission.level_read_time.get(level_no, 0.0)
        write = mission.level_write_time.get(level_no, 0.0)
        if read + write <= 0.0:
            return mission.lookup_fraction
        return read / (read + write)

    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        t = tree.config.size_ratio
        for level in tree.levels:
            share = self._level_lookup_share(mission, level.level_no)
            if share < self.h_bottom and level.policy < t:
                tree.set_policy(level.level_no, level.policy + 1, self.transition)
            elif share > self.h_top and level.policy > 1:
                tree.set_policy(level.level_no, level.policy - 1, self.transition)


def paper_greedy_variants() -> "list[GreedyThresholdTuner]":
    """The Figure 12 threshold settings: four symmetric, two biased."""
    settings = [
        (0.50, 0.50),
        (0.33, 0.67),
        (0.25, 0.75),
        (0.10, 0.90),
        (0.25, 0.50),
        (0.50, 0.75),
    ]
    return [GreedyThresholdTuner(h_bottom, h_top) for h_bottom, h_top in settings]
