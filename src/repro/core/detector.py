"""Workload change detection.

RusKey's statistics collector "collects the operation composition in each
mission for detecting changes in the application workload" (Section 3);
when the workload shifts, "the actor-critic network is no longer in
convergence, and Lerp will restart to exploit compaction policies under the
new workload". This detector supplies the restart signal: it tracks an
exponential moving average of the mission lookup fraction and fires when
recent missions deviate persistently.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError


class WorkloadChangeDetector:
    """EMA-based shift detector over the mission lookup fraction."""

    # Detection hyperparameters, re-supplied by the owning Lerp at
    # reconstruction; only the mutable EMA/run-length state is snapshotted.
    _snapshot_exempt = frozenset({"threshold", "ema_alpha", "consecutive"})

    def __init__(
        self,
        threshold: float = 0.12,
        ema_alpha: float = 0.1,
        consecutive: int = 2,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigError(f"threshold must be in (0, 1], got {threshold}")
        if not 0.0 < ema_alpha <= 1.0:
            raise ConfigError(f"ema_alpha must be in (0, 1], got {ema_alpha}")
        if consecutive < 1:
            raise ConfigError(f"consecutive must be >= 1, got {consecutive}")
        self.threshold = threshold
        self.ema_alpha = ema_alpha
        self.consecutive = consecutive
        self._ema: Optional[float] = None
        self._streak = 0
        self.changes_detected = 0

    @property
    def baseline(self) -> Optional[float]:
        """Current EMA of the lookup fraction (``None`` before any input)."""
        return self._ema

    def observe(self, lookup_fraction: float) -> bool:
        """Feed one mission's lookup fraction; returns ``True`` on a shift.

        On detection the baseline snaps to the new composition so that one
        shift produces one signal.
        """
        if not 0.0 <= lookup_fraction <= 1.0:
            raise ConfigError(
                f"lookup_fraction must be in [0, 1], got {lookup_fraction}"
            )
        if self._ema is None:
            self._ema = lookup_fraction
            return False
        deviated = abs(lookup_fraction - self._ema) > self.threshold
        if deviated:
            self._streak += 1
            if self._streak >= self.consecutive:
                self._ema = lookup_fraction
                self._streak = 0
                self.changes_detected += 1
                return True
        else:
            self._streak = 0
            self._ema = (
                self.ema_alpha * lookup_fraction + (1.0 - self.ema_alpha) * self._ema
            )
        return False

    def reset(self) -> None:
        self._ema = None
        self._streak = 0

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "ema": self._ema,
            "streak": self._streak,
            "changes_detected": self.changes_detected,
        }

    def load_state_dict(self, state: dict) -> None:
        ema = state["ema"]
        self._ema = None if ema is None else float(ema)
        self._streak = int(state["streak"])
        self.changes_detected = int(state["changes_detected"])
