"""RusKey: the self-tuning key-value store (the paper's system).

:class:`RusKey` is a thin facade over a pluggable storage engine
(:class:`~repro.engine.base.KVEngine`) and its tuner(s). Per the paper's
workflow (Section 3.1): the store processes a mission, the statistics
collector reports mission statistics, the tuner extracts experience
samples, updates its networks and issues a tuning strategy, and the
FLSM-tree applies it through the flexible transition before the next
mission.

The engine is an :class:`~repro.lsm.flsm.FLSMTree` by default; pass
``n_shards > 1`` for a hash-partitioned
:class:`~repro.engine.sharded.ShardedStore` (or any engine via ``engine=``).
Tuning composes across shards in two ways:

* ``tuner=`` — one *shared* tuner instance observes every shard's tree and
  per-shard mission stats in turn (the natural fit for stateless baselines
  such as :class:`~repro.core.tuners.StaticTuner`);
* default / ``tuner_factory=`` — one *independent* tuner per shard (the
  default builds one :class:`~repro.core.lerp.Lerp` per shard, the
  per-instance-model composition of CAMAL/ArceKV style tuning).

The same facade also hosts the baselines — pass a
:class:`~repro.core.tuners.StaticTuner` for the paper's Aggressive /
Moderate / Lazy configurations, or any other tuner.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.config import SystemConfig, TransitionKind
from repro.core.lerp import Lerp, LerpConfig
from repro.core.missions import MissionRunner
from repro.core.tuners import Tuner
from repro.engine.sharded import ShardedStore
from repro.errors import ConfigError, SnapshotError, WorkloadError
from repro.lsm.flsm import FLSMTree
from repro.lsm.stats import MissionStats
from repro.workload.spec import Mission, WorkloadSpec


class RusKey:
    """A storage engine driven by (pluggable) tuning models."""

    # config is the immutable blueprint; tree/tuner alias engine/tuners[0],
    # both of which state_dict already serializes.
    _snapshot_exempt = frozenset({"config", "tree", "tuner"})

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        tuner: Optional[Tuner] = None,
        lerp_config: Optional[LerpConfig] = None,
        chunk_size: int = 64,
        engine=None,
        n_shards: int = 1,
        tuner_factory: Optional[Callable[[SystemConfig], Tuner]] = None,
        tuners: Optional[List[Tuner]] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        if engine is None:
            if n_shards > 1:
                engine = ShardedStore(self.config, n_shards)
            else:
                engine = FLSMTree(self.config)
        elif n_shards != 1:
            raise ConfigError(
                "pass either engine= or n_shards, not both "
                f"(got an explicit engine and n_shards={n_shards})"
            )
        self.engine = engine
        #: Legacy alias — for an unsharded store the engine *is* the tree.
        self.tree = engine
        targets = engine.tuning_targets()
        if tuners is not None:
            if len(tuners) != len(targets):
                raise ConfigError(
                    f"got {len(tuners)} tuners for {len(targets)} tuning "
                    "targets; pass one per target"
                )
            self.tuners = list(tuners)
        elif tuner_factory is not None:
            self.tuners: List[Tuner] = [
                tuner_factory(self.config) for _ in targets
            ]
        elif tuner is not None:
            self.tuners = [tuner] * len(targets)
        else:
            # Offset each shard tuner's RNG seed the same way ShardedStore
            # offsets shard tree seeds: with one seed the per-shard Lerps
            # would draw identical exploration noise over near-identical
            # shard stats and tune in lockstep instead of independently.
            base = lerp_config if lerp_config is not None else LerpConfig()
            self.tuners = [
                Lerp(
                    self.config,
                    base if i == 0 else dataclasses.replace(base, seed=base.seed + i),
                )
                for i in range(len(targets))
            ]
        #: The (first) tuner; with independent per-shard tuners see
        #: :attr:`tuners` for the rest.
        self.tuner: Tuner = self.tuners[0]
        self.runner = MissionRunner(engine, chunk_size=chunk_size)
        self.mission_log: List[MissionStats] = []
        self.policy_history: List[List[int]] = []

    # ------------------------------------------------------------------
    # Data access (pass-through to the engine)
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The engine's statistics view (collector or cross-shard view)."""
        return self.engine.stats

    def put(self, key: int, value: int) -> None:
        """Insert or overwrite one entry."""
        self.engine.put(key, value)

    def put_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Vectorized insert of many entries (the hot ingestion path)."""
        self.engine.put_batch(keys, values)

    def get(self, key: int) -> Optional[int]:
        """Point lookup; ``None`` when absent or deleted."""
        return self.engine.get(key)

    def get_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized point lookups; returns ``(found_mask, values)``."""
        return self.engine.get_batch(keys)

    def delete(self, key: int) -> None:
        """Delete one entry."""
        self.engine.delete(key)

    def range_lookup(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All live entries with ``lo <= key <= hi``."""
        return self.engine.range_lookup(lo, hi)

    def range_scan_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized range lookups; returns flat ``(keys, values,
        offsets)`` arrays (see :meth:`LSMTree.range_scan_batch`)."""
        return self.engine.range_scan_batch(los, his)

    def bulk_load(
        self, keys: np.ndarray, values: np.ndarray, distribute: bool = False
    ) -> None:
        """Populate an empty store (no simulated time is charged)."""
        self.engine.bulk_load(keys, values, distribute=distribute)

    def policies(self) -> List[int]:
        """Current per-level compaction policies (representative shard)."""
        return self.engine.policies()

    def named_policy(self) -> Optional[str]:
        """The pinned named compaction policy, if any (representative
        shard)."""
        return self.engine.named_policy()

    def set_named_policy(
        self,
        policy,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
    ) -> None:
        """Pin the engine to a named compaction policy (leveling / tiering /
        lazy-leveling)."""
        self.engine.apply_named_policy(policy, transition)

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------
    def attach_audit(self, audit) -> None:
        """Attach one :class:`repro.obs.audit.DecisionAuditLog` to every
        distinct tuner (a shared tuner instance is attached once). Audit
        recording is host-side only — simulated results are bit-identical
        with or without it (DESIGN.md §12)."""
        for tuner in dict.fromkeys(self.tuners):
            tuner.attach_audit(audit)

    # ------------------------------------------------------------------
    # Mission loop
    # ------------------------------------------------------------------
    def run_mission(self, mission: Mission) -> MissionStats:
        """Process one mission, then let the tuner(s) adapt the engine."""
        stats = self.runner.run(mission)
        parts = list(self.engine.last_mission_breakdown())
        for tuner, target, part in zip(
            self.tuners, self.engine.tuning_targets(), parts
        ):
            tuner.observe_mission(target, part)
        if parts and parts[0] is not stats:
            # Sharded engines return an aggregate record; fold the tuning
            # time the tuners just charged to the per-shard windows into it.
            stats.model_update_time = float(
                sum(p.model_update_time for p in parts)
            )
        self.mission_log.append(stats)
        self.policy_history.append(self.policies())
        return stats

    def run_workload(
        self,
        workload: WorkloadSpec,
        n_missions: int,
        mission_size: int,
        load: bool = True,
    ) -> List[MissionStats]:
        """Bulk load the workload's records (optional) and run its missions."""
        if n_missions < 1 or mission_size < 1:
            raise WorkloadError("n_missions and mission_size must be >= 1")
        if load:
            if self.engine.total_entries:
                raise WorkloadError(
                    "store already contains data; pass load=False to continue"
                )
            if not hasattr(workload, "load_records"):
                raise WorkloadError(
                    f"workload {workload.name!r} does not provide load_records"
                )
            keys, values = workload.load_records()  # type: ignore[attr-defined]
            self.bulk_load(keys, values)
        return self.run_missions(workload.missions(n_missions, mission_size))

    def run_missions(self, missions: Iterable[Mission]) -> List[MissionStats]:
        """Run a pre-built mission stream."""
        return [self.run_mission(mission) for mission in missions]

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist and DESIGN.md §6)
    # ------------------------------------------------------------------
    @property
    def missions_run(self) -> int:
        """Number of missions processed so far (the resume cursor)."""
        return len(self.mission_log)

    def state_dict(self) -> dict:
        """Full serializable snapshot of the store: engine, tuner(s) and the
        controller's mission/policy logs. A shared tuner (one instance
        observing every shard) is snapshotted once."""
        shared = all(t is self.tuners[0] for t in self.tuners)
        return {
            "engine": self.engine.state_dict(),
            "tuners_shared": shared,
            "tuners": (
                [self.tuners[0].state_dict()]
                if shared
                else [t.state_dict() for t in self.tuners]
            ),
            "mission_log": [m.state_dict() for m in self.mission_log],
            "policy_history": [list(p) for p in self.policy_history],
            "chunk_size": self.runner.chunk_size,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore engine, tuner(s) and logs in place. The store must have
        been constructed with the same config, topology and tuner kinds."""
        self.engine.load_state_dict(state["engine"])
        saved = state["tuners"]
        saved_shared = bool(state["tuners_shared"])
        shared = all(t is self.tuners[0] for t in self.tuners)
        if saved_shared != shared and len(self.tuners) > 1:
            raise SnapshotError(
                "tuner topology mismatch: snapshot was taken with "
                f"{'a shared tuner' if saved_shared else 'independent tuners'}"
                f", this store has "
                f"{'a shared tuner' if shared else 'independent tuners'}"
            )
        if saved_shared:
            self.tuners[0].load_state_dict(saved[0])
        else:
            if len(saved) != len(self.tuners):
                raise SnapshotError(
                    f"tuner-count mismatch: snapshot has {len(saved)}, "
                    f"this store has {len(self.tuners)}"
                )
            for tuner, tuner_state in zip(self.tuners, saved):
                tuner.load_state_dict(tuner_state)
        self.mission_log = [
            MissionStats.from_state_dict(m) for m in state["mission_log"]
        ]
        self.policy_history = [list(p) for p in state["policy_history"]]

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def latency_series(self) -> np.ndarray:
        """Per-mission mean latency per operation (simulated seconds)."""
        return np.asarray([m.latency_per_op for m in self.mission_log])

    def mean_latency(self, last_n: Optional[int] = None) -> float:
        """Mean per-op latency over the last ``last_n`` missions (or all)."""
        series = self.latency_series()
        if len(series) == 0:
            return 0.0
        if last_n is not None:
            series = series[-last_n:]
        return float(series.mean())
