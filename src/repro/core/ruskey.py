"""RusKey: the self-tuning key-value store (the paper's system).

:class:`RusKey` wires together the FLSM-tree, the statistics collector, the
mission runner and a tuner (Lerp by default). Per the paper's workflow
(Section 3.1): the store processes a mission, the statistics collector
reports mission statistics, the tuner extracts experience samples, updates
its networks and issues a tuning strategy, and the FLSM-tree applies it
through the flexible transition before the next mission.

The same facade also hosts the baselines — pass a
:class:`~repro.core.tuners.StaticTuner` for the paper's Aggressive /
Moderate / Lazy configurations, or any other tuner.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.core.lerp import Lerp, LerpConfig
from repro.core.missions import MissionRunner
from repro.core.tuners import Tuner
from repro.errors import WorkloadError
from repro.lsm.flsm import FLSMTree
from repro.lsm.stats import MissionStats, StatsCollector
from repro.workload.spec import Mission, WorkloadSpec


class RusKey:
    """An FLSM-tree store driven by a (pluggable) tuning model."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        tuner: Optional[Tuner] = None,
        lerp_config: Optional[LerpConfig] = None,
        chunk_size: int = 64,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        self.tree = FLSMTree(self.config)
        self.tuner: Tuner = (
            tuner if tuner is not None else Lerp(self.config, lerp_config)
        )
        self.runner = MissionRunner(self.tree, chunk_size=chunk_size)
        self.mission_log: List[MissionStats] = []
        self.policy_history: List[List[int]] = []

    # ------------------------------------------------------------------
    # Data access (pass-through to the tree)
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StatsCollector:
        return self.tree.stats

    def put(self, key: int, value: int) -> None:
        """Insert or overwrite one entry."""
        self.tree.put(key, value)

    def get(self, key: int) -> Optional[int]:
        """Point lookup; ``None`` when absent or deleted."""
        return self.tree.get(key)

    def delete(self, key: int) -> None:
        """Delete one entry."""
        self.tree.delete(key)

    def range_lookup(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All live entries with ``lo <= key <= hi``."""
        return self.tree.range_lookup(lo, hi)

    def bulk_load(
        self, keys: np.ndarray, values: np.ndarray, distribute: bool = False
    ) -> None:
        """Populate an empty store (no simulated time is charged)."""
        self.tree.bulk_load(keys, values, distribute=distribute)

    def policies(self) -> List[int]:
        """Current per-level compaction policies."""
        return self.tree.policies()

    # ------------------------------------------------------------------
    # Mission loop
    # ------------------------------------------------------------------
    def run_mission(self, mission: Mission) -> MissionStats:
        """Process one mission, then let the tuner adapt the tree."""
        stats = self.runner.run(mission)
        self.tuner.observe_mission(self.tree, stats)
        self.mission_log.append(stats)
        self.policy_history.append(self.policies())
        return stats

    def run_workload(
        self,
        workload: WorkloadSpec,
        n_missions: int,
        mission_size: int,
        load: bool = True,
    ) -> List[MissionStats]:
        """Bulk load the workload's records (optional) and run its missions."""
        if n_missions < 1 or mission_size < 1:
            raise WorkloadError("n_missions and mission_size must be >= 1")
        if load:
            if self.tree.total_entries:
                raise WorkloadError(
                    "store already contains data; pass load=False to continue"
                )
            if not hasattr(workload, "load_records"):
                raise WorkloadError(
                    f"workload {workload.name!r} does not provide load_records"
                )
            keys, values = workload.load_records()  # type: ignore[attr-defined]
            self.bulk_load(keys, values)
        return self.run_missions(workload.missions(n_missions, mission_size))

    def run_missions(self, missions: Iterable[Mission]) -> List[MissionStats]:
        """Run a pre-built mission stream."""
        return [self.run_mission(mission) for mission in missions]

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def latency_series(self) -> np.ndarray:
        """Per-mission mean latency per operation (simulated seconds)."""
        return np.asarray([m.latency_per_op for m in self.mission_log])

    def mean_latency(self, last_n: Optional[int] = None) -> float:
        """Mean per-op latency over the last ``last_n`` missions (or all)."""
        series = self.latency_series()
        if len(series) == 0:
            return 0.0
        if last_n is not None:
            series = series[-last_n:]
        return float(series.mean())
