"""Extensions beyond the paper's core system.

The paper's Limitations section (Section 7) names further tuning dimensions
as future work: "we could learn to adjust the memory allocation for Bloom
filters ... or adapt size ratios based on a given workload. The challenge
here is to maintain a practical action space and a reasonable LSM-tree
transition cost."

:class:`BloomBudgetExtension` implements the first of these with exactly
that constraint in mind: it wraps any base tuner (Lerp, a static baseline,
a heuristic) and additionally hill-climbs the store's bits-per-key budget.
Changing the budget is transition-friendly by construction — like the
flexible policy transition, it only affects filters built for *future*
runs, so the action is free and immediate, and the action space stays tiny
(±1 bit per adjustment window).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.tuners import Tuner
from repro.errors import ConfigError
from repro.lsm.stats import MissionStats
from repro.lsm.tree import LSMTree


class BloomBudgetExtension(Tuner):
    """Wraps a tuner and hill-climbs the Bloom bits-per-key budget.

    Every ``window`` missions the extension compares the mean mission
    latency of the current window against the previous one. If the last
    budget move improved latency, it keeps moving in the same direction;
    otherwise it reverses. Budgets are clamped to ``[min_bits, max_bits]``.

    The search is deliberately conservative (±``step`` bits per window)
    because budget changes only reach the data as runs are rewritten by
    compaction — evaluating a move needs a full window of missions.
    """

    # Constructor configuration (identity + sweep schedule), rebuilt from
    # the blueprint and never mutated after __init__.
    _snapshot_exempt = frozenset({"name", "window", "step", "min_bits", "max_bits"})

    def __init__(
        self,
        base_tuner: Tuner,
        window: int = 40,
        step: float = 1.0,
        min_bits: float = 2.0,
        max_bits: float = 16.0,
    ) -> None:
        if window < 2:
            raise ConfigError(f"window must be >= 2, got {window}")
        if step <= 0:
            raise ConfigError(f"step must be > 0, got {step}")
        if not 0 < min_bits <= max_bits:
            raise ConfigError(
                f"need 0 < min_bits <= max_bits, got {min_bits}, {max_bits}"
            )
        self.base_tuner = base_tuner
        self.name = f"{base_tuner.name}+bloom-budget"
        self.window = window
        self.step = step
        self.min_bits = min_bits
        self.max_bits = max_bits
        self._latencies: List[float] = []
        self._previous_window: Optional[float] = None
        self._direction = 1.0
        self.budget_history: List[float] = []

    def observe_mission(self, tree: LSMTree, mission: MissionStats) -> None:
        self.base_tuner.observe_mission(tree, mission)
        self._latencies.append(mission.latency_per_op)
        if len(self._latencies) < self.window:
            return
        current = sum(self._latencies) / len(self._latencies)
        self._latencies.clear()
        if self._previous_window is not None and current > self._previous_window:
            self._direction = -self._direction  # last move hurt: reverse
        self._previous_window = current
        new_budget = min(
            self.max_bits,
            max(self.min_bits, tree.bits_per_key + self._direction * self.step),
        )
        if new_budget != tree.bits_per_key:
            tree.set_bits_per_key(new_budget)
        self.budget_history.append(tree.bits_per_key)

    def reset(self) -> None:
        self.base_tuner.reset()
        self._latencies.clear()
        self._previous_window = None
        self._direction = 1.0
        self.budget_history.clear()

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The hill-climb state plus the wrapped tuner's state."""
        return {
            "base_tuner": self.base_tuner.state_dict(),
            "latencies": list(self._latencies),
            "previous_window": self._previous_window,
            "direction": self._direction,
            "budget_history": list(self.budget_history),
        }

    def load_state_dict(self, state: dict) -> None:
        self.base_tuner.load_state_dict(state["base_tuner"])
        self._latencies = [float(x) for x in state["latencies"]]
        previous = state["previous_window"]
        self._previous_window = None if previous is None else float(previous)
        self._direction = float(state["direction"])
        self.budget_history = [float(x) for x in state["budget_history"]]
