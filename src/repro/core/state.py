"""RL state construction for Lerp.

"The state captures the parameters related to the FLSM-tree and the workload
within a mission. Our model state consists of internal statistics of the
LSM-tree, such as the number of read and write I/Os, the level capacities,
and the current compaction policies at each level. It also includes workload
statistics such as the read/write ratio in the previous mission."
(paper Section 5.1.1.)

:func:`level_state` builds the per-level feature vector from exactly those
quantities, normalized so every feature is roughly in [0, 1] regardless of
mission size or device speed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RLError
from repro.lsm.policy import POLICY_NAMES, classify_policies, policy_index
from repro.lsm.stats import MissionStats
from repro.lsm.tree import LSMTree

#: Dimensionality of the per-level state vector.
STATE_DIM = 8

#: Dimensionality of the named-policy (tree-global) state vector.
POLICY_STATE_DIM = 8


class RunningScale:
    """Calibrate-then-freeze normalization anchor for latencies.

    The scale averages its first ``calibration_samples`` inputs (a plain
    running mean) and then *freezes*. An adaptive scale cannot be used to
    normalize an RL reward here: it tracks whatever latency the current
    policy produces, so any policy held long enough drifts toward the same
    normalized reward (≈ 1) and the agent ends up comparing early samples
    against late samples instead of policy against policy. A frozen anchor
    keeps the reward an absolute (affine) function of latency within one
    workload era; :meth:`boost` re-opens calibration when the workload
    shifts and latency magnitudes genuinely change.

    ``alpha`` is retained as the (slow) post-calibration adaptation rate;
    the default of 0 freezes completely.
    """

    # Hyperparameters fixed at construction (the owner's config re-supplies
    # them); only the anchor value and sample count are mutable state.
    _snapshot_exempt = frozenset({"alpha", "calibration_samples"})

    def __init__(
        self,
        alpha: float = 0.0,
        initial: float = 0.0,
        calibration_samples: int = 8,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise RLError(f"alpha must be in [0, 1], got {alpha}")
        if calibration_samples < 1:
            raise RLError(
                f"calibration_samples must be >= 1, got {calibration_samples}"
            )
        self.alpha = alpha
        self.calibration_samples = calibration_samples
        self.value = initial
        self._count = 1 if initial > 0.0 else 0

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the anchor and return the current scale."""
        if sample < 0:
            raise RLError(f"scale samples must be >= 0, got {sample}")
        self._count += 1
        if self._count == 1 or self.value == 0.0:
            self.value = sample
        elif self._count <= self.calibration_samples:
            self.value += (sample - self.value) / self._count
        elif self.alpha > 0.0:
            self.value += self.alpha * (sample - self.value)
        return self.value

    def boost(self) -> None:
        """Re-open calibration (workload shift): the next
        ``calibration_samples`` inputs re-anchor the scale."""
        self._count = 0

    def normalize(self, sample: float) -> float:
        """``sample / scale`` clipped to [0, 10]; 0 before initialization."""
        if self.value <= 0.0:
            return 0.0
        return float(min(sample / self.value, 10.0))

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The mutable pieces: the anchor value and the sample count (the
        hyperparameters come from the owner's config at reconstruction)."""
        return {"value": self.value, "count": self._count}

    def load_state_dict(self, state: dict) -> None:
        self.value = float(state["value"])
        self._count = int(state["count"])


def level_state(
    tree: LSMTree,
    mission: MissionStats,
    level_no: int,
    level_scale: RunningScale,
    e2e_scale: RunningScale,
) -> np.ndarray:
    """Feature vector for ``level_no`` after ``mission``.

    Features (all ~[0, 1]):

    0. current policy ``K / T``
    1. level fill ratio ``D/C``
    2. mission lookup fraction γ
    3. level read latency per op (normalized by the level's running scale)
    4. level write latency per op (same normalization)
    5. end-to-end latency per op (normalized by the e2e running scale)
    6. number of runs in the level / ``2T`` (transition debt indicator)
    7. random read I/Os per lookup (read-amplification proxy, /4)
    """
    level = tree.level(level_no)
    t = tree.config.size_ratio
    ops = max(1, mission.n_operations)
    level_read = mission.level_read_time.get(level_no, 0.0) / ops
    level_write = mission.level_write_time.get(level_no, 0.0) / ops
    e2e = mission.total_time / ops
    reads_per_lookup = (
        mission.io.random_reads / mission.n_lookups if mission.n_lookups else 0.0
    )
    return np.asarray(
        [
            level.policy / t,
            min(level.fill_ratio, 1.0),
            mission.lookup_fraction,
            level_scale.normalize(level_read),
            level_scale.normalize(level_write),
            e2e_scale.normalize(e2e),
            min(level.n_runs / (2.0 * t), 1.0),
            min(reads_per_lookup / 4.0, 1.0),
        ],
        dtype=np.float64,
    )


def current_policy_action(tree: LSMTree) -> int:
    """The discrete named-policy action the tree currently embodies.

    A pinned tree reports its pin; an unpinned tree whose ``K`` vector
    matches a named discipline reports that; anything else (e.g. the K=5
    Moderate baseline, or mid-tuning per-level vectors) defaults to the
    leveling action — the paper's initial configuration.
    """
    name = tree.named_policy()
    if name is None:
        name = classify_policies(tree.policies(), tree.config.size_ratio)
    return policy_index(name) if name is not None else 0


def policy_state(
    tree: LSMTree,
    mission: MissionStats,
    e2e_scale: RunningScale,
) -> np.ndarray:
    """Tree-global feature vector for the named-policy action dimension.

    Features (all ~[0, 1]):

    0.   mission lookup fraction γ (point + range)
    1.   mission range fraction (range scans punish tiering hardest)
    2.   end-to-end latency per op (normalized by the e2e running scale)
    3-5. one-hot of the current named policy (leveling/tiering/lazy-leveling)
    6.   tree depth / 8
    7.   mean runs per level / ``2T`` (read-amplification / merge-debt proxy)
    """
    ops = max(1, mission.n_operations)
    t = tree.config.size_ratio
    one_hot = np.zeros(len(POLICY_NAMES))
    one_hot[current_policy_action(tree)] = 1.0
    mean_runs = (
        float(np.mean([level.n_runs for level in tree.levels]))
        if tree.levels
        else 0.0
    )
    head = np.asarray(
        [
            mission.lookup_fraction,
            mission.n_ranges / ops,
            e2e_scale.normalize(mission.total_time / ops),
        ]
    )
    tail = np.asarray(
        [
            min(tree.n_levels / 8.0, 1.0),
            min(mean_runs / (2.0 * t), 1.0),
        ]
    )
    return np.concatenate([head, one_hot, tail]).astype(np.float64)


def mission_reward(
    mission: MissionStats,
    level_no: int,
    alpha: float,
    level_scale: RunningScale,
    e2e_scale: RunningScale,
) -> float:
    """Lerp's reward for ``level_no``: ``-(α·t_i + (1-α)·t')``.

    ``t_i`` is the level's latency and ``t'`` the end-to-end latency, both
    per operation (paper Section 5.1.3, α = 1/2 by default). Lower latency
    ⇒ higher (less negative) reward.

    Each term is normalized by its *own* slowly-moving scale. A level's
    latency is a small share of the end-to-end latency, so normalizing both
    by one scale would bury the local signal (exactly the signal the
    level-based model exists to exploit) under end-to-end compaction noise.
    """
    if not 0.0 <= alpha <= 1.0:
        raise RLError(f"alpha must be in [0, 1], got {alpha}")
    ops = max(1, mission.n_operations)
    t_level = mission.level_time(level_no) / ops
    t_e2e = mission.total_time / ops
    level_scale.update(t_level)
    return -(
        alpha * level_scale.normalize(t_level)
        + (1.0 - alpha) * e2e_scale.normalize(t_e2e)
    )
