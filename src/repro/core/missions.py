"""Mission execution against a storage engine.

:class:`MissionRunner` applies a :class:`~repro.workload.spec.Mission` to
any :class:`~repro.engine.base.KVEngine` (a single LSM/FLSM tree or a
:class:`~repro.engine.sharded.ShardedStore`) and returns its
:class:`~repro.lsm.stats.MissionStats`. Operations are processed in
*chunks*: inside a chunk, updates are applied in their original order as
one vectorized ``put_batch``, point lookups are then resolved as one
vectorized ``get_batch``, and range lookups as one vectorized
``range_scan_batch`` (bit-identical in cost and op accounting to per-op
``range_lookup`` calls in chunk order — see :mod:`repro.lsm.rangepath`).
``chunk_size=1`` degenerates to exact serial execution; larger chunks
reorder lookups against updates by at most one chunk, which leaves the cost
statistics of random workloads unchanged (tests verify serial and chunked
runs agree) while making the large benchmarks an order of magnitude faster.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.lsm.stats import MissionStats
from repro.workload.spec import OP_LOOKUP, OP_RANGE, OP_UPDATE, Mission


class MissionRunner:
    """Executes missions on a storage engine with configurable chunking."""

    def __init__(self, engine, chunk_size: int = 64) -> None:
        if chunk_size < 1:
            raise WorkloadError(f"chunk_size must be >= 1, got {chunk_size}")
        self.engine = engine
        #: Legacy alias — the engine of the original runner was always a tree.
        self.tree = engine
        self.chunk_size = chunk_size

    def run(self, mission: Mission) -> MissionStats:
        """Execute ``mission`` and return its statistics."""
        engine = self.engine
        engine.begin_mission()
        n = len(mission)
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            self._run_chunk(mission, start, stop)
        return engine.end_mission()

    def _run_chunk(self, mission: Mission, start: int, stop: int) -> None:
        kinds = mission.kinds[start:stop]
        keys = mission.keys[start:stop]
        spans = mission.spans[start:stop]
        engine = self.engine
        updates = kinds == OP_UPDATE
        if updates.any():
            engine.put_batch(keys[updates], mission.values[start:stop][updates])
        lookups = kinds == OP_LOOKUP
        if lookups.any():
            engine.get_batch(keys[lookups])
        ranges = kinds == OP_RANGE
        if ranges.any():
            los = keys[ranges]
            engine.range_scan_batch(
                los, los + np.maximum(spans[ranges] - 1, 0)
            )
