"""Mission execution against a tree.

:class:`MissionRunner` applies a :class:`~repro.workload.spec.Mission` to an
LSM tree and returns its :class:`~repro.lsm.stats.MissionStats`. Operations
are processed in *chunks*: inside a chunk, updates are applied in their
original order first and point lookups are then resolved as one vectorized
batch (range lookups always run individually). ``chunk_size=1`` degenerates
to exact serial execution; larger chunks reorder lookups against updates by
at most one chunk, which leaves the cost statistics of random workloads
unchanged (tests verify serial and chunked runs agree) while making the
large benchmarks an order of magnitude faster.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.lsm.stats import MissionStats
from repro.lsm.tree import LSMTree
from repro.workload.spec import OP_LOOKUP, OP_RANGE, OP_UPDATE, Mission


class MissionRunner:
    """Executes missions on a tree with configurable chunking."""

    def __init__(self, tree: LSMTree, chunk_size: int = 64) -> None:
        if chunk_size < 1:
            raise WorkloadError(f"chunk_size must be >= 1, got {chunk_size}")
        self.tree = tree
        self.chunk_size = chunk_size

    def run(self, mission: Mission) -> MissionStats:
        """Execute ``mission`` and return its statistics."""
        tree = self.tree
        stats = tree.stats
        stats.begin_mission(tree.disk.counters, tree.clock.now)
        n = len(mission)
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            self._run_chunk(mission, start, stop)
        return stats.end_mission(tree.disk.counters, tree.clock.now)

    def _run_chunk(self, mission: Mission, start: int, stop: int) -> None:
        kinds = mission.kinds[start:stop]
        keys = mission.keys[start:stop]
        values = mission.values[start:stop]
        spans = mission.spans[start:stop]
        tree = self.tree
        updates = kinds == OP_UPDATE
        for i in np.flatnonzero(updates):
            tree.put(int(keys[i]), int(values[i]))
        lookups = kinds == OP_LOOKUP
        if lookups.any():
            tree.get_batch(keys[lookups])
        for i in np.flatnonzero(kinds == OP_RANGE):
            lo = int(keys[i])
            tree.range_lookup(lo, lo + max(0, int(spans[i]) - 1))
