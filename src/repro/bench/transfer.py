"""Pretrain → finetune transfer: does a trained Lerp warm-start pay off?

The paper motivates RL tuning for dynamic workloads partly because a model
"can be pre-trained offline and redeployed"; CAMAL (arXiv:2409.15130) makes
the same point through sample efficiency. This experiment measures that
claim directly:

1. **Pretrain** — RusKey runs a multi-session dynamic schedule A; the
   trained tuner (networks, replay, optimizer moments, scales) is
   snapshotted with :meth:`repro.core.lerp.Lerp.state_dict`.
2. **Transfer** — two fresh stores run an *unseen* dynamic schedule B (new
   mixes, new seed, fresh data): *cold-start* begins from scratch;
   *warm-start* loads the pretrained tuner state and re-enters tuning via
   :meth:`~repro.core.lerp.Lerp.warm_start` (episode bookkeeping cleared,
   exploration reduced — the critic already knows the cost surface).
3. **Report** — per-phase latency for both, plus adaptation-phase and
   settled means (``bench_reports/warmstart_transfer.txt``).

Both transfer stores process an identical mission stream against identical
initial data, so every difference in the series is attributable to the
tuner's starting state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.bench.experiments import BenchScale, base_config, bench_lerp_config, bench_scale
from repro.config import SystemConfig
from repro.core.lerp import Lerp, LerpConfig
from repro.core.ruskey import RusKey
from repro.lsm.stats import MissionStats
from repro.workload.dynamic import DynamicWorkload, WorkloadPhase
from repro.workload.uniform import UniformWorkload


@dataclass
class TransferRun:
    """One store's trajectory through the transfer schedule."""

    name: str
    missions: List[MissionStats]
    policy_history: List[List[int]]
    tuner_restarts: int

    @property
    def latencies(self) -> np.ndarray:
        return np.asarray([m.latency_per_op for m in self.missions])

    def mean_latency(self, start: int = 0, stop: Optional[int] = None) -> float:
        series = self.latencies[start:stop]
        return float(series.mean()) if len(series) else 0.0


@dataclass
class TransferResult:
    """Everything the warm-start transfer experiment produces."""

    pretrain: TransferRun
    warm: TransferRun
    cold: TransferRun
    n_transfer_missions: int

    def adaptation_window(self) -> int:
        """Missions counted as the adaptation phase (first third)."""
        return max(1, self.n_transfer_missions // 3)


def _dynamic_schedule(
    mixes: List[float],
    names: List[str],
    n_records: int,
    missions_per_session: int,
    seed: int,
    label: str,
) -> DynamicWorkload:
    phases = [
        WorkloadPhase(
            UniformWorkload(
                n_records,
                lookup_fraction=lookup_fraction,
                seed=seed + i,
                name=names[i],
            ),
            missions_per_session,
        )
        for i, lookup_fraction in enumerate(mixes)
    ]
    return DynamicWorkload(phases, name=label)


def pretrain_schedule(scale: BenchScale, seed: int = 0) -> DynamicWorkload:
    """Schedule A: the mixes Lerp trains on (read-heavy → write-heavy →
    balanced)."""
    return _dynamic_schedule(
        [0.9, 0.1, 0.5],
        ["read-heavy", "write-heavy", "balanced"],
        scale.n_records,
        scale.session_missions,
        seed + 41,
        "transfer-pretrain",
    )


def transfer_schedule(scale: BenchScale, seed: int = 0) -> DynamicWorkload:
    """Schedule B: *unseen* mixes (read-inclined → write-inclined), a new
    generator seed and therefore new key/value draws."""
    return _dynamic_schedule(
        [0.7, 0.3],
        ["read-inclined", "write-inclined"],
        scale.n_records,
        scale.session_missions,
        seed + 97,
        "transfer-unseen",
    )


def _run_store(
    store: RusKey,
    workload: DynamicWorkload,
    mission_size: int,
    name: str,
) -> TransferRun:
    keys, values = workload.load_records()
    store.bulk_load(keys, values, distribute=True)
    for mission in workload.missions(workload.total_missions, mission_size):
        store.run_mission(mission)
    restarts = (
        store.tuner.restarts if isinstance(store.tuner, Lerp) else 0
    )
    return TransferRun(
        name=name,
        missions=store.mission_log,
        policy_history=store.policy_history,
        tuner_restarts=restarts,
    )


def run_warmstart_transfer(
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    exploration_scale: float = 0.5,
) -> TransferResult:
    """Run the full pretrain → (warm vs cold) transfer experiment."""
    scale = scale or bench_scale()
    config: SystemConfig = base_config(scale=scale, seed=seed)

    schedule_a = pretrain_schedule(scale, seed)
    lerp_a: LerpConfig = bench_lerp_config(scale.session_missions, seed=seed)
    pretrain_store = RusKey(config, lerp_config=lerp_a)
    pretrain = _run_store(
        pretrain_store, schedule_a, scale.mission_size, "pretrain"
    )
    tuner_state = pretrain_store.tuner.state_dict()

    schedule_b = transfer_schedule(scale, seed)
    lerp_b: LerpConfig = bench_lerp_config(
        scale.session_missions, seed=seed + 1
    )

    cold_store = RusKey(config, lerp_config=lerp_b)
    cold = _run_store(cold_store, schedule_b, scale.mission_size, "cold-start")

    warm_store = RusKey(config, lerp_config=lerp_b)
    assert isinstance(warm_store.tuner, Lerp)
    warm_store.tuner.load_state_dict(tuner_state)
    warm_store.tuner.warm_start(exploration_scale=exploration_scale)
    warm = _run_store(warm_store, schedule_b, scale.mission_size, "warm-start")

    return TransferResult(
        pretrain=pretrain,
        warm=warm,
        cold=cold,
        n_transfer_missions=schedule_b.total_missions,
    )


def format_transfer_report(
    result: TransferResult,
    schedule_b: DynamicWorkload,
    every: int = 25,
) -> str:
    """The ``warmstart_transfer.txt`` report: series plus phase summaries."""
    lines: List[str] = []
    lines.append("Warm-start transfer: pretrained Lerp vs cold start on an")
    lines.append("unseen dynamic schedule (latencies in simulated ms/op).")
    lines.append("")
    phase_names = [phase.spec.name for phase in schedule_b.phases]
    lines.append(
        f"pretrain schedule : read-heavy -> write-heavy -> balanced "
        f"({len(result.pretrain.missions)} missions)"
    )
    lines.append(
        f"transfer schedule : {' -> '.join(phase_names)} "
        f"({result.n_transfer_missions} missions, unseen mixes & seed)"
    )
    lines.append("")
    header = f"{'mission':>8} | {'warm-start':>12} | {'cold-start':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    n = min(len(result.warm.missions), len(result.cold.missions))
    for i in range(0, n, every):
        lines.append(
            f"{i:>8} | {result.warm.latencies[i] * 1e3:12.5f} "
            f"| {result.cold.latencies[i] * 1e3:12.5f}"
        )
    adapt = result.adaptation_window()
    settle = max(1, result.n_transfer_missions // 3)
    lines.append("")
    lines.append(f"{'phase':>24} | {'warm-start':>12} | {'cold-start':>12}")
    lines.append(
        f"{'adaptation (first ' + str(adapt) + ')':>24} "
        f"| {result.warm.mean_latency(0, adapt) * 1e3:12.5f} "
        f"| {result.cold.mean_latency(0, adapt) * 1e3:12.5f}"
    )
    lines.append(
        f"{'settled (last ' + str(settle) + ')':>24} "
        f"| {result.warm.mean_latency(n - settle) * 1e3:12.5f} "
        f"| {result.cold.mean_latency(n - settle) * 1e3:12.5f}"
    )
    lines.append(
        f"{'overall':>24} "
        f"| {result.warm.mean_latency() * 1e3:12.5f} "
        f"| {result.cold.mean_latency() * 1e3:12.5f}"
    )
    lines.append("")
    lines.append(
        f"tuner restarts (workload shifts detected): "
        f"warm={result.warm.tuner_restarts} cold={result.cold.tuner_restarts}"
    )
    return "\n".join(lines)
