"""Paper-style textual reports for experiment results.

The original figures are plots; a reproduction harness that runs under
pytest prints the same *series* and *tables* as text so the shapes can be
eyeballed and asserted. All latencies are simulated milliseconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import SeriesResult


def format_latency_series(
    results: Dict[str, SeriesResult],
    every: int = 50,
    title: str = "",
) -> str:
    """A mission-indexed latency table, one column per system (ms/op)."""
    names = list(results)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'mission':>8} | " + " | ".join(f"{n:>16}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    n_missions = min(len(results[n].latencies) for n in names)
    for i in range(0, n_missions, every):
        row = " | ".join(
            f"{results[n].latencies[i] * 1e3:16.5f}" for n in names
        )
        lines.append(f"{i:>8} | {row}")
    return "\n".join(lines)


def format_policy_trace(
    result: SeriesResult, every: int = 50, title: str = ""
) -> str:
    """The per-level policy trace of one system (paper Fig. 6 top panels)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'mission':>8} | policies (K_1..K_L)")
    for i in range(0, len(result.policy_history), every):
        lines.append(f"{i:>8} | {result.policy_history[i]}")
    return "\n".join(lines)


def format_summary(
    results: Dict[str, SeriesResult],
    last_n: Optional[int] = None,
    title: str = "",
    show_throughput: bool = True,
) -> str:
    """Converged mean latency per system, best first.

    When any system ran with a block cache configured (mission records
    carry cache traffic), a cache hit-rate column is added — hit/miss
    counters are aggregated across shards by the engine's mission records.
    With ``show_throughput`` (and wall durations recorded — resumed
    checkpoint prefixes have none), a wall-clock ops/s column reports each
    system's processing throughput in the same vocabulary the serving
    layer uses (``MissionStats.ops_per_second``).
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    ordered = sorted(results.values(), key=lambda r: r.mean_latency(last_n))
    with_cache = any(r.cache_hits + r.cache_misses > 0 for r in ordered)
    with_ops = show_throughput and any(r.ops_per_second > 0 for r in ordered)
    header = f"{'system':>20} | {'latency (ms/op)':>16}"
    if with_ops:
        header += f" | {'ops/s (wall)':>12}"
    if with_cache:
        header += f" | {'cache hit %':>11}"
    lines.append(header)
    for result in ordered:
        row = f"{result.system:>20} | {result.mean_latency(last_n) * 1e3:16.5f}"
        if with_ops:
            row += f" | {result.ops_per_second:12,.0f}"
        if with_cache:
            row += f" | {result.cache_hit_rate * 100:11.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_ranking_table(
    ranks: Dict[str, List[int]],
    session_names: Sequence[str],
    title: str = "",
) -> str:
    """Paper Table 3: per-session performance rank and average rank."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'method':>20} | "
        + " | ".join(f"{name:>14}" for name in session_names)
        + f" | {'avg rank':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    averages = {name: float(np.mean(r)) for name, r in ranks.items()}
    for name in sorted(ranks, key=averages.get):
        row = " | ".join(f"{rank:>14}" for rank in ranks[name])
        lines.append(f"{name:>20} | {row} | {averages[name]:8.1f}")
    return "\n".join(lines)


def format_per_level_latency(
    level_times: Dict[str, Dict[int, float]], title: str = ""
) -> str:
    """Per-level latency comparison (paper Fig. 9 right panel); seconds."""
    lines: List[str] = []
    if title:
        lines.append(title)
    levels = sorted({lvl for times in level_times.values() for lvl in times})
    header = f"{'system':>20} | " + " | ".join(f"L{lvl:>8}" for lvl in levels)
    lines.append(header)
    for name, times in level_times.items():
        row = " | ".join(f"{times.get(lvl, 0.0):9.3f}" for lvl in levels)
        lines.append(f"{name:>20} | {row}")
    return "\n".join(lines)
