"""Canonical experiment configurations for every paper figure and table.

Scales are controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``quick``   — minutes-scale smoke runs (CI);
* ``default`` — laptop-scale runs preserving every qualitative shape;
* ``full``    — closest to the paper's setup that is still practical on one
  machine (the paper used 100 M-entry stores and 100 M-operation workloads
  on a Xeon server; see DESIGN.md §2 for why scaling down preserves shape).

All experiments share the paper's constants: ``T = 10``, 1 KiB entries,
4 KiB pages, bits-per-key 8 (uniform scheme) or 4 (Monkey scheme), initial
policy leveling (K=1), and Lerp's ``α = 1/2``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import List, Optional

from repro.bench.harness import Experiment, SystemSpec
from repro.config import BloomScheme, SystemConfig, TransitionKind
from repro.core.lerp import LerpConfig
from repro.core.state import POLICY_STATE_DIM, STATE_DIM
from repro.core.tuners import (
    GreedyThresholdTuner,
    LazyLevelingTuner,
    NamedPolicyTuner,
    StaticTuner,
)
from repro.errors import ConfigError
from repro.lsm.policy import POLICY_NAMES
from repro.rl.ddpg import DDPGConfig
from repro.rl.dqn import DQNConfig
from repro.workload.dynamic import DynamicWorkload, paper_dynamic_workload
from repro.workload.uniform import UniformWorkload
from repro.workload.ycsb import YCSBWorkload


@dataclass(frozen=True)
class BenchScale:
    """Run-shape parameters for one scale tier."""

    name: str
    write_buffer_bytes: int
    n_records: int
    mission_size: int
    n_missions: int
    session_missions: int  # per-session length for dynamic workloads
    fig10_mission_size: int
    fig10_missions: int


_SCALES = {
    "quick": BenchScale(
        name="quick",
        write_buffer_bytes=64 * 1024,
        n_records=24_000,
        mission_size=800,
        n_missions=240,
        session_missions=160,
        fig10_mission_size=2_500,
        fig10_missions=60,
    ),
    "default": BenchScale(
        name="default",
        write_buffer_bytes=128 * 1024,
        n_records=50_000,
        mission_size=1_200,
        n_missions=500,
        session_missions=350,
        fig10_mission_size=5_000,
        fig10_missions=120,
    ),
    "full": BenchScale(
        name="full",
        write_buffer_bytes=128 * 1024,
        n_records=200_000,
        mission_size=2_000,
        n_missions=2_000,
        session_missions=1_000,
        fig10_mission_size=20_000,
        fig10_missions=120,
    ),
}

#: The workload mixes of Figures 6, 8 and 11 (lookup fractions).
STATIC_MIXES = {
    "read-heavy": 0.9,
    "write-heavy": 0.1,
    "balanced": 0.5,
}


def bench_scale() -> BenchScale:
    """The active scale tier (``REPRO_BENCH_SCALE``, default ``default``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    if name not in _SCALES:
        raise ConfigError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


def base_config(
    scheme: BloomScheme = BloomScheme.UNIFORM,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
) -> SystemConfig:
    """The paper's system constants at the active scale.

    Bits-per-key follows the paper: 8 under the uniform scheme, 4 under
    Monkey ("since in this case Monkey exploits Bloom filters more
    effectively").
    """
    scale = scale or bench_scale()
    return SystemConfig(
        size_ratio=10,
        entry_bytes=1024,
        page_bytes=4096,
        write_buffer_bytes=scale.write_buffer_bytes,
        bits_per_key=8.0 if scheme is BloomScheme.UNIFORM else 4.0,
        bloom_scheme=scheme,
        initial_policy=1,
        seed=seed,
    )


def bench_lerp_config(
    n_missions: int, seed: int = 0, mode: str = "level", stages: int = 1
) -> LerpConfig:
    """Lerp hyperparameters sized so tuning converges within ~45 % of the
    run (the paper's tuning takes ~300 of 2000 missions; shorter runs get a
    proportionally faster exploration decay). ``stages`` is the number of
    tuning stages the budget must cover: 1 under the uniform Bloom scheme,
    2 under Monkey (Levels 1 and 2 are tuned successively)."""
    if stages < 1:
        raise ConfigError(f"stages must be >= 1, got {stages}")
    budget = max(40, int(0.45 * n_missions / stages))
    decay = math.exp(math.log(0.2) / budget)  # sigma 0.4 -> 0.08 over budget
    return LerpConfig(
        ddpg=DDPGConfig(state_dim=STATE_DIM, action_dim=1, noise_decay=decay),
        max_stage_missions=max(60, int(0.55 * n_missions / stages)),
        stable_window=min(25, max(10, n_missions // (12 * stages))),
        mode=mode,
        seed=seed,
    )


def standard_systems(
    n_missions: int,
    include_lazy_leveling: bool = False,
    transition: TransitionKind = TransitionKind.FLEXIBLE,
    seed: int = 0,
) -> List[SystemSpec]:
    """RusKey plus the paper's baselines (Aggressive/Moderate/Lazy, and
    optionally Lazy-Leveling for the Monkey-scheme experiments)."""
    systems = [
        SystemSpec(
            name="RusKey",
            make_tuner=lambda config: None,  # default Lerp
            initial_policy=1,
            lerp_config=bench_lerp_config(
                n_missions,
                seed=seed,
                stages=2 if include_lazy_leveling else 1,
            ),
        ),
        SystemSpec("K=1 (Aggressive)", lambda config: StaticTuner(1), 1),
        SystemSpec("K=5 (Moderate)", lambda config: StaticTuner(5), 5),
        SystemSpec("K=10 (Lazy)", lambda config: StaticTuner(10), 10),
    ]
    if include_lazy_leveling:
        systems.append(
            SystemSpec(
                "Lazy-Leveling",
                lambda config: LazyLevelingTuner(),
                initial_policy=10,
            )
        )
    return systems


# ----------------------------------------------------------------------
# Figure 6 / Figure 8: static workloads, uniform vs Monkey Bloom scheme
# ----------------------------------------------------------------------
def static_workload_experiment(
    mix: str,
    scheme: BloomScheme = BloomScheme.UNIFORM,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
) -> Experiment:
    """One panel of Figure 6 (uniform) or Figure 8 (Monkey)."""
    if mix not in STATIC_MIXES:
        raise ConfigError(f"mix must be one of {sorted(STATIC_MIXES)}, got {mix!r}")
    scale = scale or bench_scale()
    workload = UniformWorkload(
        n_records=scale.n_records,
        lookup_fraction=STATIC_MIXES[mix],
        seed=seed + 17,
        name=mix,
    )
    figure = "fig6" if scheme is BloomScheme.UNIFORM else "fig8"
    return Experiment(
        name=f"{figure}-{mix}",
        workload=workload,
        n_missions=scale.n_missions,
        mission_size=scale.mission_size,
        base_config=base_config(scheme, scale, seed=seed),
        systems=standard_systems(
            scale.n_missions,
            include_lazy_leveling=(scheme is BloomScheme.MONKEY),
            seed=seed,
        ),
    )


# ----------------------------------------------------------------------
# Figure 7 / Table 3 / Figure 12: the five-session dynamic workload
# ----------------------------------------------------------------------
SESSION_NAMES = [
    "read-heavy",
    "balanced",
    "write-heavy",
    "write-inclined",
    "read-inclined",
]


def dynamic_workload_experiment(
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    include_greedy: bool = False,
) -> Experiment:
    """Figure 7 (RusKey vs static baselines) or Figure 12 (vs greedy
    threshold tuners) on the five-session dynamic workload."""
    scale = scale or bench_scale()
    workload = paper_dynamic_workload(
        n_records=scale.n_records,
        missions_per_session=scale.session_missions,
        seed=seed + 23,
    )
    n_missions = workload.total_missions
    lerp = bench_lerp_config(scale.session_missions, seed=seed)
    systems = [
        SystemSpec("RusKey", lambda config: None, 1, lerp_config=lerp),
    ]
    if include_greedy:
        for h_bottom, h_top in [
            (0.50, 0.50),
            (0.33, 0.67),
            (0.25, 0.75),
            (0.10, 0.90),
            (0.25, 0.50),
            (0.50, 0.75),
        ]:
            systems.append(
                SystemSpec(
                    f"Greedy,{int(h_bottom * 100)}%,{int(h_top * 100)}%",
                    lambda config, hb=h_bottom, ht=h_top: GreedyThresholdTuner(hb, ht),
                    initial_policy=5,
                )
            )
    else:
        systems.extend(
            [
                SystemSpec("K=1 (Aggressive)", lambda config: StaticTuner(1), 1),
                SystemSpec("K=5 (Moderate)", lambda config: StaticTuner(5), 5),
                SystemSpec("K=10 (Lazy)", lambda config: StaticTuner(10), 10),
            ]
        )
    return Experiment(
        name="fig12-dynamic-greedy" if include_greedy else "fig7-dynamic",
        workload=workload,
        n_missions=n_missions,
        mission_size=scale.mission_size,
        base_config=base_config(BloomScheme.UNIFORM, scale, seed=seed),
        systems=systems,
    )


def session_bounds(workload: DynamicWorkload) -> List[int]:
    """Session boundaries plus the final mission count (for rankings)."""
    return workload.phase_boundaries() + [workload.total_missions]


# ----------------------------------------------------------------------
# Policy matrix: the named tiering/leveling/lazy-leveling dimension
# ----------------------------------------------------------------------
#: The panels of the policy matrix benchmark: the three static mixes plus
#: the five-session dynamic schedule.
POLICY_MATRIX_MIXES = ("write-heavy", "balanced", "read-heavy", "dynamic")


def policy_lerp_config(n_missions: int, seed: int = 0) -> LerpConfig:
    """Lerp hyperparameters for the named-policy action dimension.

    The policy agent explores three arms with ε-greedy; ε anneals from 1 to
    its floor within ~45 % of the run (per session for dynamic schedules),
    mirroring how :func:`bench_lerp_config` sizes the ΔK noise decay.
    """
    budget = max(30, int(0.45 * n_missions))
    decay = math.exp(math.log(0.05) / budget)  # epsilon 1.0 -> 0.05
    return LerpConfig(
        tune_policy=True,
        policy_dqn=DQNConfig(
            state_dim=POLICY_STATE_DIM,
            n_actions=len(POLICY_NAMES),
            epsilon_decay=decay,
        ),
        stable_window=min(25, max(8, n_missions // 12)),
        max_stage_missions=max(40, int(0.55 * n_missions)),
        seed=seed,
    )


def policy_matrix_systems(
    n_missions: int, size_ratio: int = 10, seed: int = 0
) -> List[SystemSpec]:
    """Lerp driving the policy action vs the three static disciplines."""
    return [
        SystemSpec(
            "Lerp+policy",
            lambda config: None,  # default Lerp, policy dimension enabled
            initial_policy=1,
            lerp_config=policy_lerp_config(n_missions, seed=seed),
        ),
        SystemSpec("Leveling", lambda config: NamedPolicyTuner("leveling"), 1),
        SystemSpec(
            "Tiering",
            lambda config: NamedPolicyTuner("tiering"),
            initial_policy=size_ratio,
        ),
        SystemSpec(
            "Lazy-Leveling",
            lambda config: NamedPolicyTuner("lazy-leveling"),
            initial_policy=size_ratio,
        ),
    ]


def policy_matrix_experiment(
    mix: str,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
) -> Experiment:
    """One panel of the policy matrix: static leveling vs static tiering vs
    static lazy-leveling vs Lerp driving the named-policy action."""
    scale = scale or bench_scale()
    if mix == "dynamic":
        workload = paper_dynamic_workload(
            n_records=scale.n_records,
            missions_per_session=scale.session_missions,
            seed=seed + 41,
        )
        n_missions = workload.total_missions
        per_era_missions = scale.session_missions
    elif mix in STATIC_MIXES:
        workload = UniformWorkload(
            n_records=scale.n_records,
            lookup_fraction=STATIC_MIXES[mix],
            seed=seed + 41,
            name=f"policy-{mix}",
        )
        n_missions = scale.n_missions
        per_era_missions = n_missions
    else:
        raise ConfigError(
            f"mix must be one of {POLICY_MATRIX_MIXES}, got {mix!r}"
        )
    config = base_config(BloomScheme.UNIFORM, scale, seed=seed)
    return Experiment(
        name=f"policy-matrix-{mix}",
        workload=workload,
        n_missions=n_missions,
        mission_size=scale.mission_size,
        base_config=config,
        systems=policy_matrix_systems(
            per_era_missions, size_ratio=config.size_ratio, seed=seed
        ),
    )


# ----------------------------------------------------------------------
# Figure 11: YCSB (Zipfian) workloads
# ----------------------------------------------------------------------
def ycsb_experiment(
    panel: str,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
) -> Experiment:
    """Figure 11 panels: read-heavy / write-heavy / balanced / range."""
    scale = scale or bench_scale()
    if panel == "range":
        workload: YCSBWorkload = YCSBWorkload.paper_range_mix(
            scale.n_records, seed=seed + 31
        )
        n_missions = max(40, scale.n_missions // 4)  # range scans are slow
    elif panel in STATIC_MIXES:
        workload = YCSBWorkload(
            n_records=scale.n_records,
            lookup_fraction=STATIC_MIXES[panel],
            seed=seed + 31,
            name=f"ycsb-{panel}",
        )
        n_missions = scale.n_missions
    else:
        raise ConfigError(f"unknown YCSB panel: {panel!r}")
    return Experiment(
        name=f"fig11-{panel}",
        workload=workload,
        n_missions=n_missions,
        mission_size=scale.mission_size,
        base_config=base_config(BloomScheme.UNIFORM, scale, seed=seed),
        systems=standard_systems(n_missions, seed=seed),
    )
