"""Experiment harness: run systems × workloads and collect series.

One *system* is a named way of building a store (a tuner plus its natural
initial policy); one *experiment* runs several systems over one workload and
collects per-mission latency series, policy traces and mission statistics —
the raw material of every figure and table in the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.config import SystemConfig
from repro.core.lerp import LerpConfig
from repro.core.ruskey import RusKey
from repro.core.tuners import Tuner
from repro.errors import WorkloadError
from repro.lsm.stats import MissionStats
from repro.workload.spec import WorkloadSpec

TunerFactory = Callable[[SystemConfig], Optional[Tuner]]


@dataclass
class SystemSpec:
    """A named system under test.

    ``make_tuner`` builds the tuner given the resolved config (return
    ``None`` for the default Lerp). ``initial_policy`` seeds every level —
    static baselines start in their steady-state structure, RusKey starts at
    leveling (K=1, RocksDB's default, as in the paper). ``n_shards > 1``
    runs the system on a hash-partitioned
    :class:`~repro.engine.sharded.ShardedStore` instead of a single tree
    (with one independent Lerp per shard when ``make_tuner`` returns
    ``None``, else one shared tuner instance observing every shard).
    """

    name: str
    make_tuner: TunerFactory
    initial_policy: int = 1
    lerp_config: Optional[LerpConfig] = None
    n_shards: int = 1


@dataclass
class SeriesResult:
    """Everything collected from one system's run."""

    system: str
    missions: List[MissionStats]
    policy_history: List[List[int]]

    @property
    def latencies(self) -> np.ndarray:
        """Per-mission mean latency per operation (simulated seconds)."""
        return np.asarray([m.latency_per_op for m in self.missions])

    @property
    def read_latencies(self) -> np.ndarray:
        """Per-mission total lookup time (simulated seconds)."""
        return np.asarray([m.read_time for m in self.missions])

    @property
    def write_latencies(self) -> np.ndarray:
        """Per-mission total update/compaction time (simulated seconds)."""
        return np.asarray([m.write_time for m in self.missions])

    def mean_latency(self, last_n: Optional[int] = None) -> float:
        series = self.latencies
        if last_n is not None:
            series = series[-last_n:]
        return float(series.mean()) if len(series) else 0.0

    def total_time(self) -> float:
        """End-to-end simulated seconds spent processing all missions."""
        return float(sum(m.total_time for m in self.missions))


@dataclass
class Experiment:
    """A workload plus run-shape parameters shared by all systems."""

    name: str
    workload: WorkloadSpec
    n_missions: int
    mission_size: int
    base_config: SystemConfig
    chunk_size: int = 128
    distribute_load: bool = True
    systems: List[SystemSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_missions < 1 or self.mission_size < 1:
            raise WorkloadError("n_missions and mission_size must be >= 1")


def run_system(experiment: Experiment, system: SystemSpec) -> SeriesResult:
    """Run one system through the experiment's workload."""
    config = experiment.base_config.with_updates(
        initial_policy=system.initial_policy
    )
    # When make_tuner returns None, RusKey builds the default Lerp(s) from
    # lerp_config — one per shard, or a single one for an unsharded store.
    # An explicit tuner is shared across shards.
    tuner = system.make_tuner(config)
    store = RusKey(
        config,
        tuner=tuner,
        lerp_config=system.lerp_config,
        chunk_size=experiment.chunk_size,
        n_shards=system.n_shards,
    )
    workload = experiment.workload
    if hasattr(workload, "load_records"):
        keys, values = workload.load_records()  # type: ignore[attr-defined]
        store.bulk_load(keys, values, distribute=experiment.distribute_load)
    store.run_missions(
        workload.missions(experiment.n_missions, experiment.mission_size)
    )
    return SeriesResult(
        system=system.name,
        missions=store.mission_log,
        policy_history=store.policy_history,
    )


def run_experiment(experiment: Experiment) -> Dict[str, SeriesResult]:
    """Run every system of the experiment; returns results by system name."""
    if not experiment.systems:
        raise WorkloadError(f"experiment {experiment.name!r} has no systems")
    results: Dict[str, SeriesResult] = {}
    for system in experiment.systems:
        results[system.name] = run_system(experiment, system)
    return results


def rank_systems(
    results: Dict[str, SeriesResult], last_n: Optional[int] = None
) -> List[str]:
    """System names ordered best (lowest converged latency) to worst."""
    return sorted(results, key=lambda name: results[name].mean_latency(last_n))


def session_rankings(
    results: Dict[str, SeriesResult],
    session_bounds: Sequence[int],
    settle_fraction: float = 0.5,
) -> Dict[str, List[int]]:
    """Per-session performance ranks (1 = best), paper Table 3 style.

    ``session_bounds`` holds the mission index where each session starts
    plus the total mission count as the final element. Within each session,
    only the last ``1 - settle_fraction`` share of missions is scored so
    systems are compared after tuning has settled (the paper compares "after
    the RL model is converged in each session").
    """
    if len(session_bounds) < 2:
        raise WorkloadError("session_bounds needs at least start and end")
    ranks: Dict[str, List[int]] = {name: [] for name in results}
    for start, stop in zip(session_bounds[:-1], session_bounds[1:]):
        settle = start + int((stop - start) * settle_fraction)
        means = {
            name: float(result.latencies[settle:stop].mean())
            for name, result in results.items()
        }
        ordered = sorted(means, key=means.get)
        for position, name in enumerate(ordered, start=1):
            ranks[name].append(position)
    return ranks
