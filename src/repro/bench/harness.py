"""Experiment harness: run systems × workloads and collect series.

One *system* is a named way of building a store (a tuner plus its natural
initial policy); one *experiment* runs several systems over one workload and
collects per-mission latency series, policy traces and mission statistics —
the raw material of every figure and table in the paper's evaluation.

Long experiments can be checkpointed and resumed: set
``Experiment.checkpoint_every`` (missions per checkpoint) and re-run with
``resume=True`` — or drive it from the command line::

    python -m repro.bench.harness dynamic --checkpoint-every 100 --resume

Resume is *bit-exact*: workload generators are deterministic from their
seed, so the already-processed prefix of the mission stream is regenerated
and skipped, and the restored store (engine + tuners, see
:mod:`repro.persist`) continues as if never interrupted.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.config import SystemConfig
from repro.core.lerp import LerpConfig
from repro.core.ruskey import RusKey
from repro.core.tuners import Tuner
from repro.errors import WorkloadError
from repro.lsm.stats import MissionStats
from repro.workload.spec import WorkloadSpec

TunerFactory = Callable[[SystemConfig], Optional[Tuner]]


@dataclass
class SystemSpec:
    """A named system under test.

    ``make_tuner`` builds the tuner given the resolved config (return
    ``None`` for the default Lerp). ``initial_policy`` seeds every level —
    static baselines start in their steady-state structure, RusKey starts at
    leveling (K=1, RocksDB's default, as in the paper). ``n_shards > 1``
    runs the system on a hash-partitioned
    :class:`~repro.engine.sharded.ShardedStore` instead of a single tree
    (with one independent Lerp per shard when ``make_tuner`` returns
    ``None``, else one shared tuner instance observing every shard).
    """

    name: str
    make_tuner: TunerFactory
    initial_policy: int = 1
    lerp_config: Optional[LerpConfig] = None
    n_shards: int = 1


@dataclass
class SeriesResult:
    """Everything collected from one system's run."""

    system: str
    missions: List[MissionStats]
    policy_history: List[List[int]]

    @property
    def latencies(self) -> np.ndarray:
        """Per-mission mean latency per operation (simulated seconds)."""
        return np.asarray([m.latency_per_op for m in self.missions])

    @property
    def read_latencies(self) -> np.ndarray:
        """Per-mission total lookup time (simulated seconds)."""
        return np.asarray([m.read_time for m in self.missions])

    @property
    def write_latencies(self) -> np.ndarray:
        """Per-mission total update/compaction time (simulated seconds)."""
        return np.asarray([m.write_time for m in self.missions])

    def mean_latency(self, last_n: Optional[int] = None) -> float:
        series = self.latencies
        if last_n is not None:
            series = series[-last_n:]
        return float(series.mean()) if len(series) else 0.0

    def total_time(self) -> float:
        """End-to-end simulated seconds spent processing all missions."""
        return float(sum(m.total_time for m in self.missions))

    def total_wall_seconds(self) -> float:
        """Host wall-clock seconds spent processing all missions (offline
        windows run back-to-back, so per-window durations sum). Restored
        checkpoint prefixes report 0 for their windows — wall time is a
        host measurement, not part of a snapshot."""
        return float(sum(m.wall_duration for m in self.missions))

    @property
    def ops_per_second(self) -> float:
        """Wall-clock throughput over the whole run (operations per host
        second; 0.0 when no wall time was recorded). Missions restored
        from a checkpoint carry no wall time (snapshots exclude host
        measurements), so only live-processed missions enter the ratio —
        a resumed run reports the resumed portion's real throughput."""
        wall = self.total_wall_seconds()
        ops = sum(
            m.n_operations for m in self.missions if m.wall_duration > 0
        )
        return ops / wall if wall > 0 else 0.0

    @property
    def cache_hits(self) -> int:
        """Block-cache hits over all missions (summed across shards)."""
        return sum(m.cache_hits for m in self.missions)

    @property
    def cache_misses(self) -> int:
        """Block-cache misses over all missions (summed across shards)."""
        return sum(m.cache_misses for m in self.missions)

    @property
    def cache_hit_rate(self) -> float:
        """Block-cache hit fraction over the whole run (0.0 = no cache or
        no hits)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class Experiment:
    """A workload plus run-shape parameters shared by all systems.

    ``checkpoint_every > 0`` snapshots each system's full store (engine +
    tuners, via :mod:`repro.persist`) every that-many missions under
    ``checkpoint_dir``; with ``resume=True`` an interrupted run picks up
    from the latest checkpoint and finishes bit-exactly.
    """

    name: str
    workload: WorkloadSpec
    n_missions: int
    mission_size: int
    base_config: SystemConfig
    chunk_size: int = 128
    distribute_load: bool = True
    systems: List[SystemSpec] = field(default_factory=list)
    checkpoint_every: int = 0
    checkpoint_dir: str = "checkpoints"
    resume: bool = False

    def __post_init__(self) -> None:
        if self.n_missions < 1 or self.mission_size < 1:
            raise WorkloadError("n_missions and mission_size must be >= 1")
        if self.checkpoint_every < 0:
            raise WorkloadError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )


def _slug(text: str) -> str:
    """A filesystem-safe token for checkpoint file names."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "unnamed"


def checkpoint_path(experiment: Experiment, system: SystemSpec) -> str:
    """Where one system's checkpoint of this experiment lives."""
    return os.path.join(
        experiment.checkpoint_dir,
        f"{_slug(experiment.name)}__{_slug(system.name)}.ckpt",
    )


def _resume_fingerprint(
    experiment: Experiment, system: SystemSpec
) -> Dict[str, object]:
    """Identifies the run a checkpoint was cut from.

    The store config alone cannot distinguish two scale tiers that share a
    ``SystemConfig`` but differ in record count, mission size or tuner
    hyperparameters, so this fingerprint is saved in checkpoint meta and
    must match on resume. (Tuners built by a custom ``make_tuner`` closure
    are beyond fingerprinting; ``lerp_config`` covers the default path.)
    """
    workload = experiment.workload
    n_records = getattr(workload, "n_records", None)
    if n_records is None and hasattr(workload, "phases"):
        n_records = getattr(workload.phases[0].spec, "n_records", None)
    lerp_config = None
    if system.lerp_config is not None:
        from repro.persist import lerp_config_to_state

        lerp_config = lerp_config_to_state(system.lerp_config)
    return {
        "workload": workload.name,
        "mission_size": experiment.mission_size,
        "n_records": n_records,
        "lerp_config": lerp_config,
    }


def _build_store(experiment: Experiment, system: SystemSpec) -> RusKey:
    config = experiment.base_config.with_updates(
        initial_policy=system.initial_policy
    )
    # When make_tuner returns None, RusKey builds the default Lerp(s) from
    # lerp_config — one per shard, or a single one for an unsharded store.
    # An explicit tuner is shared across shards.
    tuner = system.make_tuner(config)
    store = RusKey(
        config,
        tuner=tuner,
        lerp_config=system.lerp_config,
        chunk_size=experiment.chunk_size,
        n_shards=system.n_shards,
    )
    workload = experiment.workload
    if hasattr(workload, "load_records"):
        keys, values = workload.load_records()  # type: ignore[attr-defined]
        store.bulk_load(keys, values, distribute=experiment.distribute_load)
    return store


def run_system(experiment: Experiment, system: SystemSpec) -> SeriesResult:
    """Run one system through the experiment's workload (checkpointing and
    resuming per the experiment's settings)."""
    ckpt_path: Optional[str] = None
    if experiment.checkpoint_every > 0 or experiment.resume:
        os.makedirs(experiment.checkpoint_dir, exist_ok=True)
        ckpt_path = checkpoint_path(experiment, system)
    store: Optional[RusKey] = None
    if experiment.resume and ckpt_path and os.path.exists(ckpt_path):
        from repro.errors import SnapshotError
        from repro.persist import load_snapshot, store_from_snapshot

        payload = load_snapshot(ckpt_path, expected_kind="store")
        store = store_from_snapshot(payload)
        expected_config = experiment.base_config.with_updates(
            initial_policy=system.initial_policy
        )
        if (
            store.config != expected_config
            or store.runner.chunk_size != experiment.chunk_size
            or payload["meta"].get("fingerprint")
            != _resume_fingerprint(experiment, system)
        ):
            raise SnapshotError(
                f"checkpoint {ckpt_path} was taken under a different "
                "configuration, workload shape or tuner setup (e.g. "
                "another REPRO_BENCH_SCALE or chunk size); delete it or "
                "rerun with the matching settings"
            )
    if store is None:
        store = _build_store(experiment, system)
    done = store.missions_run
    missions = experiment.workload.missions(
        experiment.n_missions, experiment.mission_size
    )
    for index, mission in enumerate(missions):
        if index < done:
            continue  # deterministic generator: regenerate and skip
        store.run_mission(mission)
        if (
            ckpt_path
            and experiment.checkpoint_every > 0
            and (index + 1) % experiment.checkpoint_every == 0
        ):
            from repro.persist import save_store

            save_store(
                store,
                ckpt_path,
                meta={
                    "experiment": experiment.name,
                    "fingerprint": _resume_fingerprint(experiment, system),
                },
            )
    # A checkpoint may hold more missions than this run asked for (resuming
    # a shortened experiment); report exactly the requested prefix.
    return SeriesResult(
        system=system.name,
        missions=store.mission_log[: experiment.n_missions],
        policy_history=store.policy_history[: experiment.n_missions],
    )


def run_experiment(experiment: Experiment) -> Dict[str, SeriesResult]:
    """Run every system of the experiment; returns results by system name."""
    if not experiment.systems:
        raise WorkloadError(f"experiment {experiment.name!r} has no systems")
    results: Dict[str, SeriesResult] = {}
    for system in experiment.systems:
        results[system.name] = run_system(experiment, system)
    return results


def rank_systems(
    results: Dict[str, SeriesResult], last_n: Optional[int] = None
) -> List[str]:
    """System names ordered best (lowest converged latency) to worst."""
    return sorted(results, key=lambda name: results[name].mean_latency(last_n))


def session_rankings(
    results: Dict[str, SeriesResult],
    session_bounds: Sequence[int],
    settle_fraction: float = 0.5,
) -> Dict[str, List[int]]:
    """Per-session performance ranks (1 = best), paper Table 3 style.

    ``session_bounds`` holds the mission index where each session starts
    plus the total mission count as the final element. Within each session,
    only the last ``1 - settle_fraction`` share of missions is scored so
    systems are compared after tuning has settled (the paper compares "after
    the RL model is converged in each session").
    """
    if len(session_bounds) < 2:
        raise WorkloadError("session_bounds needs at least start and end")
    ranks: Dict[str, List[int]] = {name: [] for name in results}
    for start, stop in zip(session_bounds[:-1], session_bounds[1:]):
        settle = start + int((stop - start) * settle_fraction)
        means = {
            name: float(result.latencies[settle:stop].mean())
            for name, result in results.items()
        }
        ordered = sorted(means, key=means.get)
        for position, name in enumerate(ordered, start=1):
            ranks[name].append(position)
    return ranks


# ----------------------------------------------------------------------
# Command line: run a named experiment with checkpoint/resume support
# ----------------------------------------------------------------------
def _named_experiment(name: str) -> Experiment:
    """Build one of the canonical experiments by name.

    Imported lazily: :mod:`repro.bench.experiments` imports this module.
    """
    from repro.bench import experiments

    if name == "dynamic":
        return experiments.dynamic_workload_experiment()
    if name == "dynamic-greedy":
        return experiments.dynamic_workload_experiment(include_greedy=True)
    kind, _, panel = name.partition(":")
    if kind == "static" and panel:
        return experiments.static_workload_experiment(panel)
    if kind == "ycsb" and panel:
        return experiments.ycsb_experiment(panel)
    raise WorkloadError(
        f"unknown experiment {name!r}; use dynamic, dynamic-greedy, "
        "static:<read-heavy|write-heavy|balanced> or "
        "ycsb:<read-heavy|write-heavy|balanced|range>"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.bench.harness <experiment> [options]``."""
    import argparse

    from repro.bench.reporting import format_summary

    parser = argparse.ArgumentParser(
        prog="repro.bench.harness",
        description="Run a canonical experiment with optional "
        "checkpoint-every-K-missions and bit-exact --resume.",
    )
    parser.add_argument(
        "experiment",
        help="dynamic | dynamic-greedy | static:<mix> | ycsb:<panel>",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="K",
        help="snapshot each system every K missions (0 disables)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default="checkpoints",
        help="directory for checkpoint files (default: checkpoints/)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from existing checkpoints instead of starting over",
    )
    parser.add_argument(
        "--last-n",
        type=int,
        default=None,
        help="missions to average in the summary (default: all)",
    )
    args = parser.parse_args(argv)
    if args.checkpoint_every < 0:
        parser.error("--checkpoint-every must be >= 0")
    experiment = _named_experiment(args.experiment)
    experiment.checkpoint_every = args.checkpoint_every
    experiment.checkpoint_dir = args.checkpoint_dir
    experiment.resume = args.resume
    results = run_experiment(experiment)
    print(
        format_summary(
            results, last_n=args.last_n, title=f"== {experiment.name} =="
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
