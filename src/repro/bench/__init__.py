"""Benchmark harness: experiment configs, runners and paper-style reports."""

from repro.bench.experiments import (
    SESSION_NAMES,
    STATIC_MIXES,
    BenchScale,
    base_config,
    bench_lerp_config,
    bench_scale,
    dynamic_workload_experiment,
    session_bounds,
    standard_systems,
    static_workload_experiment,
    ycsb_experiment,
)
from repro.bench.harness import (
    Experiment,
    SeriesResult,
    SystemSpec,
    rank_systems,
    run_experiment,
    run_system,
    session_rankings,
)
from repro.bench.reporting import (
    format_latency_series,
    format_per_level_latency,
    format_policy_trace,
    format_ranking_table,
    format_summary,
)

__all__ = [
    "Experiment",
    "SystemSpec",
    "SeriesResult",
    "run_experiment",
    "run_system",
    "rank_systems",
    "session_rankings",
    "BenchScale",
    "bench_scale",
    "base_config",
    "bench_lerp_config",
    "standard_systems",
    "static_workload_experiment",
    "dynamic_workload_experiment",
    "ycsb_experiment",
    "session_bounds",
    "SESSION_NAMES",
    "STATIC_MIXES",
    "format_latency_series",
    "format_policy_trace",
    "format_summary",
    "format_ranking_table",
    "format_per_level_latency",
]
