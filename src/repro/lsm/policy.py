"""Named compaction policies: the tiering / leveling / lazy-leveling axis.

The per-level run-bound ``K_i ∈ [1, T]`` already spans the classic LSM
merge-discipline design space (Dostoevsky's parameterization); a *named*
:class:`CompactionPolicy` is a whole-tree discipline expressed as a
``K``-assignment per level:

* :class:`LevelingPolicy`      — ``K_i = 1`` everywhere. One run per level,
  lowest read amplification, ``T`` rewrites per entry per level.
* :class:`TieringPolicy`       — ``K_i = T`` everywhere. Per-level stacks of
  up to ``T`` runs, one rewrite per entry per level, highest read
  amplification.
* :class:`LazyLevelingPolicy`  — tiering on every upper level, leveling on
  the last (Dostoevsky's hybrid): cheap ingestion through the small levels,
  one-run point/range reads on the level holding most of the data.

Because an assignment is *relative to the current depth*, the policy object
is kept pinned on the tree (:attr:`LSMTree.compaction_policy`) and
re-applied whenever the tree grows a level — under lazy-leveling the old
bottom level flips from leveling to tiering when a new bottom appears.
Re-pinning uses the flexible transition (active-run capacity only), so it
moves no data and charges no simulated time.

The named axis is also a discrete RL action dimension: :data:`POLICY_NAMES`
fixes the action encoding used by :class:`repro.core.lerp.Lerp` when
``tune_policy`` is enabled, by the tuning-surface protocol
(:meth:`repro.engine.base.KVEngine.apply_named_policy`) and by snapshots
(policies persist by name).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import PolicyError


class CompactionPolicy:
    """A whole-tree merge discipline as a per-level ``K`` assignment."""

    name: str = "policy"

    def level_policy(self, level_no: int, n_levels: int, size_ratio: int) -> int:
        """``K`` for 1-based ``level_no`` of a tree ``n_levels`` deep."""
        raise NotImplementedError

    def assignments(self, n_levels: int, size_ratio: int) -> List[int]:
        """Per-level ``K`` values, shallow to deep."""
        if n_levels < 0:
            raise PolicyError(f"n_levels must be >= 0, got {n_levels}")
        return [
            self.level_policy(level_no, n_levels, size_ratio)
            for level_no in range(1, n_levels + 1)
        ]

    def initial_policy(self, size_ratio: int) -> int:
        """The ``K`` a store pinned to this policy seeds new trees with
        (the level-1 assignment of a one-level tree)."""
        return self.level_policy(1, 1, size_ratio)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CompactionPolicy) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


class LevelingPolicy(CompactionPolicy):
    """One sorted run per level (``K = 1``); RocksDB's default discipline."""

    name = "leveling"

    def level_policy(self, level_no: int, n_levels: int, size_ratio: int) -> int:
        return 1


class TieringPolicy(CompactionPolicy):
    """Up to ``T`` runs per level (``K = T``); write-optimized."""

    name = "tiering"

    def level_policy(self, level_no: int, n_levels: int, size_ratio: int) -> int:
        return size_ratio


class LazyLevelingPolicy(CompactionPolicy):
    """Tiering on upper levels, leveling on the last (Dostoevsky)."""

    name = "lazy-leveling"

    def level_policy(self, level_no: int, n_levels: int, size_ratio: int) -> int:
        return 1 if level_no == n_levels else size_ratio


#: Canonical action encoding of the named-policy dimension: index in this
#: tuple == discrete action id (Lerp's policy agent, snapshots, reports).
POLICY_NAMES = ("leveling", "tiering", "lazy-leveling")

_REGISTRY = {
    policy.name: policy
    for policy in (LevelingPolicy(), TieringPolicy(), LazyLevelingPolicy())
}

PolicyLike = Union[str, CompactionPolicy]


def named_policies() -> List[CompactionPolicy]:
    """The registered policies in action-encoding order."""
    return [_REGISTRY[name] for name in POLICY_NAMES]


def resolve_policy(policy: PolicyLike) -> CompactionPolicy:
    """Accept a policy object or its name; raise on unknown names."""
    if isinstance(policy, CompactionPolicy):
        return policy
    try:
        return _REGISTRY[policy]
    except (KeyError, TypeError):
        raise PolicyError(
            f"unknown compaction policy {policy!r}; "
            f"known: {', '.join(POLICY_NAMES)}"
        ) from None


def policy_index(policy: PolicyLike) -> int:
    """The discrete action id of ``policy`` (position in POLICY_NAMES)."""
    return POLICY_NAMES.index(resolve_policy(policy).name)


def policy_from_index(index: int) -> CompactionPolicy:
    """The policy for discrete action id ``index``."""
    if not 0 <= index < len(POLICY_NAMES):
        raise PolicyError(
            f"policy index must be in [0, {len(POLICY_NAMES) - 1}], got {index}"
        )
    return _REGISTRY[POLICY_NAMES[index]]


def classify_policies(
    policies: Sequence[int], size_ratio: int
) -> Optional[str]:
    """The named policy an explicit ``K`` vector corresponds to, if any.

    Used to seed the RL policy agent's notion of "current policy" on a tree
    that was configured with raw ``initial_policy`` rather than pinned to a
    named discipline. Returns ``None`` for vectors outside the named space
    (e.g. the Moderate K=5 baseline).
    """
    ks = list(policies)
    if not ks:
        return None
    for policy in named_policies():
        if ks == policy.assignments(len(ks), size_ratio):
            return policy.name
    return None
