"""The FLSM-tree facade.

An FLSM-tree (paper Section 4.2) is an LSM-tree that (a) allows runs of
different sizes to coexist in one level and (b) changes compaction policies
through the *flexible transition*: only the active run's capacity is
adjusted, sealed runs stay untouched, so a transition moves no data and
takes effect immediately.

The underlying :class:`~repro.lsm.tree.LSMTree` engine already supports
variable-size runs; this subclass fixes the transition strategy to flexible
and adds the transition-accounting helpers used by the Figure 10
micro-benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import SystemConfig, TransitionKind
from repro.lsm.policy import PolicyLike
from repro.lsm.stats import StatsCollector
from repro.lsm.transitions import switch_named_policy
from repro.lsm.tree import LSMTree
from repro.storage.clock import SimClock


class FLSMTree(LSMTree):
    """LSM-tree with flexible (zero-cost, zero-delay) policy transitions."""

    def __init__(
        self,
        config: SystemConfig,
        clock: Optional[SimClock] = None,
        stats: Optional[StatsCollector] = None,
        profile: bool = False,
    ) -> None:
        super().__init__(config, clock=clock, stats=stats, profile=profile)
        self.transition_log: List[dict] = []

    def transform_policy(self, level_no: int, new_policy: int) -> float:
        """Flexibly transition ``level_no`` to ``new_policy``.

        Returns the immediate simulated cost of the transition in seconds —
        always ``0.0`` for an FLSM-tree, which tests assert.
        """
        before = self.clock.now
        self.set_policy(level_no, new_policy, TransitionKind.FLEXIBLE)
        cost = self.clock.now - before
        self.transition_log.append(
            {
                "at": self.clock.now,
                "level": level_no,
                "policy": new_policy,
                "cost": cost,
            }
        )
        return cost

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["transition_log"] = [dict(entry) for entry in self.transition_log]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.transition_log = [
            dict(entry) for entry in state.get("transition_log", [])
        ]

    def transform_named_policy(self, policy: PolicyLike) -> float:
        """Flexibly switch the whole tree to a named compaction policy
        (leveling / tiering / lazy-leveling, see :mod:`repro.lsm.policy`).

        Returns the immediate simulated cost of the switch in seconds —
        always ``0.0`` for an FLSM-tree (only active-run capacities change),
        which tests assert.
        """
        cost = switch_named_policy(self, policy, TransitionKind.FLEXIBLE)
        self.transition_log.append(
            {
                "at": self.clock.now,
                "level": None,
                "policy": self.named_policy(),
                "cost": cost,
            }
        )
        return cost

    def transform_policies(self, new_policies: Sequence[int]) -> float:
        """Flexibly transition every level; returns total immediate cost."""
        before = self.clock.now
        self.set_policies(list(new_policies), TransitionKind.FLEXIBLE)
        cost = self.clock.now - before
        self.transition_log.append(
            {
                "at": self.clock.now,
                "level": None,
                "policy": list(new_policies),
                "cost": cost,
            }
        )
        return cost
