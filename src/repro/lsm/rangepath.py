"""The vectorized batch range-scan path and its scalar reference.

Range counterpart of :mod:`repro.lsm.readpath` (ROADMAP item 6): the
per-op :meth:`~repro.lsm.tree.LSMTree.range_scan` walks every run with
its own pair of scalar ``searchsorted`` calls and runs one
``merge_sorted_sources`` per range. :func:`scan_batch` does the same work
for a whole batch of R ranges at once:

* **search** — one vectorized ``np.searchsorted(run.keys, los/his)``
  pair per run yields all R segment bounds, and the fence-pointer page
  counts fall out of integer math on the bounds (the page of rank ``r``
  is ``r // entries_per_page``, clamped like
  :meth:`SortedRun.page_of_position`).
* **charge** — simulated costs are replayed in exactly the reference
  order (range-major: for each range, deepest level first, runs oldest →
  newest within a level; ``probe_cpu`` per run, then ``sequential_read``
  when the segment touches pages). Float accumulation is
  order-dependent, so the replay *is* the bit-identity proof: same
  charge sequence, same clock, same per-level read attribution.
* **gather** — each run contributes all its segments through one
  fancy-index; segments are tagged with their range id.
* **merge** — one stable ``(range_id, key)`` lexsort over every gathered
  segment replaces R separate ``merge_sorted_sources`` calls: within a
  range, equal keys keep source order (oldest → newest), so keep-last
  dedup and tombstone drop reproduce the per-range merge exactly.

The memtable contributes through its lazily-built sorted view (two
``searchsorted`` calls per batch) instead of R O(M) dict scans; building
the view is host-side caching with no simulated cost, exactly like the
point-lookup path.

:func:`reference_range_scan_batch` keeps the pre-vectorization per-op
loop verbatim as an executable specification — the equivalence suite
(``tests/test_rangepath.py``) and the ``range_path_scale`` benchmark
both diff :meth:`LSMTree.range_scan_batch` against it on identical tree
snapshots.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.lsm.entry import TOMBSTONE, merge_sorted_sources
from repro.lsm.readpath import perf_counter

#: Profiler stage names added to :data:`repro.lsm.readpath.STAGES` for the
#: batch range path, in pipeline order.
RANGE_STAGES = ("range_search", "range_charge", "range_gather", "range_merge")

BatchResult = Tuple[np.ndarray, np.ndarray, np.ndarray]


def empty_batch_result(n_ranges: int) -> BatchResult:
    """``(keys, values, offsets)`` for a batch with no live entries."""
    empty = np.zeros(0, dtype=np.int64)
    return empty, empty.copy(), np.zeros(n_ranges + 1, dtype=np.int64)


def multi_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + lengths[i])``.

    The standard cumsum/repeat trick: one flat ``arange`` over the total
    length, shifted per block so each block restarts at its own start.
    Zero-length blocks contribute nothing. Used to gather every range's
    segment of a run with a single fancy-index.
    """
    total = int(lengths.sum())
    idx = np.arange(total, dtype=np.int64)
    ends = np.cumsum(lengths)
    # Position of block b in the flat arange is ends[b] - lengths[b].
    idx += np.repeat(starts - (ends - lengths), lengths)
    return idx


def merge_tagged_segments(
    rid_parts: List[np.ndarray],
    key_parts: List[np.ndarray],
    value_parts: List[np.ndarray],
    n_ranges: int,
) -> BatchResult:
    """Newest-wins merge of range-tagged segments, one lexsort per batch.

    ``parts`` lists must be ordered oldest source → newest source (the
    same precedence order :func:`repro.lsm.entry.merge_sorted_sources`
    takes). The stable ``(range_id, key)`` lexsort groups each range,
    sorts it by key, and leaves the newest copy of every duplicate key
    last in its group — so keep-last dedup plus tombstone drop equal the
    per-range reference merge. Returns flat ``(keys, values, offsets)``
    with ``offsets`` of length ``n_ranges + 1`` delimiting each range's
    slice.
    """
    if not key_parts:
        return empty_batch_result(n_ranges)
    rids = np.concatenate(rid_parts)
    keys = np.concatenate(key_parts)
    values = np.concatenate(value_parts)
    order = np.lexsort((keys, rids))  # stable; rids primary, keys secondary
    rids = rids[order]
    keys = keys[order]
    values = values[order]
    keep = np.empty(len(keys), dtype=bool)
    keep[:-1] = (rids[1:] != rids[:-1]) | (keys[1:] != keys[:-1])
    keep[-1] = True
    alive = keep & (values != TOMBSTONE)
    rids = rids[alive]
    offsets = np.searchsorted(rids, np.arange(n_ranges + 1))
    return keys[alive], values[alive], offsets


def scan_batch(tree, los: np.ndarray, his: np.ndarray) -> BatchResult:
    """Batch counterpart of :meth:`LSMTree.range_scan`: charges every
    probe and I/O cost of the R scans (bit-identically to R per-op scans,
    in the same order) but does not count operations — engines layer op
    counting on top (:meth:`LSMTree.range_scan_batch` counts here,
    :meth:`ShardedStore.range_scan_batch` counts on home shards while
    scanning every shard). Returns flat ``(keys, values, offsets)``
    arrays where range ``i``'s live entries are
    ``keys[offsets[i]:offsets[i + 1]]``, sorted by key.

    Callers must validate ``los``/``his``; ranges are inclusive on both
    ends and every ``los[i] <= his[i]``.
    """
    n_ranges = len(los)
    if n_ranges == 0:
        return empty_batch_result(0)
    prof = tree.read_profiler
    if prof is not None:
        prof.note_range_batch(n_ranges)
        t0 = perf_counter()

    # --- search: all R segment bounds + page counts, one pass per run ---
    # Sources in charge/precedence order: deepest level first, runs
    # oldest -> newest within a level, memtable last (newest). Every run
    # enters the charge plan (probes are charged even for empty overlap);
    # only runs with data enter the gather list.
    charge_plan: List[Tuple[int, List[int]]] = []  # (level_no, pages per range)
    gather: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    zero_pages: List[int] = [0] * n_ranges
    for level in reversed(tree.levels):
        level_no = level.level_no
        for run in level.runs:
            n_entries = run.n_entries
            if n_entries == 0:
                charge_plan.append((level_no, zero_pages))
                continue
            starts = np.searchsorted(run.keys, los, side="left")
            stops = np.searchsorted(run.keys, his, side="right")
            # Page span of each non-empty segment, matching
            # SortedRun.range_slice: last_page - first_page + 1 with both
            # positions clamped into the run.
            epp = run.entries_per_page
            first_page = starts // epp
            last_page = np.minimum(stops - 1, n_entries - 1) // epp
            pages = np.where(starts < stops, last_page - first_page + 1, 0)
            charge_plan.append((level_no, pages.tolist()))
            gather.append((run.keys, run.values, starts, stops))
    mk, mv = tree.memtable.sorted_view()
    if len(mk):
        m_starts = np.searchsorted(mk, los, side="left")
        m_stops = np.searchsorted(mk, his, side="right")
        gather.append((mk, mv, m_starts, m_stops))
    if prof is not None:
        prof.add("range_search", perf_counter() - t0)
        t0 = perf_counter()

    # --- charge: replay the reference cost sequence, range-major ---
    # probe_cpu(1) returns 1 * run_probe_cpu_s == the constant itself, and
    # sequential_read(p) returns p * seq_read_s; charging those products
    # through clock.advance in the reference order reproduces the exact
    # float rounding sequence of R per-op scans. The seq-read counter is
    # an integer total, so it sums once at the end.
    costs = tree.config.costs
    probe_cost = 1 * costs.run_probe_cpu_s
    seq_read_s = costs.seq_read_s
    advance = tree.clock.advance
    add_read = tree.stats.add_read
    seq_pages = 0
    for r in range(n_ranges):
        for level_no, pages in charge_plan:
            advance(probe_cost)
            add_read(level_no, probe_cost)
            n_pages = pages[r]
            if n_pages:
                seq_pages += n_pages
                io_cost = n_pages * seq_read_s
                advance(io_cost)
                add_read(level_no, io_cost)
    tree.disk.counters.seq_reads += seq_pages
    if prof is not None:
        prof.add("range_charge", perf_counter() - t0)
        t0 = perf_counter()

    # --- gather: one fancy-index per source, tagged with range ids ---
    rid_range = np.arange(n_ranges, dtype=np.int64)
    rid_parts: List[np.ndarray] = []
    key_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    for src_keys, src_values, starts, stops in gather:
        lengths = stops - starts
        if not lengths.any():
            continue
        idx = multi_arange(starts, lengths)
        rid_parts.append(np.repeat(rid_range, lengths))
        key_parts.append(src_keys[idx])
        value_parts.append(src_values[idx])
    if prof is not None:
        prof.add("range_gather", perf_counter() - t0)
        t0 = perf_counter()

    # --- merge: one (range_id, key) lexsort for the whole batch ---
    result = merge_tagged_segments(rid_parts, key_parts, value_parts, n_ranges)
    if prof is not None:
        prof.add("range_merge", perf_counter() - t0)
    return result


def reference_range_scan_batch(
    tree, los: np.ndarray, his: np.ndarray
) -> BatchResult:
    """The pre-vectorization range path: one full per-op scan per range.

    Kept verbatim as the executable specification — per range this is
    exactly the seed's :meth:`LSMTree.range_lookup` body (op count, then
    :meth:`LSMTree.range_scan`'s run walk with scalar ``range_slice``
    calls, the O(M) memtable dict scan, and one ``merge_sorted_sources``)
    — only the outputs are packed into the batch ``(keys, values,
    offsets)`` layout so both paths can be diffed directly.
    """
    result_keys: List[np.ndarray] = []
    result_values: List[np.ndarray] = []
    offsets = np.zeros(len(los) + 1, dtype=np.int64)
    for i, (lo, hi) in enumerate(zip(los.tolist(), his.tolist())):
        if lo > hi:
            raise ValueError(f"empty range: lo={lo} > hi={hi}")
        tree.stats.count_range()
        key_arrays: List[np.ndarray] = []
        value_arrays: List[np.ndarray] = []
        # Oldest sources first so merge_sorted_sources keeps the newest.
        for level in reversed(tree.levels):
            for run in level.runs:  # within a level: oldest -> newest
                probe_cost = tree.disk.probe_cpu(1)
                tree.stats.add_read(level.level_no, probe_cost)
                run_keys, run_values, n_pages = run.range_slice(lo, hi)
                if n_pages:
                    io_cost = tree.disk.sequential_read(n_pages)
                    tree.stats.add_read(level.level_no, io_cost)
                if len(run_keys):
                    key_arrays.append(run_keys)
                    value_arrays.append(run_values)
        buffered = tree.memtable.range_items_scan(lo, hi)
        if buffered:
            mk = np.fromiter(buffered.keys(), dtype=np.int64, count=len(buffered))
            mv = np.fromiter(
                buffered.values(), dtype=np.int64, count=len(buffered)
            )
            order = np.argsort(mk, kind="stable")
            key_arrays.append(mk[order])
            value_arrays.append(mv[order])
        keys, values = merge_sorted_sources(
            key_arrays, value_arrays, drop_tombstones=True
        )
        result_keys.append(keys)
        result_values.append(values)
        offsets[i + 1] = offsets[i] + len(keys)
    if not result_keys:
        return empty_batch_result(len(los))
    return (
        np.concatenate(result_keys),
        np.concatenate(result_values),
        offsets,
    )
