"""Read-path instrumentation and the scalar reference lookup pipeline.

Two tools for the hot-path speed campaign (ROADMAP item 6):

* :class:`ReadPathProfiler` — lightweight per-stage **wall-clock** timers
  for :meth:`repro.lsm.tree.LSMTree.get_batch`. Enabled with
  ``LSMTree(config, profile=True)``; when disabled (the default) the read
  path carries only a ``None``-check per stage. The stages mirror the
  pipeline: ``memtable`` (buffer resolution), ``search`` (stacked-index
  build/probe, page math, pending-set maintenance), ``bloom`` (filter
  probes), ``cache`` (block-cache + simulated-device charging). Profiling
  measures *host* time only — it never touches the :class:`SimClock`, so
  enabling it cannot change simulated results.

* :func:`reference_get_batch` — the pre-vectorization run-at-a-time batch
  lookup, kept verbatim as an executable specification. The stacked
  level-at-a-time path in ``LSMTree.get_batch`` must be **bit-identical**
  to this reference in every observable: found/values output, simulated
  clock, per-level read charges, I/O and cache counters, and the Bloom
  RNG stream. The equivalence suite (``tests/test_readpath.py``) and the
  ``read_path_scale`` benchmark both diff against it.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from repro.lsm.entry import TOMBSTONE

#: Point-lookup stage names, in pipeline order. The range stages
#: (``range_search`` / ``range_charge`` / ``range_gather`` /
#: ``range_merge``, see :mod:`repro.lsm.rangepath`) follow, so one
#: profiler covers both batch read paths.
STAGES = (
    "memtable",
    "search",
    "bloom",
    "cache",
    "range_search",
    "range_charge",
    "range_gather",
    "range_merge",
)

#: The stages normalized per range (vs per key) in reports.
RANGE_STAGE_SET = frozenset(s for s in STAGES if s.startswith("range_"))


class ReadPathProfiler:
    """Accumulates wall-clock seconds per read-path stage.

    The tree calls :meth:`add` with ``time.perf_counter()`` deltas around
    each stage, :meth:`note_batch` once per ``get_batch`` and
    :meth:`note_range_batch` once per ``range_scan_batch``. All numbers
    are host measurements (like ``MissionStats.wall_duration``) and are
    deliberately kept out of simulated accounting and snapshots.
    """

    __slots__ = (
        "seconds",
        "calls",
        "n_batches",
        "n_keys",
        "n_range_batches",
        "n_ranges",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all accumulators."""
        self.seconds: Dict[str, float] = {stage: 0.0 for stage in STAGES}
        self.calls: Dict[str, int] = {stage: 0 for stage in STAGES}
        self.n_batches = 0
        self.n_keys = 0
        self.n_range_batches = 0
        self.n_ranges = 0

    def add(self, stage: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall time to ``stage``."""
        self.seconds[stage] += seconds
        self.calls[stage] += 1

    def note_batch(self, n_keys: int) -> None:
        """Record one ``get_batch`` call over ``n_keys`` keys."""
        self.n_batches += 1
        self.n_keys += int(n_keys)

    def note_range_batch(self, n_ranges: int) -> None:
        """Record one ``range_scan_batch`` call over ``n_ranges`` ranges."""
        self.n_range_batches += 1
        self.n_ranges += int(n_ranges)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def summary(self) -> Dict[str, object]:
        """Machine-readable snapshot of the accumulated profile."""
        total = self.total_seconds
        return {
            "n_batches": self.n_batches,
            "n_keys": self.n_keys,
            "n_range_batches": self.n_range_batches,
            "n_ranges": self.n_ranges,
            "total_seconds": total,
            "stages": {
                stage: {
                    "seconds": self.seconds[stage],
                    "calls": self.calls[stage],
                    "fraction": self.seconds[stage] / total if total else 0.0,
                }
                for stage in STAGES
            },
        }

    def format_report(self) -> str:
        """Human-readable per-stage breakdown.

        The ``us/op`` column normalizes point stages by keys probed and
        range stages by ranges scanned.
        """
        total = self.total_seconds
        lines = [
            f"read-path profile: {self.n_batches} batches / "
            f"{self.n_keys} keys, {self.n_range_batches} range batches / "
            f"{self.n_ranges} ranges, {total * 1e3:.2f} ms instrumented",
            f"{'stage':>12} | {'ms':>9} | {'%':>6} | {'calls':>8} | {'us/op':>8}",
        ]
        for stage in STAGES:
            seconds = self.seconds[stage]
            share = 100.0 * seconds / total if total else 0.0
            n_ops = self.n_ranges if stage in RANGE_STAGE_SET else self.n_keys
            per_op = seconds / n_ops * 1e6 if n_ops else 0.0
            lines.append(
                f"{stage:>12} | {seconds * 1e3:9.2f} | {share:6.1f} | "
                f"{self.calls[stage]:8d} | {per_op:8.3f}"
            )
        return "\n".join(lines)


def reference_get_batch(tree, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The pre-vectorization ``get_batch``: one Python iteration per run.

    Semantically equivalent to per-key :meth:`~repro.lsm.tree.LSMTree.get`
    with batched cost charging; kept as the executable reference the
    stacked level-at-a-time pipeline is verified against (same probe
    schedule, same ``probe_cpu``/``add_read`` charges per run, same Bloom
    RNG consumption, same ``O(n log n)`` ``np.isin`` pending-set
    maintenance the production path replaced with ``O(n)`` masks).
    """
    keys = np.asarray(keys, dtype=np.int64)
    n = len(keys)
    tree.stats.count_lookup(n)
    resolved, buffered_values = tree.memtable.get_batch(keys)
    found = resolved & (buffered_values != TOMBSTONE)
    values = np.where(found, buffered_values, 0)

    pending = np.flatnonzero(~resolved)
    for level in tree.levels:
        if len(pending) == 0:
            break
        for run in reversed(level.runs):
            if len(pending) == 0:
                break
            probe_cost = tree.disk.probe_cpu(len(pending))
            tree.stats.add_read(level.level_no, probe_cost)
            positives = run.bloom_positive_batch(keys[pending])
            if not positives.any():
                continue
            probe_idx = pending[positives]
            hit, hit_values, pages = run.find_batch(keys[probe_idx])
            io_cost = tree.disk.random_read_batch(run.run_id, pages)
            tree.stats.add_read(level.level_no, io_cost)
            if hit.any():
                hit_idx = probe_idx[hit]
                resolved[hit_idx] = True
                real = hit_values[hit] != TOMBSTONE
                found[hit_idx] = real
                values[hit_idx[real]] = hit_values[hit][real]
                pending = pending[~np.isin(pending, hit_idx, assume_unique=True)]
    return found, values


#: Re-exported for profiling call sites.
perf_counter = time.perf_counter
