"""Sorted runs: the on-disk unit of an LSM level.

A :class:`SortedRun` owns a sorted, duplicate-free array of keys with their
values, a Bloom filter sized for the level's false-positive rate, and
implicit fence pointers (one per page: the page of a key is simply its rank
divided by entries-per-page, which models the per-page min-key index real
systems keep in memory).

Runs are *immutable once sealed*. The active run of a level is replaced
wholesale on every merge (the merge cost is charged by the tree); its
``capacity_entries`` attribute is the only mutable piece of metadata, which
is exactly what the paper's flexible transition adjusts.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.config import BloomMode
from repro.bloom.filter import AnalyticalBloomFilter, BitArrayBloomFilter
from repro.errors import TreeStateError

BloomFilter = Union[BitArrayBloomFilter, AnalyticalBloomFilter]


class SortedRun:
    """An immutable sorted run with Bloom filter and fence pointers."""

    __slots__ = (
        "run_id",
        "level_no",
        "keys",
        "values",
        "fpr",
        "capacity_entries",
        "sealed",
        "_bloom",
        "_entries_per_page",
    )

    # The filter is a pure function of (keys, fpr, run_id); from_state_dict
    # rebuilds it bit-identically rather than serializing the bit array.
    _snapshot_exempt = frozenset({"_bloom"})

    def __init__(
        self,
        run_id: int,
        level_no: int,
        keys: np.ndarray,
        values: np.ndarray,
        fpr: float,
        capacity_entries: int,
        entries_per_page: int,
        bloom_mode: BloomMode,
        rng: np.random.Generator,
        sealed: bool = False,
    ) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.shape != values.shape:
            raise TreeStateError(
                f"keys/values length mismatch: {keys.shape} vs {values.shape}"
            )
        if len(keys) > 1 and not bool(np.all(keys[1:] > keys[:-1])):
            raise TreeStateError("run keys must be strictly increasing")
        if entries_per_page < 1:
            raise TreeStateError(
                f"entries_per_page must be >= 1, got {entries_per_page}"
            )
        self.run_id = run_id
        self.level_no = level_no
        self.keys = keys
        self.values = values
        self.fpr = float(fpr)
        self.capacity_entries = int(capacity_entries)
        self.sealed = sealed
        self._entries_per_page = entries_per_page
        if bloom_mode is BloomMode.BIT_ARRAY:
            self._bloom: BloomFilter = BitArrayBloomFilter(keys, fpr, salt=run_id)
        else:
            self._bloom = AnalyticalBloomFilter(keys, fpr, rng)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self.keys)

    @property
    def n_pages(self) -> int:
        if self.n_entries == 0:
            return 0
        return -(-self.n_entries // self._entries_per_page)

    @property
    def entries_per_page(self) -> int:
        """Entries per fence-pointer page (the page of rank ``r`` is
        ``r // entries_per_page``); used by the stacked level index to
        compute page indices without a per-run :meth:`find_batch`."""
        return self._entries_per_page

    @property
    def is_empty(self) -> bool:
        return self.n_entries == 0

    @property
    def is_at_capacity(self) -> bool:
        return self.n_entries >= self.capacity_entries

    @property
    def min_key(self) -> Optional[int]:
        return int(self.keys[0]) if self.n_entries else None

    @property
    def max_key(self) -> Optional[int]:
        return int(self.keys[-1]) if self.n_entries else None

    @property
    def bloom_memory_bits(self) -> int:
        return self._bloom.memory_bits

    def seal(self) -> None:
        """Mark the run immutable; further policy changes never touch it."""
        self.sealed = True

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------
    def bloom_positive(self, key: int) -> bool:
        """Whether the Bloom filter directs a disk probe for ``key``."""
        return self._bloom.might_contain(key)

    def bloom_positive_batch(
        self, keys: np.ndarray, present: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Vectorized :meth:`bloom_positive`.

        ``present`` is an optional exact-membership mask (from the stacked
        level index); the analytical filter uses it to skip its internal
        binary search while drawing false positives bit-identically, the
        bit-array filter ignores it.
        """
        return self._bloom.might_contain_batch(keys, present=present)

    def position_of(self, key: int) -> int:
        """Rank ``key`` would occupy; used by fence pointers."""
        return int(np.searchsorted(self.keys, key))

    def page_of_position(self, position: int) -> int:
        """Page index holding the entry at ``position`` (clamped to the run)."""
        if self.n_entries == 0:
            return 0
        position = min(max(position, 0), self.n_entries - 1)
        return position // self._entries_per_page

    def find(self, key: int) -> Tuple[bool, int, int]:
        """Exact search: ``(found, value, page_index)``.

        ``page_index`` is the page a fence-pointer-guided probe would read,
        whether or not the key is present (a Bloom false positive still costs
        that one page read).
        """
        pos = self.position_of(key)
        page = self.page_of_position(pos)
        if pos < self.n_entries and self.keys[pos] == key:
            return True, int(self.values[pos]), page
        return False, 0, page

    def find_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`find`: ``(found_mask, values, page_indices)``."""
        keys = np.asarray(keys, dtype=np.int64)
        if self.n_entries == 0:
            n = len(keys)
            return (
                np.zeros(n, dtype=bool),
                np.zeros(n, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
            )
        pos = np.searchsorted(self.keys, keys)
        clamped = np.minimum(pos, self.n_entries - 1)
        found = self.keys[clamped] == keys
        values = np.where(found, self.values[clamped], 0)
        pages = clamped // self._entries_per_page
        return found, values, pages

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def range_slice(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """Entries with ``lo <= key <= hi`` plus the pages touched.

        Returns ``(keys, values, n_pages_read)``. An empty overlap costs zero
        pages (fence pointers prove the range is absent without I/O).
        """
        if self.n_entries == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), 0
        start = int(np.searchsorted(self.keys, lo, side="left"))
        stop = int(np.searchsorted(self.keys, hi, side="right"))
        if start >= stop:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), 0
        first_page = self.page_of_position(start)
        last_page = self.page_of_position(stop - 1)
        return (
            self.keys[start:stop],
            self.values[start:stop],
            last_page - first_page + 1,
        )

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the run.

        The Bloom filter is not serialized: both implementations are exactly
        reconstructible from the run's keys — the bit-array filter is a
        deterministic function of ``(keys, fpr, run_id)`` and the analytical
        filter holds no state beyond a reference to the owner's RNG (whose
        state the owning tree snapshots).
        """
        return {
            "run_id": self.run_id,
            "level_no": self.level_no,
            "keys": self.keys.copy(),
            "values": self.values.copy(),
            "fpr": self.fpr,
            "capacity_entries": self.capacity_entries,
            "entries_per_page": self._entries_per_page,
            "sealed": self.sealed,
        }

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        bloom_mode: BloomMode,
        rng: np.random.Generator,
    ) -> "SortedRun":
        """Rebuild a run (and its Bloom filter) from :meth:`state_dict`."""
        return cls(
            run_id=int(state["run_id"]),
            level_no=int(state["level_no"]),
            keys=state["keys"],
            values=state["values"],
            fpr=float(state["fpr"]),
            capacity_entries=int(state["capacity_entries"]),
            entries_per_page=int(state["entries_per_page"]),
            bloom_mode=bloom_mode,
            rng=rng,
            sealed=bool(state["sealed"]),
        )

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "active"
        return (
            f"SortedRun(id={self.run_id}, level={self.level_no}, "
            f"entries={self.n_entries}/{self.capacity_entries}, {state})"
        )
