"""A single level of the (F)LSM-tree.

A level owns an ordered list of runs — oldest first, the *active* run last —
plus its compaction policy ``K`` (maximum number of runs, paper Section 2).
The active run admits the merge output from the level above and seals at
``capacity / K``. Crucially for the FLSM design (paper Section 4.2), sealed
runs may have *any* size: a policy change only affects the capacity of the
active run and of runs formed later.

The level holds no cost logic; merging and accounting live in
:class:`repro.lsm.tree.LSMTree`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PolicyError, TreeStateError
from repro.lsm.run import SortedRun


class LevelLookupIndex:
    """Read-only point-lookup index over *all* runs of one level.

    Built by merging every run's sorted keys into one array and keeping, for
    each **unique** key in the level, the entry from the *newest* run that
    contains it:

    * ``keys``  — unique keys present anywhere in the level, sorted;
    * ``rank``  — newest-first run rank containing the key (``0`` is the
      newest run, i.e. ``runs[-1]``);
    * ``values``/``positions`` — value and within-run position of that
      newest entry (position drives the fence-pointer page:
      ``position // entries_per_page``).

    This is the in-memory metadata a real system holds per run (fence
    pointers + filters), folded level-wide so a batch lookup resolves the
    run-probe schedule of every key in one binary search instead of one per
    run. The index is immutable; :meth:`Level.lookup_index` caches it keyed
    on the level's run list (runs are immutable once created, so the tuple
    of run ids identifies the content exactly).
    """

    __slots__ = ("n_runs", "keys", "rank", "values", "positions")

    def __init__(self, runs: List[SortedRun]) -> None:
        self.n_runs = len(runs)
        parts_k: List[np.ndarray] = []
        parts_rank: List[np.ndarray] = []
        parts_pos: List[np.ndarray] = []
        parts_v: List[np.ndarray] = []
        # Newest first, so a stable sort leaves the newest copy of a
        # duplicated key in front and ``rank`` is the probe order of
        # ``get``/``get_batch`` (runs[-1] is probed first).
        for rank, run in enumerate(reversed(runs)):
            if run.n_entries == 0:
                continue
            parts_k.append(run.keys)
            parts_rank.append(np.full(run.n_entries, rank, dtype=np.int64))
            parts_pos.append(np.arange(run.n_entries, dtype=np.int64))
            parts_v.append(run.values)
        if not parts_k:
            empty = np.zeros(0, dtype=np.int64)
            self.keys = empty
            self.rank = empty.copy()
            self.values = empty.copy()
            self.positions = empty.copy()
            return
        all_keys = np.concatenate(parts_k)
        order = np.argsort(all_keys, kind="stable")
        sorted_keys = all_keys[order]
        first = np.ones(len(sorted_keys), dtype=bool)
        first[1:] = sorted_keys[1:] != sorted_keys[:-1]
        self.keys = sorted_keys[first]
        self.rank = np.concatenate(parts_rank)[order][first]
        self.values = np.concatenate(parts_v)[order][first]
        self.positions = np.concatenate(parts_pos)[order][first]

    def newest_ranks(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Probe schedule for ``keys``: ``(rank, values, positions)``.

        ``rank[i]`` is the newest-first rank of the run that resolves
        ``keys[i]`` or the sentinel ``n_runs`` when the level holds no copy
        of the key (the key stays pending through every run). ``values`` and
        ``positions`` are aligned gather results, meaningful only where
        ``rank < n_runs``.
        """
        n = len(keys)
        if len(self.keys) == 0:
            sentinel = np.full(n, self.n_runs, dtype=np.int64)
            zeros = np.zeros(n, dtype=np.int64)
            return sentinel, zeros, zeros.copy()
        pos = np.searchsorted(self.keys, keys)
        clamped = np.minimum(pos, len(self.keys) - 1)
        present = self.keys[clamped] == keys
        rank = np.where(present, self.rank[clamped], self.n_runs)
        return rank, self.values[clamped], self.positions[clamped]


class Level:
    """Runs, capacity and compaction policy of one LSM level."""

    __slots__ = (
        "level_no",
        "capacity_entries",
        "policy",
        "pending_policy",
        "fpr",
        "runs",
        "max_policy",
        "_lookup_cache",
    )

    # Derived lookup index, rebuilt lazily from the runs on first use.
    _snapshot_exempt = frozenset({"_lookup_cache"})

    def __init__(
        self,
        level_no: int,
        capacity_entries: int,
        policy: int,
        fpr: float,
        max_policy: int,
    ) -> None:
        if level_no < 1:
            raise TreeStateError(f"level_no must be >= 1, got {level_no}")
        if capacity_entries < 1:
            raise TreeStateError(
                f"capacity_entries must be >= 1, got {capacity_entries}"
            )
        self.level_no = level_no
        self.capacity_entries = capacity_entries
        self.max_policy = max_policy
        self._check_policy(policy)
        self.policy = policy
        #: Policy queued by a lazy transition; applied when the level empties.
        self.pending_policy: Optional[int] = None
        self.fpr = fpr
        self.runs: List[SortedRun] = []
        #: ``(run_ids, LevelLookupIndex)`` of the last stacked-index build.
        self._lookup_cache: Optional[Tuple[Tuple[int, ...], LevelLookupIndex]] = None

    def _check_policy(self, policy: int) -> None:
        if not isinstance(policy, int) or not 1 <= policy <= self.max_policy:
            raise PolicyError(
                f"policy must be an int in [1, {self.max_policy}], got {policy!r}"
            )

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def data_entries(self) -> int:
        return sum(run.n_entries for run in self.runs)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def fill_ratio(self) -> float:
        """Fraction of the level's capacity currently occupied (paper D/C)."""
        return self.data_entries / self.capacity_entries

    @property
    def is_full(self) -> bool:
        return self.data_entries >= self.capacity_entries

    @property
    def is_empty(self) -> bool:
        return self.data_entries == 0

    @property
    def active_run(self) -> Optional[SortedRun]:
        """The unsealed run accepting merges, or ``None``."""
        if self.runs and not self.runs[-1].sealed:
            return self.runs[-1]
        return None

    @property
    def sealed_runs(self) -> List[SortedRun]:
        return [run for run in self.runs if run.sealed]

    def active_run_capacity(self) -> int:
        """Capacity of a (new) active run under the current policy: ``C/K``."""
        return max(1, self.capacity_entries // self.policy)

    def lookup_index(self) -> LevelLookupIndex:
        """The stacked point-lookup index over this level's current runs.

        Lazily built and cached until the run list changes. Runs are
        immutable once created (the active run is *replaced* wholesale on
        every merge, never edited), so the tuple of run ids is a complete
        content fingerprint — no invalidation hooks are needed at the
        mutation sites.
        """
        run_ids = tuple(run.run_id for run in self.runs)
        cached = self._lookup_cache
        if cached is not None and cached[0] == run_ids:
            return cached[1]
        index = LevelLookupIndex(self.runs)
        self._lookup_cache = (run_ids, index)
        return index

    # ------------------------------------------------------------------
    # Run management (invoked by the tree)
    # ------------------------------------------------------------------
    def replace_active(self, new_run: SortedRun) -> Optional[SortedRun]:
        """Swap the active run for its merged replacement.

        Returns the run that was replaced (for cache invalidation) or ``None``
        if the level had no active run. Seals the replacement when it has
        reached its capacity.
        """
        old = None
        if self.runs and not self.runs[-1].sealed:
            old = self.runs.pop()
        self.runs.append(new_run)
        if new_run.is_at_capacity:
            new_run.seal()
        return old

    def drop_all_runs(self) -> List[SortedRun]:
        """Remove every run (after a full-level merge). Applies any pending
        lazy policy now that the level is empty."""
        dropped = self.runs
        self.runs = []
        if self.pending_policy is not None:
            self.policy = self.pending_policy
            self.pending_policy = None
        return dropped

    # ------------------------------------------------------------------
    # Policy transitions (paper Section 4)
    # ------------------------------------------------------------------
    def set_policy_flexible(self, new_policy: int) -> None:
        """Apply ``new_policy`` with the FLSM flexible transition.

        * ``K' < K`` — the active run's capacity grows to ``C/K'``; sealed
          runs are untouched.
        * ``K' > K`` — the active run's capacity shrinks to ``C/K'``; if the
          active run already exceeds the new capacity it is sealed
          immediately and a fresh active run will be created on next admit.

        No data moves, so the transition costs zero I/O and takes effect
        immediately (paper Table 2).
        """
        self._check_policy(new_policy)
        self.pending_policy = None
        self.policy = new_policy
        active = self.active_run
        if active is None:
            return
        new_capacity = self.active_run_capacity()
        active.capacity_entries = new_capacity
        if active.n_entries >= new_capacity:
            active.seal()

    def set_policy_lazy(self, new_policy: int) -> None:
        """Queue ``new_policy``; it takes effect when the level next empties."""
        self._check_policy(new_policy)
        if new_policy == self.policy:
            self.pending_policy = None
        else:
            self.pending_policy = new_policy

    def set_policy_immediate(self, new_policy: int) -> None:
        """Set the policy directly (used by the greedy transition *after* the
        level has been force-merged, and by initialization)."""
        self._check_policy(new_policy)
        self.pending_policy = None
        self.policy = new_policy

    def effective_policy(self) -> int:
        """The policy currently governing the level's behaviour (a pending
        lazy policy is *not* effective until the level empties)."""
        return self.policy

    def check_invariants(self) -> None:
        """Raise :class:`TreeStateError` if the level violates structural
        invariants. Used by tests and the tree's debug mode."""
        for run in self.runs[:-1]:
            if not run.sealed:
                raise TreeStateError(
                    f"level {self.level_no}: non-tail run {run.run_id} unsealed"
                )
        for run in self.runs:
            if run.level_no != self.level_no:
                raise TreeStateError(
                    f"level {self.level_no}: run {run.run_id} tagged "
                    f"level {run.level_no}"
                )

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the level and its runs (oldest first)."""
        return {
            "level_no": self.level_no,
            "capacity_entries": self.capacity_entries,
            "policy": self.policy,
            "pending_policy": self.pending_policy,
            "fpr": self.fpr,
            "max_policy": self.max_policy,
            "runs": [run.state_dict() for run in self.runs],
        }

    @classmethod
    def from_state_dict(cls, state: dict, run_builder) -> "Level":
        """Rebuild a level; ``run_builder(run_state)`` reconstructs each run
        (the tree supplies one bound to its Bloom mode and RNG)."""
        level = cls(
            level_no=int(state["level_no"]),
            capacity_entries=int(state["capacity_entries"]),
            policy=int(state["policy"]),
            fpr=float(state["fpr"]),
            max_policy=int(state["max_policy"]),
        )
        pending = state["pending_policy"]
        level.pending_policy = None if pending is None else int(pending)
        level.runs = [run_builder(run_state) for run_state in state["runs"]]
        return level

    def __repr__(self) -> str:
        return (
            f"Level(no={self.level_no}, K={self.policy}, runs={self.n_runs}, "
            f"fill={self.fill_ratio:.2f})"
        )
