"""Compaction-policy transition strategies (paper Section 4).

Three ways to move a level from policy ``K`` to ``K'``:

* :class:`GreedyTransition` — merge all the level's data into the next level
  right away, then rebuild under ``K'`` (Dayan & Idreos' extended
  discussion). Amortized immediate cost ``C/2B`` I/Os, zero delay.
* :class:`LazyTransition` — record ``K'`` and apply it only when the level
  next empties through a full-level compaction. Zero immediate cost, but the
  change is delayed by ``C/(2·N_u·E)`` seconds on average, starving the RL
  model of timely feedback.
* :class:`FlexibleTransition` — the FLSM-tree's method: only the active
  run's capacity changes (shrinking may seal it immediately). Zero cost,
  zero delay.

All three share one interface so tuners can be parameterized by strategy.
The same three mechanisms also carry *named-policy switches* (tiering ↔
leveling ↔ lazy-leveling, :mod:`repro.lsm.policy`): a named switch is a
per-level ``K`` reassignment, so it inherits each strategy's cost model —
free-and-immediate under flexible, the bounded-migration forced-merge cost
under greedy, free-but-deferred under lazy. :func:`switch_named_policy`
measures the immediate simulated cost of one such switch.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import TransitionKind
from repro.lsm.policy import PolicyLike
from repro.lsm.tree import LSMTree


class TransitionStrategy:
    """Applies policy changes to a tree. Subclasses pick the mechanism."""

    kind: TransitionKind

    def apply(self, tree: LSMTree, level_no: int, new_policy: int) -> None:
        """Move ``level_no`` of ``tree`` to ``new_policy``."""
        tree.set_policy(level_no, new_policy, self.kind)

    def apply_all(self, tree: LSMTree, new_policies: Sequence[int]) -> None:
        """Move levels ``1..len(new_policies)`` to the given policies."""
        tree.set_policies(list(new_policies), self.kind)

    def apply_named(self, tree: LSMTree, policy: PolicyLike) -> None:
        """Pin ``tree`` to a named compaction policy via this mechanism."""
        tree.set_named_policy(policy, self.kind)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GreedyTransition(TransitionStrategy):
    """Flush-then-rebuild transition; costly but immediate."""

    kind = TransitionKind.GREEDY


class LazyTransition(TransitionStrategy):
    """Deferred transition; free but slow to take effect."""

    kind = TransitionKind.LAZY


class FlexibleTransition(TransitionStrategy):
    """The FLSM-tree transition; free and immediate."""

    kind = TransitionKind.FLEXIBLE


def switch_named_policy(
    tree: LSMTree, policy: PolicyLike, kind: TransitionKind
) -> float:
    """Switch ``tree`` to a named policy; returns the immediate simulated
    cost in seconds (0.0 for flexible and lazy; the forced-merge migration
    cost for greedy)."""
    before = tree.clock.now
    tree.set_named_policy(policy, kind)
    return tree.clock.now - before


def make_transition(kind: TransitionKind) -> TransitionStrategy:
    """Instantiate the strategy for ``kind``."""
    strategies = {
        TransitionKind.GREEDY: GreedyTransition,
        TransitionKind.LAZY: LazyTransition,
        TransitionKind.FLEXIBLE: FlexibleTransition,
    }
    return strategies[kind]()
