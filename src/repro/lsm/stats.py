"""Statistics collection for the simulated store.

The paper's RusKey "maintains a statistics collector that keeps track of
necessary statistics ... Besides overall statistics of the FLSM-tree, it
tracks statistics separately for each FLSM-tree level to support the
level-based training scheme in Lerp. It also collects the operation
composition in each mission for detecting changes in the application
workload." (Section 3.)

:class:`StatsCollector` is that component: it attributes every simulated
cost to a level and an operation class, and cuts the stream into per-mission
:class:`MissionStats` records that feed both the RL reward and the benchmark
harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SnapshotError
from repro.storage.pager import IOCounters

#: Pseudo-level used for costs not attributable to a disk level (memtable).
BUFFER_LEVEL = 0


@dataclass
class MissionStats:
    """Everything measured during one mission (a batch of operations)."""

    index: int
    n_lookups: int = 0
    n_updates: int = 0
    n_ranges: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    level_read_time: Dict[int, float] = field(default_factory=dict)
    level_write_time: Dict[int, float] = field(default_factory=dict)
    io: IOCounters = field(default_factory=IOCounters)
    sim_duration: float = 0.0
    model_update_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Host wall-clock seconds the window *spanned* (measurement, not
    #: simulation — excluded from snapshots like ``model_update_time``).
    #: For a record merged across shards this is the **max** over the
    #: per-shard windows: shard windows are opened and closed together, so
    #: they are concurrent in wall time and the span is the widest one.
    wall_duration: float = 0.0
    #: Host wall-clock seconds *summed* over the merged parts (equals
    #: ``wall_duration`` for a leaf window). This is the total thread-time
    #: denominator — use it for per-shard cost accounting; use
    #: :attr:`wall_duration_max` for elapsed-time throughput.
    wall_duration_sum: float = 0.0

    @property
    def wall_duration_max(self) -> float:
        """Explicit alias for the merge semantics of :attr:`wall_duration`
        (max over concurrent per-shard windows; the window span)."""
        return self.wall_duration

    @property
    def n_operations(self) -> int:
        return self.n_lookups + self.n_updates + self.n_ranges

    @property
    def ops_per_second(self) -> float:
        """Wall-clock throughput of the window: operations per host
        second (0.0 when the window spanned no measurable wall time).
        This is the shared metrics vocabulary between the offline harness
        and the serving layer — both report per-window ops/s from here.

        Uses :attr:`wall_duration_max` (the elapsed window span), not
        :attr:`wall_duration_sum`: per-shard windows are concurrent, so
        dividing by summed thread-time would under-report throughput by
        roughly the shard count."""
        wall = self.wall_duration_max
        return self.n_operations / wall if wall else 0.0

    @property
    def sim_ops_per_second(self) -> float:
        """Simulated throughput: operations per simulated second."""
        return self.n_operations / self.sim_duration if self.sim_duration else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Block-cache hit fraction during the mission (0.0 with no traffic)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def lookup_fraction(self) -> float:
        """Fraction of point+range lookups in the mission (paper's γ)."""
        ops = self.n_operations
        if ops == 0:
            return 0.0
        return (self.n_lookups + self.n_ranges) / ops

    @property
    def total_time(self) -> float:
        return self.read_time + self.write_time

    @property
    def latency_per_op(self) -> float:
        """Mean simulated latency per operation in seconds."""
        ops = self.n_operations
        return self.total_time / ops if ops else 0.0

    def level_time(self, level_no: int) -> float:
        """Total (read + write) simulated time attributed to ``level_no``."""
        return self.level_read_time.get(level_no, 0.0) + self.level_write_time.get(
            level_no, 0.0
        )

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of one mission record.

        ``wall_duration`` / ``wall_duration_sum`` are deliberately *not*
        serialized: like ``model_update_time`` they measure host
        wall-clock, which cannot be bit-exact across a save/restore
        boundary — restored records report 0.0 (see the bit-exact-resume
        invariant, DESIGN.md §6).
        """
        return {
            "index": self.index,
            "n_lookups": self.n_lookups,
            "n_updates": self.n_updates,
            "n_ranges": self.n_ranges,
            "read_time": self.read_time,
            "write_time": self.write_time,
            "level_read_time": dict(self.level_read_time),
            "level_write_time": dict(self.level_write_time),
            "io": self.io.state_dict(),
            "sim_duration": self.sim_duration,
            "model_update_time": self.model_update_time,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, object]) -> "MissionStats":
        io = IOCounters()
        io.load_state_dict(state["io"])
        return cls(
            index=int(state["index"]),
            n_lookups=int(state["n_lookups"]),
            n_updates=int(state["n_updates"]),
            n_ranges=int(state["n_ranges"]),
            read_time=float(state["read_time"]),
            write_time=float(state["write_time"]),
            level_read_time={
                int(k): float(v) for k, v in state["level_read_time"].items()
            },
            level_write_time={
                int(k): float(v) for k, v in state["level_write_time"].items()
            },
            io=io,
            sim_duration=float(state["sim_duration"]),
            model_update_time=float(state["model_update_time"]),
            cache_hits=int(state["cache_hits"]),
            cache_misses=int(state["cache_misses"]),
        )


class StatsCollector:
    """Attributes simulated costs to levels and mission windows."""

    def __init__(self) -> None:
        self._mission_index = 0
        self._current: Optional[MissionStats] = None
        self.completed: List[MissionStats] = []
        # Cumulative, across all missions.
        self.total_read_time = 0.0
        self.total_write_time = 0.0
        self.total_lookups = 0
        self.total_updates = 0
        self.total_ranges = 0
        self.level_read_time: Dict[int, float] = {}
        self.level_write_time: Dict[int, float] = {}
        self._io_snapshot: Optional[IOCounters] = None
        self._clock_snapshot: float = 0.0
        self._cache_snapshot: "tuple[int, int]" = (0, 0)
        self._wall_snapshot: float = 0.0

    # ------------------------------------------------------------------
    # Mission windows
    # ------------------------------------------------------------------
    @property
    def in_mission(self) -> bool:
        return self._current is not None

    def begin_mission(
        self,
        io: IOCounters,
        clock_now: float,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        """Open a mission window; one must not already be open.

        ``cache_hits``/``cache_misses`` are the engine's cumulative
        block-cache counters at window start (0 for engines without a cache).
        """
        if self._current is not None:
            raise RuntimeError("a mission is already in progress")
        self._current = MissionStats(index=self._mission_index)
        self._io_snapshot = io.snapshot()
        self._clock_snapshot = clock_now
        self._cache_snapshot = (int(cache_hits), int(cache_misses))
        # repro: allow[SIM-PURITY] wall_duration is host-wall telemetry only;
        # it never feeds back into SimClock, IO charges, or RL state, and is
        # excluded from snapshots (MissionStats serialization drops it).
        self._wall_snapshot = time.perf_counter()

    def end_mission(
        self,
        io: IOCounters,
        clock_now: float,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> MissionStats:
        """Close the current mission window and return its stats."""
        if self._current is None:
            raise RuntimeError("no mission in progress")
        mission = self._current
        assert self._io_snapshot is not None
        mission.io = io.diff(self._io_snapshot)
        mission.sim_duration = clock_now - self._clock_snapshot
        mission.cache_hits = int(cache_hits) - self._cache_snapshot[0]
        mission.cache_misses = int(cache_misses) - self._cache_snapshot[1]
        # repro: allow[SIM-PURITY] closing half of the wall-telemetry pair
        # opened in begin_mission; reporting-only, outside the sim state.
        mission.wall_duration = time.perf_counter() - self._wall_snapshot
        mission.wall_duration_sum = mission.wall_duration
        self.completed.append(mission)
        self._mission_index += 1
        self._current = None
        self._io_snapshot = None
        return mission

    # ------------------------------------------------------------------
    # Cost attribution (called by the tree)
    # ------------------------------------------------------------------
    def add_read(self, level_no: int, seconds: float) -> None:
        """Attribute lookup-path time to ``level_no``."""
        self.total_read_time += seconds
        self.level_read_time[level_no] = (
            self.level_read_time.get(level_no, 0.0) + seconds
        )
        if self._current is not None:
            self._current.read_time += seconds
            self._current.level_read_time[level_no] = (
                self._current.level_read_time.get(level_no, 0.0) + seconds
            )

    def add_write(self, level_no: int, seconds: float) -> None:
        """Attribute write-path (flush/compaction) time to ``level_no``."""
        self.total_write_time += seconds
        self.level_write_time[level_no] = (
            self.level_write_time.get(level_no, 0.0) + seconds
        )
        if self._current is not None:
            self._current.write_time += seconds
            self._current.level_write_time[level_no] = (
                self._current.level_write_time.get(level_no, 0.0) + seconds
            )

    def count_lookup(self, n: int = 1) -> None:
        self.total_lookups += n
        if self._current is not None:
            self._current.n_lookups += n

    def count_update(self, n: int = 1) -> None:
        self.total_updates += n
        if self._current is not None:
            self._current.n_updates += n

    def count_range(self, n: int = 1) -> None:
        self.total_ranges += n
        if self._current is not None:
            self._current.n_ranges += n

    def add_model_update_time(self, seconds: float) -> None:
        """Record tuning-model (RL) update time for the current mission
        (paper Figure 13 measures this against LSM operation time)."""
        if self._current is not None:
            self._current.model_update_time += seconds

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        return self.total_read_time + self.total_write_time

    @property
    def total_operations(self) -> int:
        return self.total_lookups + self.total_updates + self.total_ranges

    def level_time(self, level_no: int) -> float:
        return self.level_read_time.get(level_no, 0.0) + self.level_write_time.get(
            level_no, 0.0
        )

    def recent_missions(self, n: int) -> List[MissionStats]:
        """The last ``n`` completed missions (fewer if not yet available)."""
        if n <= 0:
            return []
        return self.completed[-n:]

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the collector.

        Snapshots are only valid between missions: an open window holds a
        reference to live engine counters that cannot be restored into a
        fresh process.
        """
        if self._current is not None:
            raise SnapshotError(
                "cannot snapshot a StatsCollector mid-mission; "
                "close the window first"
            )
        return {
            "mission_index": self._mission_index,
            "completed": [m.state_dict() for m in self.completed],
            "total_read_time": self.total_read_time,
            "total_write_time": self.total_write_time,
            "total_lookups": self.total_lookups,
            "total_updates": self.total_updates,
            "total_ranges": self.total_ranges,
            "level_read_time": dict(self.level_read_time),
            "level_write_time": dict(self.level_write_time),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the collector in place (aggregated views keep their
        reference to this object)."""
        self._mission_index = int(state["mission_index"])
        self._current = None
        self._io_snapshot = None
        self._clock_snapshot = 0.0
        self._cache_snapshot = (0, 0)
        self._wall_snapshot = 0.0
        self.completed = [
            MissionStats.from_state_dict(m) for m in state["completed"]
        ]
        self.total_read_time = float(state["total_read_time"])
        self.total_write_time = float(state["total_write_time"])
        self.total_lookups = int(state["total_lookups"])
        self.total_updates = int(state["total_updates"])
        self.total_ranges = int(state["total_ranges"])
        self.level_read_time = {
            int(k): float(v) for k, v in state["level_read_time"].items()
        }
        self.level_write_time = {
            int(k): float(v) for k, v in state["level_write_time"].items()
        }
