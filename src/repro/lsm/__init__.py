"""The LSM/FLSM-tree storage engine."""

from repro.lsm.entry import TOMBSTONE, Entry, merge_sorted_sources
from repro.lsm.flsm import FLSMTree
from repro.lsm.iterators import iter_live_items, live_items
from repro.lsm.level import Level
from repro.lsm.memtable import MemTable
from repro.lsm.policy import (
    POLICY_NAMES,
    CompactionPolicy,
    LazyLevelingPolicy,
    LevelingPolicy,
    TieringPolicy,
    classify_policies,
    named_policies,
    policy_from_index,
    policy_index,
    resolve_policy,
)
from repro.lsm.run import SortedRun
from repro.lsm.stats import BUFFER_LEVEL, MissionStats, StatsCollector
from repro.lsm.transitions import (
    FlexibleTransition,
    GreedyTransition,
    LazyTransition,
    TransitionStrategy,
    make_transition,
    switch_named_policy,
)
from repro.lsm.tree import LSMTree

__all__ = [
    "TOMBSTONE",
    "Entry",
    "merge_sorted_sources",
    "MemTable",
    "SortedRun",
    "Level",
    "LSMTree",
    "FLSMTree",
    "StatsCollector",
    "MissionStats",
    "BUFFER_LEVEL",
    "TransitionStrategy",
    "GreedyTransition",
    "LazyTransition",
    "FlexibleTransition",
    "make_transition",
    "switch_named_policy",
    "CompactionPolicy",
    "LevelingPolicy",
    "TieringPolicy",
    "LazyLevelingPolicy",
    "POLICY_NAMES",
    "named_policies",
    "resolve_policy",
    "policy_index",
    "policy_from_index",
    "classify_policies",
    "live_items",
    "iter_live_items",
]
