"""Merging iteration over the whole tree.

Used by verification utilities and examples to view the live contents of an
LSM-tree as a single sorted stream, without charging simulated I/O (it is an
in-memory debugging view, not a database scan — use
:meth:`LSMTree.range_lookup` for cost-accounted scans).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.lsm.entry import TOMBSTONE, merge_sorted_sources
from repro.lsm.tree import LSMTree


def live_items(tree: LSMTree) -> "Tuple[np.ndarray, np.ndarray]":
    """All live ``(keys, values)`` of ``tree``, sorted by key.

    Tombstoned keys are excluded. No simulated cost is charged.
    """
    key_arrays = []
    value_arrays = []
    for level in reversed(tree.levels):  # deepest (oldest) first
        for run in level.runs:  # oldest → newest within the level
            if run.n_entries:
                key_arrays.append(run.keys)
                value_arrays.append(run.values)
    mk, mv = tree.memtable.sorted_view()
    if len(mk):
        key_arrays.append(mk)
        value_arrays.append(mv)
    return merge_sorted_sources(key_arrays, value_arrays, drop_tombstones=True)


def iter_live_items(tree: LSMTree) -> Iterator[Tuple[int, int]]:
    """Iterate live ``(key, value)`` pairs of ``tree`` in key order."""
    keys, values = live_items(tree)
    for key, value in zip(keys.tolist(), values.tolist()):
        if value != TOMBSTONE:
            yield key, value
