"""Key-value entry conventions for the simulated store.

Keys and values are signed 64-bit integers. Real byte payloads are not
stored — the logical entry size ``E`` (``SystemConfig.entry_bytes``) drives
all capacity and I/O math, exactly as in the paper's analysis where only
``E``, ``B`` and counts matter. Deletions are encoded as a tombstone value.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

#: Reserved value marking a deleted key. User values must not equal this.
TOMBSTONE: int = np.iinfo(np.int64).min

#: Smallest and largest keys usable by applications.
MIN_KEY: int = np.iinfo(np.int64).min
MAX_KEY: int = np.iinfo(np.int64).max


class Entry(NamedTuple):
    """A single key-value pair as surfaced by scans."""

    key: int
    value: int

    @property
    def is_tombstone(self) -> bool:
        return self.value == TOMBSTONE


def validate_value(value: int) -> int:
    """Reject user values that collide with the tombstone sentinel."""
    value = int(value)
    if value == TOMBSTONE:
        raise ValueError(
            "value collides with the tombstone sentinel; "
            f"use a value other than {TOMBSTONE}"
        )
    return value


def merge_sorted_sources(
    key_arrays: "list[np.ndarray]",
    value_arrays: "list[np.ndarray]",
    drop_tombstones: bool = False,
) -> "tuple[np.ndarray, np.ndarray]":
    """Merge sorted key/value arrays, newest-wins, ordered oldest → newest.

    ``key_arrays[j]`` must be sorted and duplicate-free; arrays later in the
    list take precedence for duplicate keys (they are "newer"). When
    ``drop_tombstones`` is true (merging into the bottom level of the tree),
    deleted keys are removed from the output entirely.

    Returns ``(keys, values)`` sorted by key with unique keys.
    """
    if len(key_arrays) != len(value_arrays):
        raise ValueError("key_arrays and value_arrays must have equal length")
    non_empty = [
        (k, v) for k, v in zip(key_arrays, value_arrays) if len(k) > 0
    ]
    if not non_empty:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    keys = np.concatenate([k for k, _ in non_empty]).astype(np.int64, copy=False)
    values = np.concatenate([v for _, v in non_empty]).astype(np.int64, copy=False)
    # Stable sort keeps the concatenation order within equal keys, so the
    # newest version of each key ends up last in its group.
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]
    keep = np.empty(len(keys), dtype=bool)
    keep[:-1] = keys[1:] != keys[:-1]
    keep[-1] = True
    keys = keys[keep]
    values = values[keep]
    if drop_tombstones:
        alive = values != TOMBSTONE
        keys = keys[alive]
        values = values[alive]
    return keys, values
