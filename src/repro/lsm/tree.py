"""The LSM-tree engine.

:class:`LSMTree` implements the full storage engine of the reproduction:
memtable, levels of sorted runs, Bloom-filtered lookups, fence-pointer page
reads, level-granularity compaction (the granularity used throughout the
paper's analysis and its Figure 10 micro-benchmark), range scans, and
per-level compaction policies ``K_i ∈ [1, T]`` in the style of Dostoevsky.

The same engine serves both the classic tree and the FLSM-tree: structurally
an FLSM-tree is an LSM-tree whose levels tolerate differently sized sealed
runs, which this engine always supports. What distinguishes the designs is
*how policy transitions are applied* — see :mod:`repro.lsm.transitions` and
the :class:`repro.lsm.flsm.FLSMTree` facade.

Cost attribution rule (see DESIGN.md §5): all I/O of a compaction that
writes into level *i* is charged to level *i* as write time; lookup probes
are charged to the level probed as read time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bloom.allocation import allocate_fprs
from repro.config import SystemConfig, TransitionKind
from repro.errors import (
    KeyNotFoundError,
    PolicyError,
    SnapshotError,
    TreeStateError,
)
from repro.lsm.entry import TOMBSTONE, merge_sorted_sources, validate_value
from repro.lsm.level import Level
from repro.lsm.memtable import MemTable
from repro.lsm.policy import CompactionPolicy, PolicyLike, resolve_policy
from repro.lsm.rangepath import scan_batch
from repro.lsm.readpath import ReadPathProfiler, perf_counter
from repro.lsm.run import SortedRun
from repro.lsm.stats import MissionStats, StatsCollector
from repro.storage.cache import LRUBlockCache
from repro.storage.clock import SimClock
from repro.storage.pager import DiskModel, IOCounters


class LSMTree:
    """A simulated LSM-tree key-value store with per-level policies."""

    # Injected observers (profiler / tracer / change feed) are wiring owned
    # by the embedding layer and re-attached after load, never snapshotted.
    _snapshot_exempt = frozenset({"read_profiler", "tracer", "change_observer"})

    def __init__(
        self,
        config: SystemConfig,
        clock: Optional[SimClock] = None,
        stats: Optional[StatsCollector] = None,
        profile: bool = False,
    ) -> None:
        self.config = config
        #: Per-stage wall timers for the batch read path (``profile=True``).
        #: Host-clock instrumentation only — simulated results are identical
        #: with profiling on or off (see :mod:`repro.lsm.readpath`).
        self.read_profiler: Optional[ReadPathProfiler] = (
            ReadPathProfiler() if profile else None
        )
        #: Optional :class:`repro.obs.trace.Tracer` wrapping the batch
        #: entry points in wall-clock spans (attach via :meth:`set_tracer`).
        #: Same contract as the profiler: host-clock only, zero simulated
        #: impact, one ``is None`` test per batch when disabled.
        self.tracer = None
        #: Optional structure-change observer (attach via
        #: :meth:`set_change_observer`). Notified synchronously whenever a
        #: run is installed into or dropped from a level and when a
        #: memtable flush (including its compaction cascade) completes.
        #: The durable backend uses these hooks to mirror the in-memory
        #: structure into SSTable files and manifest edits; like the
        #: tracer, an observer must never touch simulated state (zero
        #: sim impact, one ``is None`` test per mutation when disabled).
        self.change_observer = None
        self.clock = clock if clock is not None else SimClock()
        self.stats = stats if stats is not None else StatsCollector()
        self.cache = LRUBlockCache(config.block_cache_pages)
        self.disk = DiskModel(config.costs, self.clock, self.cache)
        self.memtable = MemTable(config.buffer_capacity_entries)
        self.levels: List[Level] = []
        self._rng = np.random.default_rng(config.seed)
        self._next_run_id = 0
        #: Current Bloom budget; adjustable at runtime (paper §7 names
        #: Bloom memory allocation as a future tuning dimension).
        self.bits_per_key = float(config.bits_per_key)
        self._fpr_depth = 0  # depth the cached FPR allocation was computed for
        #: Named compaction policy the tree is pinned to, or ``None`` when
        #: levels are governed by raw per-level ``K`` values only. A pinned
        #: policy is re-applied whenever the tree grows a level (see
        #: :mod:`repro.lsm.policy`); any explicit per-level
        #: :meth:`set_policy` drops the pin.
        self.compaction_policy: Optional[CompactionPolicy] = None

    def set_tracer(self, tracer) -> None:
        """Attach (or detach with ``None``) a span tracer to the batch
        read/write entry points. ``ReadPathProfiler`` stage timers, when
        profiling is on, are absorbed as synthetic child spans."""
        self.tracer = tracer

    def set_change_observer(self, observer) -> None:
        """Attach (or detach with ``None``) a structure-change observer.

        The observer receives ``run_installed(level_no, run,
        replaced_run_id)``, ``runs_dropped(level_no, run_ids)`` and
        ``flush_completed()`` callbacks, invoked synchronously at the
        mutation sites. Observers are wall-clock-side only and must not
        mutate the tree or charge simulated costs.
        """
        self.change_observer = observer

    def _profile_snapshot(self) -> Optional[Dict[str, float]]:
        """Per-stage profiler totals before a traced call (None when
        profiling is off)."""
        prof = self.read_profiler
        return None if prof is None else dict(prof.seconds)

    def _absorb_profile(self, tracer, span, before) -> None:
        """Emit each profiler stage's delta across the traced call as a
        synthetic ``stage.<name>`` child span."""
        prof = self.read_profiler
        if prof is None or before is None:
            return
        for stage, total in prof.seconds.items():
            delta = total - before[stage]
            if delta > 0.0:
                tracer.add_child(span, f"stage.{stage}", delta)

    # ------------------------------------------------------------------
    # Structure management
    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def level(self, level_no: int) -> Level:
        """The :class:`Level` object for 1-based ``level_no``."""
        if not 1 <= level_no <= len(self.levels):
            raise TreeStateError(
                f"level {level_no} does not exist (tree has {len(self.levels)})"
            )
        return self.levels[level_no - 1]

    def policies(self) -> List[int]:
        """Current compaction policy of each level, shallow to deep."""
        return [level.policy for level in self.levels]

    @property
    def total_entries(self) -> int:
        return len(self.memtable) + sum(l.data_entries for l in self.levels)

    def _refresh_fprs(self) -> None:
        """Recompute per-level FPRs when the tree grows a level.

        Existing runs keep the filter they were built with (as a real system
        would until the next compaction rebuilds them); new runs pick up the
        refreshed allocation.
        """
        depth = len(self.levels)
        if depth == 0 or depth == self._fpr_depth:
            return
        fprs = allocate_fprs(
            self.config.bloom_scheme,
            self.bits_per_key,
            depth,
            self.config.size_ratio,
        )
        for level, fpr in zip(self.levels, fprs):
            level.fpr = fpr
        self._fpr_depth = depth

    def set_bits_per_key(self, bits_per_key: float) -> None:
        """Change the Bloom filter budget at runtime.

        Existing runs keep the filters they were built with (a real system
        rebuilds filters at the next compaction); new runs use the refreshed
        per-level FPR allocation immediately.
        """
        if bits_per_key <= 0:
            raise TreeStateError(
                f"bits_per_key must be > 0, got {bits_per_key}"
            )
        self.bits_per_key = float(bits_per_key)
        self._fpr_depth = 0  # force re-allocation at the current depth
        self._refresh_fprs()

    def _ensure_level(self, level_no: int) -> Level:
        """Create levels up to ``level_no`` (with the initial policy) if the
        tree is not yet that deep."""
        grew = False
        while len(self.levels) < level_no:
            next_no = len(self.levels) + 1
            self.levels.append(
                Level(
                    level_no=next_no,
                    capacity_entries=self.config.level_capacity_entries(next_no),
                    policy=self.config.initial_policy,
                    fpr=1.0,  # refreshed below
                    max_policy=self.config.size_ratio,
                )
            )
            grew = True
        if grew:
            self._refresh_fprs()
            self._apply_pinned_policy()
        return self.levels[level_no - 1]

    def _apply_pinned_policy(self) -> None:
        """Re-align per-level policies with the pinned named policy.

        Invoked after the tree grows a level (under lazy-leveling the old
        bottom flips from leveling to tiering when a new bottom appears) and
        after a greedy policy switch whose forced merges cascaded into a new
        bottom level. Alignment uses flexible semantics — only active-run
        capacities change, so no data moves and no simulated time is
        charged. Policies queued by a lazy switch are *retargeted* to the
        pinned assignment rather than eagerly applied.
        """
        pinned = self.compaction_policy
        if pinned is None or not self.levels:
            return
        assignments = pinned.assignments(
            len(self.levels), self.config.size_ratio
        )
        for level, want in zip(self.levels, assignments):
            if level.pending_policy is not None:
                if level.pending_policy != want:
                    level.pending_policy = (
                        want if level.policy != want else None
                    )
                continue
            if level.policy != want:
                level.set_policy_flexible(want)

    def _new_run(
        self,
        level: Level,
        keys: np.ndarray,
        values: np.ndarray,
        capacity_entries: int,
        sealed: bool = False,
    ) -> SortedRun:
        run = SortedRun(
            run_id=self._next_run_id,
            level_no=level.level_no,
            keys=keys,
            values=values,
            fpr=level.fpr,
            capacity_entries=capacity_entries,
            entries_per_page=self.config.entries_per_page,
            bloom_mode=self.config.bloom_mode,
            rng=self._rng,
            sealed=sealed,
        )
        self._next_run_id += 1
        return run

    # ------------------------------------------------------------------
    # Public write path
    # ------------------------------------------------------------------
    def put(self, key: int, value: int) -> None:
        """Insert or overwrite a key-value entry."""
        validate_value(value)
        self.stats.count_update()
        self.memtable.put(key, value)
        if self.memtable.is_full:
            self._flush()

    def delete(self, key: int) -> None:
        """Delete a key (by writing a tombstone)."""
        self.stats.count_update()
        self.memtable.delete(key)
        if self.memtable.is_full:
            self._flush()

    def put_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Vectorized insert of many entries, in order.

        Semantically identical to ``for k, v in zip(keys, values): put(k, v)``
        — same newest-wins overwrites, same flush boundaries, same cost
        charging — but validation is vectorized and the memtable is filled
        by bulk inserts with one flush check per (remaining) batch instead
        of per key.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        n = len(keys)
        if n == 0:
            return
        if (values == TOMBSTONE).any():
            raise ValueError(
                "value collides with the tombstone sentinel; "
                f"use a value other than {TOMBSTONE}"
            )
        self.stats.count_update(n)
        tracer = self.tracer
        if tracer is None:
            self._put_batch_impl(keys, values, n)
            return
        with tracer.span("lsm.put_batch", n_keys=n):
            self._put_batch_impl(keys, values, n)

    def _put_batch_impl(
        self, keys: np.ndarray, values: np.ndarray, n: int
    ) -> None:
        start = 0
        while start < n:
            start += self.memtable.put_batch(keys[start:], values[start:])
            if self.memtable.is_full:
                self._flush()

    def _flush(self) -> None:
        """Drain the memtable into Level 1's active run."""
        keys, values = self.memtable.drain_sorted()
        if len(keys) == 0:
            return
        self._admit(1, [(keys, values)], source_pages=0)
        observer = self.change_observer
        if observer is not None:
            observer.flush_completed()

    def _admit(
        self,
        level_no: int,
        sources: Sequence[Tuple[np.ndarray, np.ndarray]],
        source_pages: int,
    ) -> None:
        """Merge ``sources`` (oldest → newest) into ``level_no``'s active run.

        ``source_pages`` is how many pages the incoming data occupies on disk
        (0 for a memtable flush, which arrives from memory). All compaction
        I/O and CPU is charged to ``level_no`` as write time.
        """
        level = self._ensure_level(level_no)
        active = level.active_run
        merge_inputs: List[Tuple[np.ndarray, np.ndarray]] = []
        read_pages = source_pages
        n_input_entries = sum(len(k) for k, _ in sources)
        if active is not None:
            merge_inputs.append((active.keys, active.values))
            read_pages += active.n_pages
            n_input_entries += active.n_entries
        merge_inputs.extend(sources)

        # A tombstone may only be dropped when the merge output covers every
        # older copy of its key: all deeper levels must be empty AND this
        # level must hold no sealed runs outside the merge (under tiering /
        # lazy-leveling the bottom level stacks sealed runs, and a key
        # deleted there would resurrect if its tombstone were dropped from
        # the active-run merge).
        levels_below = self.levels[level_no:]
        is_bottom = all(l.is_empty for l in levels_below)
        covers_level = not level.sealed_runs
        keys, values = merge_sorted_sources(
            [k for k, _ in merge_inputs],
            [v for _, v in merge_inputs],
            drop_tombstones=is_bottom and covers_level,
        )

        cost = self.disk.sequential_read(read_pages)
        cost += self.disk.compaction_cpu(n_input_entries)
        cost += self.disk.sequential_write(self.config.pages_for_entries(len(keys)))
        self.stats.add_write(level_no, cost)

        new_run = self._new_run(
            level, keys, values, capacity_entries=level.active_run_capacity()
        )
        replaced = level.replace_active(new_run)
        if replaced is not None:
            self.disk.drop_run(replaced.run_id)
        observer = self.change_observer
        if observer is not None:
            observer.run_installed(
                level_no, new_run, None if replaced is None else replaced.run_id
            )

        if level.is_full:
            self._merge_level_down(level_no)

    def _merge_level_down(self, level_no: int) -> None:
        """Merge *all* runs of ``level_no`` into level ``level_no + 1``.

        Triggered when a level reaches its capacity (paper Section 2: "All
        entries in a level are eventually merged and flushed down to the next
        level when the level reaches its capacity"), and by the greedy
        transition via :meth:`force_merge_level`.
        """
        level = self.level(level_no)
        if level.is_empty:
            level.drop_all_runs()  # still applies a pending lazy policy
            return
        runs = list(level.runs)  # oldest → newest
        total_pages = sum(run.n_pages for run in runs)
        sources = [(run.keys, run.values) for run in runs]
        dropped = level.drop_all_runs()
        for run in dropped:
            self.disk.drop_run(run.run_id)
        observer = self.change_observer
        if observer is not None:
            observer.runs_dropped(level_no, [run.run_id for run in dropped])
        self._admit(level_no + 1, sources, source_pages=total_pages)

    def force_merge_level(self, level_no: int) -> None:
        """Immediately flush all data of ``level_no`` into the next level
        (the greedy transition's data movement)."""
        self._merge_level_down(level_no)

    def rebuild_level_in_place(self, level_no: int) -> None:
        """Rewrite all of ``level_no``'s data as one fresh run at the same
        level (the greedy transition's rebuild for the *bottom* level:
        merging the deepest level "into the next level" would grow the tree
        and artificially defer its compactions, which no real system does
        for a policy change)."""
        level = self.level(level_no)
        if level.is_empty:
            level.drop_all_runs()
            return
        runs = list(level.runs)
        total_pages = sum(run.n_pages for run in runs)
        n_entries = level.data_entries
        sources = [(run.keys, run.values) for run in runs]
        is_bottom = all(l.is_empty for l in self.levels[level_no:])
        keys, values = merge_sorted_sources(
            [k for k, _ in sources],
            [v for _, v in sources],
            drop_tombstones=is_bottom,
        )
        cost = self.disk.sequential_read(total_pages)
        cost += self.disk.compaction_cpu(n_entries)
        cost += self.disk.sequential_write(self.config.pages_for_entries(len(keys)))
        self.stats.add_write(level_no, cost)
        dropped = level.drop_all_runs()
        for run in dropped:
            self.disk.drop_run(run.run_id)
        observer = self.change_observer
        if observer is not None:
            observer.runs_dropped(level_no, [run.run_id for run in dropped])
        rebuilt = self._new_run(
            level, keys, values, capacity_entries=level.active_run_capacity()
        )
        level.replace_active(rebuilt)
        if observer is not None:
            observer.run_installed(level_no, rebuilt, None)

    # ------------------------------------------------------------------
    # Public read path
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[int]:
        """Latest value for ``key``, or ``None`` if absent or deleted."""
        self.stats.count_lookup()
        key = int(key)
        buffered = self.memtable.get(key)
        if buffered is not None:
            return None if buffered == TOMBSTONE else buffered
        for level in self.levels:
            for run in reversed(level.runs):  # newest first within a level
                probe_cost = self.disk.probe_cpu(1)
                self.stats.add_read(level.level_no, probe_cost)
                if not run.bloom_positive(key):
                    continue
                found, value, page = run.find(key)
                io_cost = self.disk.random_read(run.run_id, page)
                self.stats.add_read(level.level_no, io_cost)
                if found:
                    return None if value == TOMBSTONE else value
        return None

    def get_strict(self, key: int) -> int:
        """Like :meth:`get` but raises :class:`KeyNotFoundError` on a miss."""
        value = self.get(key)
        if value is None:
            raise KeyNotFoundError(int(key))
        return value

    def get_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized point lookups, one stacked numpy pass per level.

        Returns ``(found_mask, values)`` aligned with ``keys``. Semantically
        equivalent to calling :meth:`get` per key against the same tree
        state, and **bit-identical** to the run-at-a-time reference
        (:func:`repro.lsm.readpath.reference_get_batch`) in every simulated
        observable: probe order (newest run first), ``probe_cpu``/page-read
        charges per run, Bloom RNG consumption, cache state.

        Pipeline: the memtable resolves buffered keys (returning early when
        the working set is read-hot enough to live in the buffer + shallow
        levels); each level then consults its cached
        :class:`~repro.lsm.level.LevelLookupIndex` to compute every key's
        probe schedule across *all* runs of the level in one binary search,
        leaving only O(pending) mask work, the per-run Bloom draw, and page
        charging in the per-run loop.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = len(keys)
        self.stats.count_lookup(n)
        tracer = self.tracer
        if tracer is None:
            return self._get_batch_impl(keys, n)
        before = self._profile_snapshot()
        with tracer.span("lsm.get_batch", n_keys=n) as span:
            result = self._get_batch_impl(keys, n)
            self._absorb_profile(tracer, span, before)
        return result

    def _get_batch_impl(
        self, keys: np.ndarray, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        prof = self.read_profiler
        if prof is not None:
            prof.note_batch(n)
            t0 = perf_counter()
        resolved, buffered_values = self.memtable.get_batch(keys)
        found = resolved & (buffered_values != TOMBSTONE)
        values = np.where(found, buffered_values, 0)
        if prof is not None:
            prof.add("memtable", perf_counter() - t0)
        if resolved.all():
            # Memtable fast path: the whole batch was buffered.
            return found, values

        pending = np.flatnonzero(~resolved)
        for level in self.levels:
            pending = self._level_lookup_batch(
                level, keys, pending, resolved, found, values, prof
            )
            if len(pending) == 0:
                # Read-hot fast path: shallow levels covered the batch;
                # deeper levels are never touched (and never charged).
                return found, values
        return found, values

    def _level_lookup_batch(
        self,
        level: Level,
        keys: np.ndarray,
        pending: np.ndarray,
        resolved: np.ndarray,
        found: np.ndarray,
        values: np.ndarray,
        prof: Optional[ReadPathProfiler],
    ) -> np.ndarray:
        """Probe one level for ``keys[pending]``; returns the new pending set.

        ``resolved``/``found``/``values`` are updated in place. Cost
        charging follows the sequential contract: each run is charged
        ``probe_cpu`` for the keys still pending when it is probed (newest
        run first) and one page read per Bloom positive, exactly as the
        run-at-a-time loop would.
        """
        runs = level.runs
        if not runs:
            return pending
        disk = self.disk
        stats = self.stats
        level_no = level.level_no
        pk = keys[pending]

        if len(runs) == 1:
            # Leveling fast path: no stacked index needed for one run.
            run = runs[0]
            probe_cost = disk.probe_cpu(len(pending))
            stats.add_read(level_no, probe_cost)
            if prof is not None:
                t0 = perf_counter()
            positives = run.bloom_positive_batch(pk)
            if prof is not None:
                prof.add("bloom", perf_counter() - t0)
            if not positives.any():
                return pending
            probe_idx = pending[positives]
            if prof is not None:
                t0 = perf_counter()
            hit, hit_values, pages = run.find_batch(pk[positives])
            if prof is not None:
                prof.add("search", perf_counter() - t0)
                t0 = perf_counter()
            io_cost = disk.random_read_batch(run.run_id, pages)
            if prof is not None:
                prof.add("cache", perf_counter() - t0)
            stats.add_read(level_no, io_cost)
            if hit.any():
                hit_idx = probe_idx[hit]
                resolved[hit_idx] = True
                real = hit_values[hit] != TOMBSTONE
                found[hit_idx] = real
                values[hit_idx[real]] = hit_values[hit][real]
                # O(n) pending maintenance: recompute from the resolved
                # mask instead of an O(n log n) np.isin set difference.
                pending = pending[~resolved[pending]]
            return pending

        # Stacked runs (tiering / lazy-leveling): one pass over the level's
        # merged index answers, for every pending key, which run resolves it
        # (rank 0 = newest) — or the sentinel n_runs when the level misses.
        if prof is not None:
            t0 = perf_counter()
        index = level.lookup_index()
        rank, index_values, index_positions = index.newest_ranks(pk)
        if prof is not None:
            prof.add("search", perf_counter() - t0)
        n_runs = len(runs)
        n_pending = len(pending)
        for j in range(n_runs):
            # ``sel`` holds the pending-array indices probed at this run
            # (newest_rank >= j), or None when every key is probed — always
            # the case at rank 0, so the widest iteration skips selection
            # entirely. Integer selection (one flatnonzero) beats repeating
            # boolean masking across the probed/present/positions gathers.
            if j == 0:
                sel = None
                n_j = n_pending
                probed = pk
                present_j = rank == 0
            else:
                mask_j = rank >= j
                n_j = int(np.count_nonzero(mask_j))
                if n_j == 0:
                    break
                sel = np.flatnonzero(mask_j)
                probed = pk[sel]
                present_j = rank[sel] == j
            run = runs[n_runs - 1 - j]  # newest first
            probe_cost = disk.probe_cpu(n_j)
            stats.add_read(level_no, probe_cost)
            if prof is not None:
                t0 = perf_counter()
            positives = run.bloom_positive_batch(probed, present=present_j)
            if prof is not None:
                prof.add("bloom", perf_counter() - t0)
            pos_idx = np.flatnonzero(positives) if sel is None else sel[positives]
            if len(pos_idx) == 0:
                continue
            if prof is not None:
                t0 = perf_counter()
            hit = present_j[positives]
            pages = np.zeros(len(hit), dtype=np.int64)
            entries_per_page = run.entries_per_page
            any_hit = hit.any()
            if any_hit:
                hit_sel = pos_idx[hit]
                pages[hit] = index_positions[hit_sel] // entries_per_page
            false_pos = ~hit
            if false_pos.any() and run.n_entries:
                # Bloom false positives still pay the fence-pointer page a
                # real probe would read; rare, so the per-run binary search
                # only ever sees this residue.
                fp_pos = np.searchsorted(run.keys, pk[pos_idx[false_pos]])
                np.minimum(fp_pos, run.n_entries - 1, out=fp_pos)
                pages[false_pos] = fp_pos // entries_per_page
            if prof is not None:
                prof.add("search", perf_counter() - t0)
                t0 = perf_counter()
            io_cost = disk.random_read_batch(run.run_id, pages)
            if prof is not None:
                prof.add("cache", perf_counter() - t0)
            stats.add_read(level_no, io_cost)
            if any_hit:
                hit_idx = pending[hit_sel]
                hit_values = index_values[hit_sel]
                resolved[hit_idx] = True
                real = hit_values != TOMBSTONE
                found[hit_idx] = real
                values[hit_idx[real]] = hit_values[real]
        # Keys the level does not hold anywhere stay pending; everything
        # else was resolved by its newest containing run above.
        return pending[rank == n_runs]

    def range_lookup(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All live entries with ``lo <= key <= hi`` as ``(key, value)``
        pairs in key order."""
        if lo > hi:
            raise ValueError(f"empty range: lo={lo} > hi={hi}")
        self.stats.count_range()
        keys, values = self.range_scan(lo, hi)
        return list(zip(keys.tolist(), values.tolist()))

    def range_scan(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """The scan behind :meth:`range_lookup`: charges all probe and I/O
        costs but does not count an operation (so a sharded engine can scan
        every shard while counting the range once). Returns sorted live
        ``(keys, values)`` arrays."""
        key_arrays: List[np.ndarray] = []
        value_arrays: List[np.ndarray] = []
        # Oldest sources first so merge_sorted_sources keeps the newest value.
        for level in reversed(self.levels):
            for run in level.runs:  # within a level: oldest → newest
                probe_cost = self.disk.probe_cpu(1)
                self.stats.add_read(level.level_no, probe_cost)
                run_keys, run_values, n_pages = run.range_slice(lo, hi)
                if n_pages:
                    io_cost = self.disk.sequential_read(n_pages)
                    self.stats.add_read(level.level_no, io_cost)
                if len(run_keys):
                    key_arrays.append(run_keys)
                    value_arrays.append(run_values)
        buffered = self.memtable.range_items(lo, hi)
        if buffered:
            mk = np.fromiter(buffered.keys(), dtype=np.int64, count=len(buffered))
            mv = np.fromiter(buffered.values(), dtype=np.int64, count=len(buffered))
            order = np.argsort(mk, kind="stable")
            key_arrays.append(mk[order])
            value_arrays.append(mv[order])
        return merge_sorted_sources(
            key_arrays, value_arrays, drop_tombstones=True
        )

    def range_scan_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`range_lookup` over R inclusive ranges.

        Counts R range operations and charges every probe/IO cost
        **bit-identically** to R per-op scans in submission order (see
        :mod:`repro.lsm.rangepath`), but resolves run segments once per
        run per batch. Returns flat ``(keys, values, offsets)`` arrays:
        range ``i``'s live entries, sorted by key, are
        ``keys[offsets[i]:offsets[i + 1]]``.

        Unlike the per-op loop — which raises on the first inverted range
        *after* charging its predecessors — the whole batch is validated
        up front, so a rejected batch charges nothing.
        """
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        if los.shape != his.shape or los.ndim != 1:
            raise ValueError(
                f"los/his must be 1-d arrays of equal length, got "
                f"{los.shape} vs {his.shape}"
            )
        bad = los > his
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                f"empty range: lo={int(los[i])} > hi={int(his[i])}"
            )
        self.stats.count_range(len(los))
        tracer = self.tracer
        if tracer is None:
            return scan_batch(self, los, his)
        before = self._profile_snapshot()
        with tracer.span("lsm.range_scan_batch", n_ranges=len(los)) as span:
            result = scan_batch(self, los, his)
            self._absorb_profile(tracer, span, before)
        return result

    # ------------------------------------------------------------------
    # Policy control
    # ------------------------------------------------------------------
    def set_policy(
        self, level_no: int, new_policy: int, transition: TransitionKind
    ) -> None:
        """Change the compaction policy of one level using ``transition``.

        An explicit per-level change drops any pinned named policy — the
        caller is taking over per-level control and a pin would silently
        overwrite its choices at the next level growth.
        """
        self.compaction_policy = None
        level = self._ensure_level(level_no)
        if transition is TransitionKind.FLEXIBLE:
            level.set_policy_flexible(new_policy)
        elif transition is TransitionKind.LAZY:
            level.set_policy_lazy(new_policy)
        elif transition is TransitionKind.GREEDY:
            if new_policy != level.policy and not level.is_empty:
                deeper_empty = all(l.is_empty for l in self.levels[level_no:])
                if deeper_empty:
                    self.rebuild_level_in_place(level_no)
                else:
                    self.force_merge_level(level_no)
            level.set_policy_immediate(new_policy)
        else:
            raise PolicyError(f"unknown transition kind: {transition!r}")

    def set_policies(
        self, new_policies: Sequence[int], transition: TransitionKind
    ) -> None:
        """Set the policy of levels ``1..len(new_policies)`` at once.

        Greedy transitions are applied deepest-first so the cascade of forced
        merges does not invalidate shallower levels' pending changes.
        """
        indices = range(len(new_policies), 0, -1)
        for level_no in indices:
            self.set_policy(level_no, new_policies[level_no - 1], transition)

    def set_named_policy(
        self,
        policy: PolicyLike,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
    ) -> None:
        """Pin the tree to a named compaction policy (see
        :mod:`repro.lsm.policy`).

        The policy's per-level ``K`` assignment is applied through
        ``transition`` (flexible: free and immediate; greedy: forced merges,
        the bounded-migration cost model; lazy: queued until levels empty),
        and the pin keeps future levels — and, under lazy-leveling, the
        moving bottom level — on the discipline as the tree grows.
        """
        resolved = resolve_policy(policy)
        if self.levels:
            assignments = resolved.assignments(
                len(self.levels), self.config.size_ratio
            )
            self.set_policies(assignments, transition)
        self.compaction_policy = resolved
        if transition is not TransitionKind.LAZY:
            # A greedy cascade may have created a deeper level mid-switch;
            # align it (and nothing else) with the pinned assignment.
            self._apply_pinned_policy()

    def named_policy(self) -> Optional[str]:
        """Name of the pinned compaction policy, or ``None`` when the tree
        is governed by raw per-level ``K`` values."""
        policy = self.compaction_policy
        return policy.name if policy is not None else None

    def apply_named_policy(
        self,
        policy: PolicyLike,
        transition: TransitionKind = TransitionKind.FLEXIBLE,
    ) -> None:
        """Alias of :meth:`set_named_policy` under the engine contract."""
        self.set_named_policy(policy, transition)

    # ------------------------------------------------------------------
    # KVEngine surface: mission windows, tuning targets, aggregate views
    # ------------------------------------------------------------------
    @property
    def io_counters(self) -> "IOCounters":
        """Cumulative page-level I/O counters of the simulated device."""
        return self.disk.counters

    @property
    def clock_now(self) -> float:
        """Total simulated seconds consumed so far."""
        return self.clock.now

    @property
    def cache_hits(self) -> int:
        """Cumulative block-cache hits."""
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        """Cumulative block-cache misses."""
        return self.cache.misses

    @property
    def cache_hit_rate(self) -> float:
        """Cumulative block-cache hit fraction (0.0 with no traffic)."""
        return self.cache.hit_rate

    def _cache_counters(self) -> Tuple[int, int]:
        """Cache counters for mission windows.

        A capacity-0 cache still tallies its (always-miss) probes
        internally, but mission records treat that as "no cache
        configured" — zero traffic — so reports can distinguish a
        cache-less run from a cache that never hits.
        """
        if self.cache.capacity == 0:
            return 0, 0
        return self.cache.hits, self.cache.misses

    def begin_mission(self) -> None:
        """Open a stats window covering the next batch of operations."""
        hits, misses = self._cache_counters()
        self.stats.begin_mission(self.disk.counters, self.clock.now, hits, misses)

    def end_mission(self) -> "MissionStats":
        """Close the current stats window and return its statistics."""
        hits, misses = self._cache_counters()
        return self.stats.end_mission(
            self.disk.counters, self.clock.now, hits, misses
        )

    def tuning_targets(self) -> "List[LSMTree]":
        """The tree itself is the only tuning target."""
        return [self]

    def last_mission_breakdown(self) -> "List[MissionStats]":
        """Per-target stats of the last completed mission."""
        return self.stats.completed[-1:]

    def apply_transition(
        self, policies: Sequence[int], transition: TransitionKind
    ) -> None:
        """Alias of :meth:`set_policies` under the engine contract."""
        self.set_policies(list(policies), transition)

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        distribute: bool = False,
    ) -> None:
        """Populate an empty tree without charging simulated time.

        By default all entries form one sealed run in the shallowest level
        that can hold them (what an offline bulk load produces). With
        ``distribute=True`` entries are spread bottom-up across levels to
        mimic a steady-state tree.
        """
        if self.total_entries:
            raise TreeStateError("bulk_load requires an empty tree")
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        keys, values = merge_sorted_sources([keys], [values])
        n = len(keys)
        if n == 0:
            return
        bottom_no = 1
        while self.config.level_capacity_entries(bottom_no) < n:
            bottom_no += 1
        self._ensure_level(bottom_no)
        observer = self.change_observer
        if not distribute:
            bottom = self.level(bottom_no)
            run = self._new_run(
                bottom, keys, values,
                capacity_entries=bottom.active_run_capacity(), sealed=True,
            )
            bottom.runs.append(run)
            if observer is not None:
                observer.run_installed(bottom_no, run, None)
            return
        # Steady-state layout: a long-running store keeps each shallow level
        # about half full on average (they drain into the next level every
        # time they fill), with the bulk of the data resident at the bottom.
        # Fill levels 1..bottom-1 to ~50% and give the remainder to the
        # bottom level (which by construction can hold all n entries). Each
        # level's share is split into the number of sealed runs its policy
        # would have accumulated at that fill.
        shallow_fill = 0.5
        shares = {}
        left = n
        for level_no in range(1, bottom_no):
            capacity = self.config.level_capacity_entries(level_no)
            take = min(left, max(1, int(shallow_fill * capacity)))
            if take <= 0:
                break
            shares[level_no] = take
            left -= take
            if left <= 0:
                break
        if left > 0:
            shares[bottom_no] = left
        remaining = np.arange(n)
        self._rng.shuffle(remaining)
        cursor = 0
        for level_no in sorted(shares, reverse=True):
            take = shares[level_no]
            level = self.level(level_no)
            capacity = self.config.level_capacity_entries(level_no)
            chosen = remaining[cursor : cursor + take]
            cursor += take
            fill = take / capacity
            n_runs = max(1, round(level.policy * fill))
            run_capacity = level.active_run_capacity()
            for chunk in np.array_split(chosen, n_runs):
                if len(chunk) == 0:
                    continue
                ordered = np.sort(chunk)
                run = self._new_run(
                    level,
                    keys[ordered],
                    values[ordered],
                    capacity_entries=run_capacity,
                    sealed=True,
                )
                level.runs.append(run)
                if observer is not None:
                    observer.run_installed(level_no, run, None)

    # ------------------------------------------------------------------
    # Introspection & invariants
    # ------------------------------------------------------------------
    def describe(self) -> List[Dict[str, object]]:
        """A structural snapshot for debugging and examples."""
        return [
            {
                "level": level.level_no,
                "policy": level.policy,
                "pending_policy": level.pending_policy,
                "runs": level.n_runs,
                "entries": level.data_entries,
                "capacity": level.capacity_entries,
                "fill": round(level.fill_ratio, 4),
                "fpr": level.fpr,
            }
            for level in self.levels
        ]

    def check_invariants(self) -> None:
        """Verify structural invariants; raises :class:`TreeStateError`."""
        for level in self.levels:
            level.check_invariants()
            if level.data_entries > level.capacity_entries:
                raise TreeStateError(
                    f"level {level.level_no} over capacity: "
                    f"{level.data_entries} > {level.capacity_entries}"
                )
        if len(self.memtable) > self.memtable.capacity_entries:
            raise TreeStateError("memtable over capacity")

    def read_amplification_snapshot(self) -> Dict[int, int]:
        """Number of runs per level (a proxy for worst-case read amp)."""
        return {level.level_no: level.n_runs for level in self.levels}

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist and DESIGN.md §6)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Full serializable snapshot of the tree.

        Captures everything needed for a bit-exact restore: structure
        (levels, runs, memtable), accounting (clock, stats, I/O counters,
        block-cache contents) and determinism state (the Bloom RNG).
        Snapshots are only valid between missions.
        """
        if self.stats.in_mission:
            raise SnapshotError(
                "cannot snapshot an engine mid-mission; close the window first"
            )
        return {
            "clock": self.clock.state_dict(),
            "io": self.disk.counters.state_dict(),
            "cache": self.cache.state_dict(),
            "stats": self.stats.state_dict(),
            "memtable": self.memtable.state_dict(),
            "levels": [level.state_dict() for level in self.levels],
            "rng": self._rng.bit_generator.state,
            "next_run_id": self._next_run_id,
            "bits_per_key": self.bits_per_key,
            "fpr_depth": self._fpr_depth,
            "named_policy": self.named_policy(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the tree in place from :meth:`state_dict` output.

        The tree must have been constructed with the same
        :class:`SystemConfig` the snapshot was taken under; shared
        sub-objects (clock, collector, cache, counters) are mutated rather
        than replaced so external references stay valid.
        """
        self.clock.load_state_dict(state["clock"])
        self.disk.counters.load_state_dict(state["io"])
        self.cache.load_state_dict(state["cache"])
        self.stats.load_state_dict(state["stats"])
        self.memtable.load_state_dict(state["memtable"])
        self._rng.bit_generator.state = state["rng"]

        def build_run(run_state: Dict[str, object]) -> SortedRun:
            return SortedRun.from_state_dict(
                run_state, self.config.bloom_mode, self._rng
            )

        self.levels = [
            Level.from_state_dict(level_state, build_run)
            for level_state in state["levels"]
        ]
        self._next_run_id = int(state["next_run_id"])
        self.bits_per_key = float(state["bits_per_key"])
        self._fpr_depth = int(state["fpr_depth"])
        # Absent in pre-policy snapshots (format additions stay readable).
        named = state.get("named_policy")
        self.compaction_policy = (
            resolve_policy(named) if named is not None else None
        )
        self.check_invariants()
