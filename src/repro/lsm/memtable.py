"""In-memory write buffer.

New writes land here; when the buffer holds ``capacity_entries`` entries it
is sorted and flushed into Level 1 as (part of) a sorted run. Deletions are
buffered as tombstones so they can shadow older on-disk versions.

Batch lookups run against a **lazily-built sorted view** of the buffer
(parallel key/value arrays sorted by key). The view is built at most once
per write generation: any mutation (:meth:`MemTable.put`,
:meth:`MemTable.delete`, :meth:`MemTable.put_batch`, :meth:`MemTable.clear`,
:meth:`MemTable.load_state_dict`) invalidates it, and the next batch read
rebuilds it. Read-heavy phases therefore pay the ``O(M log M)`` sort once
instead of on every ``get_batch``, and :meth:`MemTable.drain_sorted` reuses
a still-valid view instead of re-sorting at flush time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.lsm.entry import TOMBSTONE, validate_value


class MemTable:
    """A bounded, mutable key-value buffer with newest-wins semantics."""

    __slots__ = ("_capacity", "_entries", "_sorted_view")

    def __init__(self, capacity_entries: int) -> None:
        if capacity_entries < 1:
            raise ConfigError(
                f"memtable capacity must be >= 1, got {capacity_entries}"
            )
        self._capacity = capacity_entries
        self._entries: Dict[int, int] = {}
        #: Cached ``(sorted_keys, values)`` arrays, or ``None`` when stale.
        self._sorted_view: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def capacity_entries(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self._capacity

    def put(self, key: int, value: int) -> None:
        """Insert or overwrite ``key``. Overwrites do not consume capacity."""
        self._entries[int(key)] = validate_value(value)
        self._sorted_view = None

    def delete(self, key: int) -> None:
        """Buffer a tombstone for ``key``."""
        self._entries[int(key)] = TOMBSTONE
        self._sorted_view = None

    def put_batch(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Bulk-insert a prefix of ``keys``/``values``; returns its length.

        Inserts stop (and the consumed count is returned) as soon as the
        buffer reaches capacity, so callers flush and re-offer the rest —
        exactly the flush boundaries a per-key :meth:`put` loop would hit.
        A prefix that provably cannot fill the buffer (shorter than the
        free-slot count even if every key is new) is applied as one dict
        update with no per-key bookkeeping; only the last key(s) before a
        flush fall back to per-key inserts, because with duplicate keys in
        play the exact fill point is only observable one insert at a time.
        Values are NOT validated here; vectorized callers
        (``LSMTree.put_batch``) validate the whole batch up front.
        """
        self._sorted_view = None
        n = len(keys)
        room = self._capacity - len(self._entries)
        if n < room:
            self._entries.update(zip(keys.tolist(), values.tolist()))
            return n
        if room > 1:
            bulk = room - 1
            self._entries.update(
                zip(keys[:bulk].tolist(), values[:bulk].tolist())
            )
            return bulk
        entries = self._entries
        consumed = 0
        for key, value in zip(keys.tolist(), values.tolist()):
            entries[key] = value
            consumed += 1
            if len(entries) >= self._capacity:
                break
        return consumed

    def get(self, key: int) -> Optional[int]:
        """Latest buffered value for ``key`` (may be ``TOMBSTONE``), else
        ``None`` if the key is not buffered at all."""
        return self._entries.get(int(key))

    def _build_sorted_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize (and cache) the buffer as key-sorted arrays."""
        m = len(self._entries)
        mk = np.fromiter(self._entries.keys(), dtype=np.int64, count=m)
        mv = np.fromiter(self._entries.values(), dtype=np.int64, count=m)
        order = np.argsort(mk, kind="stable")
        view = (mk[order], mv[order])
        self._sorted_view = view
        return view

    def sorted_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """The buffer as key-sorted ``(keys, values)`` arrays.

        Builds (and caches) the view when stale; a valid view is returned
        as-is. Callers must treat the arrays as immutable — they are
        shared with every other reader until the next write invalidates
        the cache. Tombstones are included.
        """
        view = self._sorted_view
        if view is None:
            view = self._build_sorted_view()
        return view

    def get_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`get` over an int64 key array.

        Returns ``(buffered_mask, values)`` aligned with ``keys``:
        ``buffered_mask[i]`` is ``True`` when ``keys[i]`` is buffered at all
        (``values[i]`` then holds its value, which may be ``TOMBSTONE``).

        A valid cached sorted view is always used (``O(B log M)`` binary
        search, no rebuild). With a stale view, a batch smaller than the
        buffer falls back to one bulk pass of dict probes — ``O(B)`` and
        cheaper than re-sorting for a single batch — while a buffer-sized
        batch (re)builds and caches the view, so consecutive batch reads
        against an unchanged buffer sort at most once.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = len(keys)
        buffered = np.zeros(n, dtype=bool)
        values = np.zeros(n, dtype=np.int64)
        m = len(self._entries)
        if n == 0 or m == 0:
            return buffered, values
        view = self._sorted_view
        if view is None:
            if m > n:
                get = self._entries.get
                for i, key in enumerate(keys.tolist()):
                    value = get(key)
                    if value is not None:
                        buffered[i] = True
                        values[i] = value
                return buffered, values
            view = self._build_sorted_view()
        mk, mv = view
        pos = np.searchsorted(mk, keys)
        clamped = np.minimum(pos, m - 1)
        buffered = mk[clamped] == keys
        values[buffered] = mv[clamped[buffered]]
        return buffered, values

    def range_items(self, lo: int, hi: int) -> Dict[int, int]:
        """Buffered entries with ``lo <= key <= hi`` (including tombstones).

        A valid cached sorted view answers with two binary searches and a
        slice (``O(log M + hits)``); with a stale view the O(M) dict scan
        is still cheaper than re-sorting for one range, so a single scan
        never builds the view — batch readers (``get_batch``,
        ``range_scan_batch``) do.
        """
        view = self._sorted_view
        if view is None:
            return self.range_items_scan(lo, hi)
        mk, mv = view
        start = int(np.searchsorted(mk, lo, side="left"))
        stop = int(np.searchsorted(mk, hi, side="right"))
        return dict(zip(mk[start:stop].tolist(), mv[start:stop].tolist()))

    def range_items_scan(self, lo: int, hi: int) -> Dict[int, int]:
        """:meth:`range_items` by full dict scan — the O(M) pre-PR path,
        kept as the executable reference the sorted-view fast path is
        verified against (and as the stale-view fallback)."""
        return {k: v for k, v in self._entries.items() if lo <= k <= hi}

    def drain_sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empty the buffer and return its contents sorted by key.

        Tombstones are retained in the output: they must be persisted so they
        can shadow older versions further down the tree. A still-valid sorted
        view is handed over as-is (ownership transfers — the cache slot is
        cleared with the buffer), skipping the flush-time re-sort.
        """
        if not self._entries:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        view = self._sorted_view
        if view is None:
            view = self._build_sorted_view()
        self._sorted_view = None
        self._entries.clear()
        return view

    def clear(self) -> None:
        self._entries.clear()
        self._sorted_view = None

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: buffered entries in insertion order."""
        m = len(self._entries)
        keys = np.fromiter(self._entries.keys(), dtype=np.int64, count=m)
        values = np.fromiter(self._entries.values(), dtype=np.int64, count=m)
        return {"capacity": self._capacity, "keys": keys, "values": values}

    def load_state_dict(self, state: dict) -> None:
        """Restore the buffer in place, preserving insertion order."""
        if int(state["capacity"]) != self._capacity:
            raise ConfigError(
                f"memtable capacity mismatch: snapshot has {state['capacity']}, "
                f"this buffer holds {self._capacity}"
            )
        self._entries.clear()
        self._entries.update(
            zip(state["keys"].tolist(), state["values"].tolist())
        )
        self._sorted_view = None
