"""Ordered multi-lane lock acquisition.

Cross-shard work (coalesced range batches, live checkpoints) must hold
every lane lock at once. Two threads doing that concurrently deadlock
unless both acquire in the same global order, so this module is the one
sanctioned way to take more than one lane lock: locks are acquired in
ascending lane-index order and released in reverse. The LOCK-ORDER
static rule (:mod:`repro.analysis`) flags any ad-hoc multi-lock
acquisition in ``serve/`` that bypasses it (DESIGN.md §7, §14).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from contextlib import contextmanager


def ascending_lane_order(lanes: Sequence) -> list:
    """Lanes sorted by ascending shard index — *the* global lock order.

    Accepts any sequence of objects with an ``index`` attribute (the
    serving ``_Lane``); objects without one keep their given position,
    which lets plain lock sequences reuse the helper in tests.
    """
    return sorted(lanes, key=lambda lane: getattr(lane, "index", 0))


@contextmanager
def ordered_lane_locks(lanes: Sequence) -> Iterator[list]:
    """Hold every lane's ``lock``, acquired in ascending index order.

    Yields the lanes in acquisition order. Releases in reverse on exit,
    including when the body raises. Do **not** call this while already
    holding any lane lock — the ordering guarantee only holds when the
    full set is acquired through one call (single-lane work takes
    ``with lane.lock:`` directly).
    """
    ordered = ascending_lane_order(lanes)
    held = []
    try:
        for lane in ordered:
            lane.lock.acquire()
            held.append(lane)
        yield ordered
    finally:
        for lane in reversed(held):
            lane.lock.release()
