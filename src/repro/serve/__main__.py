"""``python -m repro.serve`` — put live load on a store from the shell.

Examples::

    # one quick configuration: 4 Lerp-tuned shards, open loop at 30k req/s
    python -m repro.serve --shards 4 --tuned --rate 30000 --ops 50000

    # closed loop (4 synchronous clients), static K=5 baseline
    python -m repro.serve --shards 2 --closed-loop --clients 4 --ops 20000

    # the full benchmark grid (static vs Lerp × 1 vs 4 shards)
    python -m repro.serve --compare

Scales follow ``REPRO_BENCH_SCALE`` (quick / default / full) like the
offline benchmarks; all latencies printed are wall-clock.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.experiments import bench_scale
from repro.serve.experiments import (
    _default_workload,
    build_server,
    format_serving_report,
    run_serving_comparison,
    serving_scale,
)
from repro.serve.loadgen import TenantSpec, run_load


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Serve live request traffic over a (sharded) FLSM "
        "store with optional online Lerp tuning.",
    )
    parser.add_argument("--shards", type=int, default=1, help="shard count")
    parser.add_argument(
        "--tuned",
        action="store_true",
        help="tune the live store with Lerp at window boundaries "
        "(default: static K)",
    )
    parser.add_argument(
        "--static-policy",
        type=int,
        default=5,
        metavar="K",
        help="compaction policy of the static baseline (default 5)",
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="offered requests (default: scale tier)"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop offered rate, requests/s (default: scale tier)",
    )
    parser.add_argument(
        "--closed-loop",
        action="store_true",
        help="closed-loop clients instead of open-loop Poisson arrivals",
    )
    parser.add_argument(
        "--clients", type=int, default=1, help="client threads (default 1)"
    )
    parser.add_argument(
        "--window-ops",
        type=int,
        default=None,
        metavar="N",
        help="close a mission window every N completed requests",
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "durable"),
        default="memory",
        help="engine backend: in-memory sharded store (default) or the "
        "durable WAL+SSTable store (requires --data-dir, single shard)",
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable store directory (created on first use; an existing "
        "directory is recovered, replaying the WAL tail)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="snapshot the live engine to PATH after the run (pre-stop)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run the full static-vs-Lerp × 1-vs-4-shard grid and print "
        "the benchmark report",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace the serve path (sampled spans) and export JSONL to PATH",
    )
    parser.add_argument(
        "--trace-every",
        type=int,
        default=16,
        metavar="N",
        help="keep every Nth serve.batch root span (default 16)",
    )
    parser.add_argument(
        "--audit",
        default=None,
        metavar="PATH",
        help="record the tuners' decision audit log and export JSONL to "
        "PATH (Lerp-tuned runs only produce events)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.clients < 1:
        parser.error("--clients must be >= 1")
    if args.backend == "durable":
        if args.data_dir is None:
            parser.error("--backend durable requires --data-dir")
        if args.shards != 1:
            parser.error("--backend durable serves a single shard")
    elif args.data_dir is not None:
        parser.error("--data-dir only applies to --backend durable")

    scale = bench_scale()
    serving = serving_scale(scale)
    if args.ops is not None:
        serving.n_ops = args.ops
    if args.rate is not None:
        serving.rate = args.rate
    if args.window_ops is not None:
        serving.window_ops = args.window_ops

    if args.compare:
        runs = run_serving_comparison(
            scale=scale, serving=serving, seed=args.seed, rate=args.rate
        )
        offer = (
            f"{serving.duration:.1f}s offer window"
            if serving.duration
            else f"{serving.n_ops} offered ops"
        )
        print(
            format_serving_report(
                runs,
                title=f"== serving comparison (scale={scale.name}, {offer}) ==",
            )
        )
        return 0

    workload = _default_workload(
        scale, args.seed, serving.n_ops, serving.mission_size
    )
    server = build_server(
        args.shards,
        args.tuned,
        workload=workload,
        serving=serving,
        scale=scale,
        seed=args.seed,
        static_policy=args.static_policy,
        backend=args.backend,
        data_dir=args.data_dir,
    )
    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer(sample_every=max(1, args.trace_every))
        server.tracer = tracer
        server.engine.set_tracer(tracer)
    audit = None
    if args.audit:
        from repro.obs.audit import DecisionAuditLog

        audit = DecisionAuditLog()
        for tuner in dict.fromkeys(server.tuners):
            if hasattr(tuner, "attach_audit"):
                tuner.attach_audit(audit)
    tenant = TenantSpec(
        name="cli",
        workload=workload,
        n_ops=serving.n_ops,
        rate=serving.rate,
        n_clients=args.clients,
        closed_loop=args.closed_loop,
        mission_size=serving.mission_size,
        seed=args.seed,
    )
    server.start()
    try:
        report = run_load(server, [tenant])
        if args.checkpoint:
            server.checkpoint(args.checkpoint)
            print(f"checkpointed live engine to {args.checkpoint}", file=sys.stderr)
    finally:
        server.stop()
        if args.backend == "durable":
            server.engine.close()

    mode = "closed-loop" if args.closed_loop else f"open-loop @ {serving.rate:,.0f}/s"
    tuner = "Lerp-tuned" if args.tuned else f"static K={args.static_policy}"
    print(f"== repro.serve: {args.shards} shard(s), {tuner}, {mode} ==")
    print(
        f"offered {report.offered} accepted {report.accepted} "
        f"completed {report.completed} dropped {report.dropped} "
        f"({report.drop_fraction * 100:.2f}%)"
    )
    print(
        f"throughput {report.throughput:,.0f} req/s over "
        f"{report.wall_seconds:.2f}s wall; mean queue depth "
        f"{report.mean_queue_depth:.1f} (max {report.max_queue_depth})"
    )
    print(f"latency: {report.histogram.summary()}")
    print(
        f"windows closed: {len(server.windows)}; simulated seconds "
        f"charged by the engine: {server.engine.clock_now:.3f}"
    )
    if server.windows:
        last = server.windows[-1]
        print(
            f"last window: {last.stats.n_operations} ops, "
            f"{last.stats.ops_per_second:,.0f} ops/s wall, "
            f"policies {last.policies}"
        )
    if args.backend == "durable":
        t = server.engine.telemetry
        print(
            f"durable: {t['wal_records']} WAL records "
            f"({t['wal_bytes']:,} bytes, {t['wal_syncs']} syncs), "
            f"{t['sstables_written']} SSTables written, "
            f"{t['commits']} manifest commits; data at {args.data_dir}"
        )
    if tracer is not None:
        written = tracer.export_jsonl(args.trace)
        print(
            f"traced {tracer.roots_seen} serve batches, kept "
            f"{tracer.roots_kept}, wrote {written} spans to {args.trace}",
            file=sys.stderr,
        )
    if audit is not None:
        written = audit.export_jsonl(args.audit)
        print(
            f"wrote {written} decision audit events to {args.audit}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
