"""Canonical serving experiments: live traffic + live tuning.

This is the serving-layer counterpart of :mod:`repro.bench.experiments`:
one function builds a loaded :class:`KVServer` for a (shards × tuner)
configuration, one runs the open-loop tail-latency comparison the
``serving_tail_latency`` benchmark and the ``python -m repro.serve`` CLI
share, and one formats the paper-style text report.

The headline comparison puts the same offered load (an open-loop Poisson
stream replaying the paper's five-session dynamic schedule) on four
configurations: {1, 4} shards × {static K, Lerp-tuned}. Shards serve from
per-lane worker threads with bounded queues; the tuning loop closes a
mission window every ``window_ops`` completed requests, so Lerp adapts the
store *while traffic flows*. Reported per configuration: completed
throughput, drop fraction, queue depth, and wall-clock p50/p99/p99.9.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.experiments import (
    BenchScale,
    base_config,
    bench_lerp_config,
    bench_scale,
)
from repro.config import SystemConfig
from repro.core.lerp import Lerp
from repro.core.tuners import StaticTuner, Tuner
from repro.engine.sharded import ShardedStore
from repro.serve.loadgen import LoadReport, TenantSpec, run_load
from repro.serve.server import KVServer
from repro.workload.dynamic import paper_dynamic_workload
from repro.workload.spec import WorkloadSpec


#: Upper bound on prematerialized request streams (the fastest observed
#: Python producer paces ~300k req/s; 600k covers a 1.5-2s offer window
#: with headroom while keeping setup under ~2s / ~100 MB).
_STREAM_CAP_MAX = 600_000


@dataclass
class ServingScale:
    """Run-shape parameters of one serving-experiment tier.

    With ``duration > 0`` the open-loop clients offer for that many wall
    seconds (``n_ops`` then caps the stream length and sizes the dynamic
    schedule); with ``duration == 0`` they offer exactly ``n_ops``
    requests. The benchmark comparison uses duration-bounded offering so
    every configuration faces the *same arrival process over the same
    wall window* — a server that sheds load cannot shorten its own run.
    """

    n_ops: int  # offered requests (duration == 0) or stream cap
    rate: float  # open-loop offered rate (requests / wall second)
    window_ops: int  # mission-window length (completed requests)
    queue_capacity: int  # per-lane admission queue bound
    max_batch: int  # per-lane drain batch
    mission_size: int  # generator mission granularity
    duration: float = 0.0  # offer window (wall seconds; 0 = count-bound)


def serving_scale(scale: Optional[BenchScale] = None) -> ServingScale:
    """Serving run shapes per ``REPRO_BENCH_SCALE`` tier."""
    scale = scale or bench_scale()
    if scale.name == "quick":
        return ServingScale(
            n_ops=60_000,
            rate=40_000.0,
            window_ops=6_000,
            queue_capacity=512,
            max_batch=256,
            mission_size=1_000,
            duration=0.8,
        )
    if scale.name == "full":
        return ServingScale(
            n_ops=600_000,
            rate=60_000.0,
            window_ops=25_000,
            queue_capacity=1_024,
            max_batch=512,
            mission_size=2_000,
            duration=4.0,
        )
    return ServingScale(
        n_ops=150_000,
        rate=50_000.0,
        window_ops=12_000,
        queue_capacity=768,
        max_batch=384,
        mission_size=1_200,
        duration=1.5,
    )


def build_server(
    n_shards: int,
    tuned: bool,
    config: Optional[SystemConfig] = None,
    workload: Optional[WorkloadSpec] = None,
    serving: Optional[ServingScale] = None,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    static_policy: int = 5,
    split_buffer: bool = True,
    backend: str = "memory",
    data_dir: Optional[str] = None,
) -> KVServer:
    """A loaded, not-yet-started server for one configuration.

    ``split_buffer`` divides the write buffer by ``n_shards`` so every
    configuration runs under the same *total* memory budget — the fair
    control for shard-count comparisons (per-shard flushes become smaller
    and stall their lane for less wall time).

    ``backend`` selects the engine: ``"memory"`` (the default
    :class:`ShardedStore`) or ``"durable"``, which serves from a
    :class:`~repro.durable.store.DurableStore` rooted at ``data_dir``
    (WAL + SSTables + manifest; single shard only — the durable store is
    one tree). A durable server survives ``kill -9``: acknowledged
    writes are replayed from the WAL on the next open.
    """
    if backend not in ("memory", "durable"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "durable":
        if n_shards != 1:
            raise ValueError("backend='durable' serves a single shard")
        if not data_dir:
            raise ValueError("backend='durable' requires a data_dir")
    scale = scale or bench_scale()
    serving = serving or serving_scale(scale)
    if config is None:
        config = base_config(scale=scale, seed=seed)
    # Static baselines serve from their steady-state structure; RusKey
    # starts at leveling (K=1) as in the paper's experiments.
    config = config.with_updates(initial_policy=1 if tuned else static_policy)
    if split_buffer and n_shards > 1:
        config = config.with_updates(
            write_buffer_bytes=max(
                config.entry_bytes * 8, config.write_buffer_bytes // n_shards
            )
        )
    if workload is None:
        workload = _default_workload(
            scale, seed, serving.n_ops, serving.mission_size
        )
    if backend == "durable":
        from repro.durable.store import DurableStore

        engine = DurableStore(data_dir, config)
        if engine.total_entries == 0:  # fresh directory: seed the dataset
            engine.bulk_load(*workload.load_records(), distribute=True)
    else:
        engine = ShardedStore(config, n_shards)
        engine.bulk_load(*workload.load_records(), distribute=True)
    tuners: Sequence[Tuner]
    if tuned:
        # window_ops == 0 disables the background tuning loop but a Lerp
        # can still be attached; size its schedule for a nominal budget.
        n_windows = (
            max(1, serving.n_ops // serving.window_ops)
            if serving.window_ops > 0
            else 40
        )
        lerp_config = bench_lerp_config(max(40, n_windows), seed=seed)
        tuners = [
            Lerp(config, lerp_config if i == 0 else
                 _reseed_lerp(lerp_config, seed + i))
            for i in range(n_shards)
        ]
    else:
        tuners = [StaticTuner(static_policy)] * n_shards
    return KVServer(
        engine,
        tuners=list(tuners),
        queue_capacity=serving.queue_capacity,
        max_batch=serving.max_batch,
        window_ops=serving.window_ops,
    )


def _reseed_lerp(lerp_config, seed: int):
    import dataclasses

    return dataclasses.replace(lerp_config, seed=seed)


def _default_workload(
    scale: BenchScale, seed: int, total_ops: int, mission_size: int
) -> WorkloadSpec:
    """The five-session dynamic schedule, phase lengths in *missions* sized
    so a request stream of ``total_ops`` sweeps every session."""
    missions_per_session = max(1, total_ops // (5 * mission_size))
    return paper_dynamic_workload(
        n_records=scale.n_records,
        missions_per_session=missions_per_session,
        seed=seed + 23,
    )


@dataclass
class ServingRun:
    """One configuration's serving outcome."""

    name: str
    n_shards: int
    tuned: bool
    report: LoadReport
    final_policies: List[List[int]]
    n_windows: int
    sim_seconds: float


def run_serving_config(
    n_shards: int,
    tuned: bool,
    scale: Optional[BenchScale] = None,
    serving: Optional[ServingScale] = None,
    seed: int = 0,
    rate: Optional[float] = None,
    static_policy: int = 5,
) -> ServingRun:
    """Serve the dynamic schedule open-loop against one configuration."""
    scale = scale or bench_scale()
    serving = serving or serving_scale(scale)
    target_rate = rate if rate is not None else serving.rate
    # With duration-bounded offering the stream must outlast the deadline
    # even at the producer's burst maximum (the producer never exceeds the
    # configured rate, so 1.1x the nominal schedule plus slack suffices);
    # the schedule is sized to the cap so the nominal stream sweeps all
    # five sessions. Streams are prematerialized — request construction
    # happens before the offering clock starts — so the cap is also
    # bounded by _STREAM_CAP_MAX to keep setup time and memory sane (a
    # Python producer cannot pace past that count in one offer window).
    if serving.duration > 0:
        stream_cap = max(
            serving.n_ops,
            min(
                int(1.1 * target_rate * serving.duration) + 20_000,
                _STREAM_CAP_MAX,
            ),
        )
    else:
        stream_cap = serving.n_ops
    workload = _default_workload(
        scale, seed, stream_cap, serving.mission_size
    )
    server = build_server(
        n_shards,
        tuned,
        workload=workload,
        serving=serving,
        scale=scale,
        seed=seed,
        static_policy=static_policy,
    )
    tenant = TenantSpec(
        name="dynamic",
        workload=workload,
        n_ops=stream_cap,
        rate=target_rate,
        mission_size=serving.mission_size,
        seed=seed,
        duration=serving.duration,
        prematerialize=serving.duration > 0,
    )
    server.start()
    try:
        report = run_load(server, [tenant])
    finally:
        server.stop()
    name = f"{'Lerp-tuned' if tuned else f'static K={static_policy}'}, " \
           f"{n_shards} shard{'s' if n_shards != 1 else ''}"
    return ServingRun(
        name=name,
        n_shards=n_shards,
        tuned=tuned,
        report=report,
        final_policies=[list(t.policies()) for t in server.engine.tuning_targets()],
        n_windows=len(server.windows),
        sim_seconds=float(server.engine.clock_now),
    )


def calibrate_lane_capacity(
    scale: Optional[BenchScale] = None,
    serving: Optional[ServingScale] = None,
    seed: int = 0,
    probe_duration: float = 0.4,
) -> float:
    """Measured saturated drain rate of one serving lane on this host
    (static config, deeply saturating offered rate, short offer window).
    The benchmark and the CLI both anchor the comparison's offered load
    to this so the overload regime is reproducible across machines. The
    probe rate (600k req/s) is far above any observed lane capacity yet
    small enough that the probe's prematerialized stream stays cheap.
    Two probes run and the larger reading wins: transient host load can
    only depress a probe, and an *under*-estimated capacity would put the
    comparison below saturation where it measures noise (overshooting is
    safe — producers simply run flat out)."""
    import dataclasses

    scale = scale or bench_scale()
    serving = serving or serving_scale(scale)
    probe = dataclasses.replace(
        serving, duration=min(probe_duration, serving.duration or probe_duration)
    )
    readings = [
        run_serving_config(
            1, tuned=False, scale=scale, serving=probe, seed=seed, rate=6e5
        ).report.throughput
        for _ in range(2)
    ]
    return max(readings)


def run_serving_comparison(
    scale: Optional[BenchScale] = None,
    serving: Optional[ServingScale] = None,
    seed: int = 0,
    shard_counts: Sequence[int] = (1, 4),
    rate: Optional[float] = None,
) -> Dict[str, ServingRun]:
    """The benchmark grid: {shards} × {static, Lerp-tuned}, same offered
    load everywhere. With no explicit ``rate`` the offered load is set to
    5x the calibrated single-lane drain capacity — deep saturation for
    one lane, where the serving architectures differentiate.
    Configurations run sequentially (each gets the whole machine);
    results key on the configuration name."""
    if rate is None:
        capacity = calibrate_lane_capacity(scale=scale, serving=serving, seed=seed)
        rate = 5.0 * capacity
        print(
            f"[serve] calibrated 1-lane capacity {capacity:,.0f} req/s; "
            f"offering {rate:,.0f} req/s",
            file=sys.stderr,
        )
    runs: Dict[str, ServingRun] = {}
    for n_shards in shard_counts:
        for tuned in (False, True):
            run = run_serving_config(
                n_shards,
                tuned,
                scale=scale,
                serving=serving,
                seed=seed,
                rate=rate,
            )
            runs[run.name] = run
            print(
                f"[serve] {run.name}: {run.report.throughput:,.0f} req/s, "
                f"drops {run.report.drop_fraction * 100:.2f}%",
                file=sys.stderr,
            )
    return runs


def format_serving_report(
    runs: Dict[str, ServingRun], title: str = ""
) -> str:
    """Throughput / drops / queue depth / tail latency, one row per
    configuration (latencies are wall-clock milliseconds)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'configuration':>24} | {'req/s':>9} | {'offered/s':>9} | "
        f"{'drop %':>7} | {'qdepth':>7} | {'p50 ms':>8} | {'p99 ms':>8} | "
        f"{'p99.9 ms':>8} | {'windows':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, run in runs.items():
        # One source for key naming and ms scaling: the histogram itself.
        p = run.report.histogram.percentile_summary((50.0, 99.0, 99.9))
        lines.append(
            f"{name:>24} | {run.report.throughput:9,.0f} | "
            f"{run.report.offered_rate:9,.0f} | "
            f"{run.report.drop_fraction * 100:7.2f} | "
            f"{run.report.mean_queue_depth:7.1f} | "
            f"{p['p50_ms']:8.3f} | {p['p99_ms']:8.3f} | "
            f"{p['p999_ms']:8.3f} | {run.n_windows:7d}"
        )
    return "\n".join(lines)
