"""Open- and closed-loop load generation against a :class:`KVServer`.

The existing workload generators (uniform / Zipfian / YCSB / dynamic)
already produce deterministic :class:`~repro.workload.spec.Mission` arrays;
this module replays them as *timed request streams*:

* :class:`OpenLoopClient` — Poisson arrivals at a fixed offered rate.
  Arrival times do not depend on service times (the open-loop property
  that exposes queueing collapse); requests that meet a full lane queue
  are **dropped** and counted, never retried.
* :class:`ClosedLoopClient` — a fixed number of in-flight requests per
  client (think one synchronous connection): submit, wait for completion,
  submit the next. Offered load adapts to service capacity, so closed
  loops measure service latency, open loops measure *system* latency.

A :class:`TenantSpec` names a workload share; :func:`run_load` drives any
mix of tenants, each with its own clients, seed and request mix, and
returns a :class:`LoadReport` with per-tenant and merged tail-latency
views. All randomness (arrival jitter, per-client streams) draws from
dedicated ``numpy`` generators seeded per client — the engines' RNGs and
SimClock are never touched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigError, WorkloadError
from repro.serve.latency import LatencyHistogram
from repro.serve.server import (
    REQ_GET,
    REQ_PUT,
    REQ_RANGE,
    KVServer,
    Request,
)
from repro.workload.spec import OP_LOOKUP, OP_RANGE, OP_UPDATE, Mission, WorkloadSpec

_KIND_FROM_OP = {OP_LOOKUP: REQ_GET, OP_UPDATE: REQ_PUT, OP_RANGE: REQ_RANGE}


def requests_from_mission(
    mission: Mission, tenant: str = "", wait: bool = False
) -> Iterator[Request]:
    """Translate one mission's rows into :class:`Request` objects.

    Columns are converted to plain lists up front — producer threads sit
    on the serving hot path, so per-row numpy scalar unboxing matters.
    """
    kinds = mission.kinds.tolist()
    keys = mission.keys.tolist()
    values = mission.values.tolist()
    spans = mission.spans.tolist()
    for op, key, value, span in zip(kinds, keys, values, spans):
        yield Request(
            _KIND_FROM_OP[op],
            key,
            value=value,
            span=span,
            tenant=tenant,
            wait=wait,
        )


def request_stream(
    workload: WorkloadSpec,
    n_ops: int,
    mission_size: int = 1_000,
    tenant: str = "",
    wait: bool = False,
) -> Iterator[Request]:
    """The first ``n_ops`` requests of ``workload``'s mission stream.

    One ``missions()`` iterator is created for the whole stream (the
    generators re-seed per call, and dynamic schedules advance through
    their phases), then flattened into requests.
    """
    n_missions = -(-n_ops // mission_size)  # ceil
    emitted = 0
    for mission in workload.missions(n_missions, mission_size):
        for request in requests_from_mission(mission, tenant, wait):
            if emitted >= n_ops:
                return
            emitted += 1
            yield request


@dataclass
class ClientResult:
    """What one client thread observed."""

    tenant: str
    offered: int = 0
    accepted: int = 0
    dropped: int = 0
    wall_seconds: float = 0.0


class OpenLoopClient(threading.Thread):
    """Poisson arrivals at ``rate`` requests per wall second.

    The pacing loop is cumulative (each interarrival is added to a target
    timeline), so short sleeps that overshoot self-correct and the offered
    rate stays honest over the run. Rejected submissions are *dropped*
    (open-loop clients never block or retry — that would make them closed).
    """

    def __init__(
        self,
        server: KVServer,
        requests: Iterator[Request],
        rate: float,
        seed: int = 0,
        name: str = "open-loop",
        duration: float = 0.0,
    ) -> None:
        if rate <= 0.0:
            raise ConfigError(f"rate must be > 0, got {rate}")
        if duration < 0.0:
            raise ConfigError(f"duration must be >= 0, got {duration}")
        super().__init__(name=name, daemon=True)
        self.server = server
        self.requests = requests
        self.rate = float(rate)
        #: Stop offering after this many wall seconds (0 = exhaust the
        #: stream). Duration-bounded offering makes throughput comparable
        #: across servers of different capacity: every configuration sees
        #: the same arrival process over the same wall window, however
        #: much of it it manages to admit.
        self.duration = float(duration)
        self.rng = np.random.default_rng(seed)
        self.result = ClientResult(tenant=name)

    def run(self) -> None:
        started = time.perf_counter()
        target = 0.0
        result = self.result
        try_submit = self.server.try_submit
        perf_counter = time.perf_counter
        duration = self.duration
        gaps: List[float] = []
        gap_cursor = 0
        for request in self.requests:
            if gap_cursor >= len(gaps):
                # Draw interarrival gaps in blocks — a scalar exponential
                # per request would dominate the producer's budget.
                gaps = self.rng.exponential(1.0 / self.rate, size=1024).tolist()
                gap_cursor = 0
            target += gaps[gap_cursor]
            gap_cursor += 1
            now = perf_counter() - started
            if duration and now >= duration:
                break
            if target > now:
                time.sleep(target - now)
            result.offered += 1
            if try_submit(request):
                result.accepted += 1
            else:
                result.dropped += 1
        result.wall_seconds = time.perf_counter() - started


class ClosedLoopClient(threading.Thread):
    """One synchronous connection: submit, await completion, repeat."""

    def __init__(
        self,
        server: KVServer,
        requests: Iterator[Request],
        think_seconds: float = 0.0,
        timeout: float = 30.0,
        name: str = "closed-loop",
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.server = server
        self.requests = requests
        self.think_seconds = float(think_seconds)
        self.timeout = float(timeout)
        self.result = ClientResult(tenant=name)

    def run(self) -> None:
        started = time.perf_counter()
        result = self.result
        for request in self.requests:
            if request.done is None:
                request.done = threading.Event()
            result.offered += 1
            if not self.server.submit(request, timeout=self.timeout):
                result.dropped += 1
                continue
            result.accepted += 1
            request.done.wait(timeout=self.timeout)
            if self.think_seconds > 0.0:
                time.sleep(self.think_seconds)
        result.wall_seconds = time.perf_counter() - started


@dataclass
class TenantSpec:
    """One tenant of a multi-client mix.

    ``rate`` is the tenant's total offered rate (split over its clients)
    for open-loop mode; closed-loop tenants instead keep ``n_clients``
    requests in flight. Each client gets an independent slice of the
    tenant's workload stream via a distinct seed offset.
    """

    name: str
    workload: WorkloadSpec
    n_ops: int
    rate: float = 0.0  # requests/s, open-loop tenants only
    n_clients: int = 1
    closed_loop: bool = False
    mission_size: int = 1_000
    seed: int = 0
    #: Open-loop tenants only: stop offering after this many wall seconds
    #: (0 = offer all ``n_ops``). With a duration, ``n_ops`` caps the
    #: stream length — size it generously so the deadline ends the run.
    duration: float = 0.0
    #: Materialize each client's request objects *before* the offering
    #: clock starts (classic load-generator practice): the hot loop then
    #: pays only pacing + submission, so the offered rate reflects the
    #: server under test, not the generator's own request-construction
    #: cost. Costs memory proportional to the stream length.
    prematerialize: bool = False

    def __post_init__(self) -> None:
        if self.n_ops < 1:
            raise WorkloadError(f"n_ops must be >= 1, got {self.n_ops}")
        if self.n_clients < 1:
            raise WorkloadError(f"n_clients must be >= 1, got {self.n_clients}")
        if not self.closed_loop and self.rate <= 0.0:
            raise WorkloadError(
                f"open-loop tenant {self.name!r} needs rate > 0, got {self.rate}"
            )
        if self.duration < 0.0:
            raise WorkloadError(
                f"duration must be >= 0, got {self.duration}"
            )


@dataclass
class LoadReport:
    """Aggregated outcome of one :func:`run_load` call.

    All counters and histograms cover *this call only* (the server's own
    metrics are lifetime-cumulative; :func:`run_load` snapshots them at
    entry and reports deltas). The one exception is ``max_queue_depth``,
    which is the server-lifetime maximum — a maximum cannot be
    differenced.
    """

    wall_seconds: float
    offered: int
    accepted: int
    completed: int
    dropped: int
    histogram: LatencyHistogram
    tenant_histograms: Dict[str, LatencyHistogram]
    clients: List[ClientResult] = field(default_factory=list)
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0

    @property
    def throughput(self) -> float:
        """Completed requests per wall second."""
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def offered_rate(self) -> float:
        return self.offered / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


def run_load(
    server: KVServer,
    tenants: Sequence[TenantSpec],
    drain_timeout: float = 30.0,
) -> LoadReport:
    """Run every tenant's clients against a **started** server and wait for
    the traffic to finish; the server is left running (callers stop it).

    Latency histograms are read *after* all clients join and the queues
    drain, so single-writer recording needs no synchronization.
    """
    if not tenants:
        raise WorkloadError("run_load needs at least one tenant")
    base_completed = server.total_completed
    base_histograms = {
        name: server.histogram(name) for name in server.tenants()
    }
    base_depth_samples = sum(l.depth_samples for l in server.lanes)
    base_depth_sum = sum(l.depth_sum for l in server.lanes)
    clients: List[threading.Thread] = []
    for tenant in tenants:
        # Split n_ops across clients exactly: the first (n_ops % n) clients
        # take one extra request; clients with no share are not spawned.
        base, extra = divmod(tenant.n_ops, tenant.n_clients)
        for c in range(tenant.n_clients):
            per_client = base + (1 if c < extra else 0)
            if per_client == 0:
                continue
            stream: Iterator[Request] = request_stream(
                _reseeded(tenant.workload, tenant.seed + 101 * c),
                per_client,
                mission_size=tenant.mission_size,
                tenant=tenant.name,
                wait=tenant.closed_loop,
            )
            if tenant.prematerialize:
                stream = iter(list(stream))
            if tenant.closed_loop:
                clients.append(
                    ClosedLoopClient(
                        server, stream, name=tenant.name
                    )
                )
            else:
                clients.append(
                    OpenLoopClient(
                        server,
                        stream,
                        rate=tenant.rate / tenant.n_clients,
                        seed=tenant.seed + 997 * c,
                        name=tenant.name,
                        duration=tenant.duration,
                    )
                )
    started = time.perf_counter()
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    # Let the lanes drain what the clients enqueued.
    deadline = time.perf_counter() + drain_timeout
    accepted = sum(c.result.accepted for c in clients)  # type: ignore[attr-defined]
    while (
        server.total_completed - base_completed < accepted
        and time.perf_counter() < deadline
    ):
        time.sleep(0.002)
    wall = time.perf_counter() - started
    results = [c.result for c in clients]  # type: ignore[attr-defined]
    # Report this call's delta against the server's cumulative metrics.
    tenant_histograms: Dict[str, LatencyHistogram] = {}
    for name in server.tenants():
        hist = server.histogram(name)
        base = base_histograms.get(name)
        if base is not None and base.count > 0:
            hist = hist.diff(base)
        if hist.count > 0:
            tenant_histograms[name] = hist
    histogram = LatencyHistogram.merged(tenant_histograms.values())
    depth_samples = (
        sum(l.depth_samples for l in server.lanes) - base_depth_samples
    )
    depth_sum = sum(l.depth_sum for l in server.lanes) - base_depth_sum
    return LoadReport(
        wall_seconds=wall,
        offered=sum(r.offered for r in results),
        accepted=accepted,
        completed=server.total_completed - base_completed,
        dropped=sum(r.dropped for r in results),
        histogram=histogram,
        tenant_histograms=tenant_histograms,
        clients=results,
        mean_queue_depth=depth_sum / depth_samples if depth_samples else 0.0,
        max_queue_depth=server.max_queue_depth(),
    )


def _reseeded(workload: WorkloadSpec, seed: int) -> WorkloadSpec:
    """A copy of ``workload`` with its stream seed offset (same record
    space), so concurrent clients replay independent operation streams.
    Workloads without a ``seed`` attribute are shared as-is (their mission
    iterators are then consumed jointly, which is also well-defined)."""
    if not hasattr(workload, "seed"):
        return workload
    import copy

    clone = copy.copy(workload)
    try:
        clone.seed = workload.seed + seed  # type: ignore[attr-defined]
    except AttributeError:  # frozen dataclasses and friends
        return workload
    return clone
