"""Concurrent request serving over any :class:`~repro.engine.base.KVEngine`.

:class:`KVServer` turns the batch-oriented simulation engines into a live
service: requests are routed to *lanes* — one bounded queue plus one worker
thread per shard (per tuning target) — and served in vectorized batches.
Shards are independent trees, so per-lane locks give real isolation: a
flush or compaction stalls only its own lane while the other lanes keep
draining, and on multi-core hosts the numpy portions of different shards
overlap.

Two clocks coexist by design (DESIGN.md §7):

* **wall clock** — request latency (queueing + service), throughput and
  queue depths are measured with ``time.perf_counter`` in this layer only;
* **SimClock** — the engine keeps charging simulated seconds for every
  page access exactly as in offline runs. The serving layer never touches
  the engine's clock or RNGs, so all simulated results stay bit-exact.

Admission control is a bounded queue per lane: :meth:`KVServer.try_submit`
rejects instead of blocking (open-loop backpressure — the drop counter is
the overload signal), while :meth:`KVServer.submit` blocks the producer
(closed-loop backpressure).

A background :class:`TuningLoop` closes a mission window per lane every
``window_ops`` completed requests, feeds the per-shard stats to the lane's
tuner (e.g. :class:`~repro.core.lerp.Lerp`) and applies the resulting
transition under the lane lock — model updates and structural transitions
happen *while traffic flows* on the other lanes. Between windows the
server can be checkpointed with :meth:`KVServer.checkpoint`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.sharded import merge_mission_stats, shard_of_key
from repro.errors import ConfigError, ServeError

from repro.lsm.stats import MissionStats
from repro.serve.latency import LatencyHistogram
from repro.serve.locks import ordered_lane_locks

#: Request kinds.
REQ_GET = 0
REQ_PUT = 1
REQ_DELETE = 2
REQ_RANGE = 3

REQ_NAMES = {REQ_GET: "get", REQ_PUT: "put", REQ_DELETE: "delete", REQ_RANGE: "range"}


class Request:
    """One client request travelling through a lane queue.

    ``t_submit``/``t_done`` are wall-clock stamps (``perf_counter``);
    latency is their difference — queueing plus service. ``done`` is lazily
    a :class:`threading.Event` only for closed-loop clients that wait.

    ``result`` after completion: the value (or ``None``) for a GET;
    a ``(keys, values)`` pair of key-sorted numpy arrays for a RANGE.
    """

    __slots__ = (
        "kind",
        "key",
        "value",
        "span",
        "tenant",
        "t_submit",
        "t_done",
        "done",
        "result",
    )

    def __init__(
        self,
        kind: int,
        key: int,
        value: int = 0,
        span: int = 0,
        tenant: str = "",
        wait: bool = False,
    ) -> None:
        if kind not in REQ_NAMES:
            raise ServeError(f"unknown request kind: {kind}")
        self.kind = kind
        self.key = int(key)
        self.value = int(value)
        self.span = int(span)
        self.tenant = tenant
        self.t_submit = 0.0
        self.t_done = 0.0
        self.done: Optional[threading.Event] = (
            threading.Event() if wait else None
        )
        self.result: object = None

    @property
    def latency(self) -> float:
        """Wall seconds from submission to completion."""
        return self.t_done - self.t_submit


class _Lane:
    """One shard's serving lane: queue, worker thread, lock, metrics.

    The lock serializes access to the lane's tree between the worker and
    the tuning loop; the histograms have the worker as their only writer.
    """

    def __init__(
        self,
        index: int,
        tree,
        queue_capacity: int,
        max_batch: int,
        histogram_factory: Callable[[], LatencyHistogram],
    ) -> None:
        self.index = index
        self.tree = tree
        self.queue: "queue.Queue[Optional[Request]]" = queue.Queue(
            maxsize=queue_capacity
        )
        self.max_batch = max_batch
        self.lock = threading.Lock()
        self.worker: Optional[threading.Thread] = None
        self._histogram_factory = histogram_factory
        self.histograms: Dict[str, LatencyHistogram] = {}
        self.completed = 0
        # Guarded by reject_lock: multiple producer threads may reject
        # into the same lane concurrently (a bare += would lose counts).
        self.rejected = 0
        self.reject_lock = threading.Lock()
        # Running queue-depth statistics, sampled at every batch drain.
        self.depth_samples = 0
        self.depth_sum = 0
        self.depth_max = 0

    def histogram(self, tenant: str) -> LatencyHistogram:
        hist = self.histograms.get(tenant)
        if hist is None:
            hist = self.histograms[tenant] = self._histogram_factory()
        return hist

    def sample_depth(self) -> None:
        depth = self.queue.qsize()
        self.depth_samples += 1
        self.depth_sum += depth
        if depth > self.depth_max:
            self.depth_max = depth


@dataclass
class ServerWindow:
    """One closed mission window of the whole server.

    ``stats`` is the per-shard :class:`MissionStats` merged with the same
    aggregation rule as :class:`~repro.engine.sharded.ShardedStore`, so the
    serving layer and the offline harness share one metrics vocabulary —
    including the wall-clock ``ops_per_second`` the stats layer now carries.
    """

    index: int
    stats: MissionStats
    parts: List[MissionStats]
    completed: int
    rejected: int
    policies: List[List[int]]

    @property
    def ops_per_second(self) -> float:
        return self.stats.ops_per_second


class KVServer:
    """Serves live request traffic over a :class:`KVEngine`.

    ``engine`` may be a single tree or a :class:`ShardedStore`; one lane is
    created per tuning target. ``tuners`` (optional) is one tuner per lane,
    or a single tuner shared by all lanes; with ``window_ops > 0`` a
    background loop closes a mission window every that-many completed
    requests and lets the tuners adapt the live store.
    """

    def __init__(
        self,
        engine,
        tuners: Optional[Sequence] = None,
        queue_capacity: int = 1024,
        max_batch: int = 512,
        window_ops: int = 0,
        histogram_factory: Callable[[], LatencyHistogram] = LatencyHistogram,
        tracer=None,
    ) -> None:
        if queue_capacity < 1:
            raise ConfigError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if window_ops < 0:
            raise ConfigError(f"window_ops must be >= 0, got {window_ops}")
        self.engine = engine
        #: Optional :class:`repro.obs.trace.Tracer`. When set, every served
        #: batch opens a ``serve.batch`` root span and the engine's own
        #: batch spans (``store.*`` / ``lsm.*``, plus the read-path
        #: profiler's synthetic ``stage.*`` children) nest beneath it via
        #: the tracer's thread-local span stack. Host-wall-clock only —
        #: simulated observables stay bit-identical (DESIGN.md §12).
        self.tracer = tracer
        if tracer is not None:
            engine.set_tracer(tracer)
        targets = list(engine.tuning_targets())
        self.lanes = [
            _Lane(i, tree, queue_capacity, max_batch, histogram_factory)
            for i, tree in enumerate(targets)
        ]
        self.n_lanes = len(self.lanes)
        if tuners is None:
            self.tuners: List[object] = []
        elif not isinstance(tuners, (list, tuple)):
            self.tuners = [tuners] * self.n_lanes
        else:
            if len(tuners) != self.n_lanes:
                raise ConfigError(
                    f"got {len(tuners)} tuners for {self.n_lanes} lanes"
                )
            self.tuners = list(tuners)
        self.window_ops = window_ops
        self.windows: List[ServerWindow] = []
        #: Serializes window closing between the tuning loop and
        #: checkpoint() (both end/begin missions and append to
        #: ``windows``); always acquired *before* any lane lock.
        self._window_mutex = threading.Lock()
        self._running = False
        self._draining = False
        self._tuning_thread: Optional[threading.Thread] = None
        self._window_wake = threading.Event()
        self._started_at = 0.0
        self._stopped_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "KVServer":
        """Open the first mission window and start worker threads."""
        if self._running:
            raise ServeError("server already running")
        self._running = True
        self._draining = False
        self._stopped_at = 0.0  # a restarted server measures afresh
        for lane in self.lanes:
            # Purge stale stop sentinels: a stop(drain=False) worker may
            # exit via the not-running check without consuming its
            # sentinel, which would instantly kill this lane's new worker.
            leftover: List[Request] = []
            while True:
                try:
                    item = lane.queue.get_nowait()
                except queue.Empty:
                    break
                if item is not None:
                    leftover.append(item)
            for item in leftover:
                lane.queue.put_nowait(item)
            lane.tree.begin_mission()
            lane.worker = threading.Thread(
                target=self._worker_loop,
                args=(lane,),
                name=f"kvserver-lane-{lane.index}",
                daemon=True,
            )
            lane.worker.start()
        if self.window_ops > 0:
            self._tuning_thread = threading.Thread(
                target=self._tuning_loop, name="kvserver-tuning", daemon=True
            )
            self._tuning_thread.start()
        self._started_at = time.perf_counter()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` the queues are emptied first. The
        final (partial) mission window is closed and recorded."""
        if not self._running:
            return
        self._draining = drain
        self._running = False
        self._window_wake.set()
        for lane in self.lanes:
            lane.queue.put(None)  # wake the worker; sentinel ends the loop
        for lane in self.lanes:
            if lane.worker is not None:
                lane.worker.join()
                lane.worker = None
        if self._tuning_thread is not None:
            self._tuning_thread.join()
            self._tuning_thread = None
        self._stopped_at = time.perf_counter()
        self._close_window(tune=False)

    def __enter__(self) -> "KVServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _lane_for(self, key: int) -> _Lane:
        if self.n_lanes == 1:
            return self.lanes[0]
        return self.lanes[shard_of_key(key, self.n_lanes)]

    def try_submit(self, request: Request) -> bool:
        """Open-loop admission: enqueue or reject immediately (bounded
        queue full = backpressure). Returns ``False`` on rejection."""
        if not self._running:
            raise ServeError("server is not running")
        lane = self._lane_for(request.key)
        request.t_submit = time.perf_counter()
        try:
            lane.queue.put_nowait(request)
            return True
        except queue.Full:
            with lane.reject_lock:
                lane.rejected += 1
            return False

    def submit(self, request: Request, timeout: Optional[float] = None) -> bool:
        """Closed-loop admission: block the producer until the lane queue
        has room (or ``timeout`` elapses — then reject)."""
        if not self._running:
            raise ServeError("server is not running")
        lane = self._lane_for(request.key)
        request.t_submit = time.perf_counter()
        try:
            lane.queue.put(request, timeout=timeout)
            return True
        except queue.Full:
            with lane.reject_lock:
                lane.rejected += 1
            return False

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _drain(self, lane: _Lane) -> Tuple[List[Request], bool]:
        """Block for the next request, then opportunistically drain up to
        ``max_batch`` queued requests. Returns ``(batch, saw_sentinel)``."""
        batch: List[Request] = []
        try:
            first = lane.queue.get(timeout=0.05)
        except queue.Empty:
            return batch, False
        if first is None:
            return batch, True
        batch.append(first)
        while len(batch) < lane.max_batch:
            try:
                request = lane.queue.get_nowait()
            except queue.Empty:
                break
            if request is None:
                return batch, True
            batch.append(request)
        return batch, False

    @staticmethod
    def _flush_puts(tree, run: List[Request]) -> None:
        """Apply a run of consecutive puts as one vectorized batch."""
        if not run:
            return
        keys = np.fromiter((r.key for r in run), dtype=np.int64, count=len(run))
        values = np.fromiter(
            (r.value for r in run), dtype=np.int64, count=len(run)
        )
        tree.put_batch(keys, values)
        run.clear()

    def _serve_batch(self, lane: _Lane, batch: List[Request]) -> None:
        """Serve one drained batch (``serve.batch`` root span when a
        tracer is attached; see :meth:`_serve_batch_impl` for semantics).
        """
        tracer = self.tracer
        if tracer is None:
            return self._serve_batch_impl(lane, batch)
        with tracer.span(
            "serve.batch", lane=lane.index, n_requests=len(batch)
        ):
            return self._serve_batch_impl(lane, batch)

    def _serve_batch_impl(self, lane: _Lane, batch: List[Request]) -> None:
        """Serve one drained batch.

        Point requests run under the lane lock only. Within a batch, puts
        and deletes are applied first (puts as one vectorized
        ``put_batch``) and gets then resolved as one ``get_batch`` — the
        same one-chunk reordering the offline :class:`MissionRunner` does.
        Range requests are *cross-shard* (hash partitioning does not
        preserve key order), so they run against the whole engine with
        every lane lock held — through
        :func:`repro.serve.locks.ordered_lane_locks` (ascending index
        order), never while holding this lane's own lock, so concurrent
        range-serving lanes cannot deadlock. The drained ranges coalesce into one
        ``range_scan_batch`` call; each range request's ``result`` is its
        ``(keys, values)`` array pair, sorted by key.
        """
        tree = lane.tree
        writes = [r for r in batch if r.kind in (REQ_PUT, REQ_DELETE)]
        reads = [r for r in batch if r.kind == REQ_GET]
        ranges = [r for r in batch if r.kind == REQ_RANGE]
        with lane.lock:
            # Puts and deletes keep their relative submission order (a
            # DELETE(k) → PUT(k, v) pair in one batch must leave v live):
            # consecutive puts coalesce into one put_batch, deletes flush
            # the run and go through the tombstone path individually.
            run: List[Request] = []
            for request in writes:
                if request.kind == REQ_PUT:
                    run.append(request)
                    continue
                self._flush_puts(tree, run)
                tree.delete(request.key)
            self._flush_puts(tree, run)
            if reads:
                keys = np.fromiter(
                    (r.key for r in reads), dtype=np.int64, count=len(reads)
                )
                found, values = tree.get_batch(keys)
                for i, request in enumerate(reads):
                    request.result = int(values[i]) if found[i] else None
        if ranges:
            with ordered_lane_locks(self.lanes):
                # One engine-wide batch per drain: the coalesced call
                # counts and charges exactly like per-request
                # range_lookup calls in drain order, but resolves run
                # segments once per run per batch.
                los = np.fromiter(
                    (r.key for r in ranges), dtype=np.int64, count=len(ranges)
                )
                his = np.fromiter(
                    (r.key + max(0, r.span - 1) for r in ranges),
                    dtype=np.int64,
                    count=len(ranges),
                )
                keys, values, offsets = self.engine.range_scan_batch(los, his)
                bounds = offsets.tolist()
                for i, request in enumerate(ranges):
                    request.result = (
                        keys[bounds[i] : bounds[i + 1]],
                        values[bounds[i] : bounds[i + 1]],
                    )
        now = time.perf_counter()
        for request in batch:
            request.t_done = now
            lane.histogram(request.tenant).record(now - request.t_submit)
            if request.done is not None:
                request.done.set()
        lane.completed += len(batch)
        if (
            self.window_ops > 0
            and self.total_completed - self._last_window_ops() >= self.window_ops
        ):
            self._window_wake.set()

    def _worker_loop(self, lane: _Lane) -> None:
        while True:
            lane.sample_depth()
            batch, stop = self._drain(lane)
            if batch:
                self._serve_batch(lane, batch)
            if stop:
                if self._draining:
                    # Serve whatever is still queued, then exit.
                    while True:
                        rest: List[Request] = []
                        while len(rest) < lane.max_batch:
                            try:
                                request = lane.queue.get_nowait()
                            except queue.Empty:
                                break
                            if request is not None:
                                rest.append(request)
                        if not rest:
                            break
                        self._serve_batch(lane, rest)
                return
            if not self._running and not self._draining:
                return

    # ------------------------------------------------------------------
    # Mission windows and tuning
    # ------------------------------------------------------------------
    def _last_window_ops(self) -> int:
        return self.windows[-1].completed if self.windows else 0

    def _close_window(self, tune: bool) -> None:
        """Close the current mission window on every lane (lane by lane,
        under the lane lock — other lanes keep serving), feed the tuners
        and open the next window. The window mutex keeps this and
        :meth:`checkpoint` from interleaving window cuts."""
        with self._window_mutex:
            parts: List[MissionStats] = []
            policies: List[List[int]] = []
            for lane_index, lane in enumerate(self.lanes):
                with lane.lock:
                    part = lane.tree.end_mission()
                    if tune and self.tuners:
                        self.tuners[lane_index].observe_mission(lane.tree, part)
                    if tune:
                        lane.tree.begin_mission()
                    parts.append(part)
                    policies.append(list(lane.tree.policies()))
            self._append_window(parts, policies)

    def _append_window(
        self, parts: List[MissionStats], policies: List[List[int]]
    ) -> None:
        """Record one closed window (caller holds the window mutex)."""
        merged = merge_mission_stats(len(self.windows), parts)
        self.windows.append(
            ServerWindow(
                index=len(self.windows),
                stats=merged,
                parts=parts,
                completed=self.total_completed,
                rejected=self.total_rejected,
                policies=policies,
            )
        )

    def _tuning_loop(self) -> None:
        while self._running:
            self._window_wake.wait(timeout=0.05)
            self._window_wake.clear()
            if not self._running:
                return
            if self.total_completed - self._last_window_ops() >= self.window_ops:
                self._close_window(tune=True)

    # ------------------------------------------------------------------
    # Checkpointing (between windows)
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Snapshot the live engine to ``path``.

        All lanes are paused (locks held) and the open mission window is
        closed around the snapshot — :mod:`repro.persist` refuses to
        serialize mid-mission state (DESIGN.md §6). Traffic may keep
        arriving; it queues while the snapshot is cut. Only a *running*
        server can be checkpointed this way (``stop()`` already closed
        the final window); snapshot a stopped server's engine directly
        with :func:`repro.persist.save_engine`.
        """
        from repro.persist import save_engine

        if not self._running:
            raise ServeError(
                "checkpoint requires a running server; after stop() use "
                "repro.persist.save_engine on the engine directly"
            )

        # _window_mutex blocks a concurrent tuning-loop window cut while the
        # lanes are frozen in ascending order.
        with self._window_mutex, ordered_lane_locks(self.lanes):
            parts = [lane.tree.end_mission() for lane in self.lanes]
            save_engine(self.engine, path, meta={"live_server": True})
            for lane in self.lanes:
                lane.tree.begin_mission()
            self._append_window(
                    parts, [list(l.tree.policies()) for l in self.lanes]
                )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def total_completed(self) -> int:
        return sum(lane.completed for lane in self.lanes)

    @property
    def total_rejected(self) -> int:
        return sum(lane.rejected for lane in self.lanes)

    @property
    def elapsed(self) -> float:
        """Wall seconds the server has been (or was) running."""
        if self._started_at == 0.0:
            return 0.0
        end = self._stopped_at if self._stopped_at else time.perf_counter()
        return end - self._started_at

    @property
    def throughput(self) -> float:
        """Completed requests per wall second over the server's lifetime."""
        elapsed = self.elapsed
        return self.total_completed / elapsed if elapsed > 0 else 0.0

    def queue_depths(self) -> List[int]:
        """Current queue depth per lane."""
        return [lane.queue.qsize() for lane in self.lanes]

    def mean_queue_depth(self) -> float:
        """Queue depth averaged over every batch-drain sample, all lanes."""
        samples = sum(lane.depth_samples for lane in self.lanes)
        total = sum(lane.depth_sum for lane in self.lanes)
        return total / samples if samples else 0.0

    def max_queue_depth(self) -> int:
        return max((lane.depth_max for lane in self.lanes), default=0)

    def histogram(self, tenant: Optional[str] = None) -> LatencyHistogram:
        """Merged latency histogram — all lanes, one tenant or all.

        Cumulative over the server's lifetime. Safe to call while traffic
        flows (the dict is snapshotted before iterating), but a histogram
        being written concurrently is read approximately; read after the
        queues drain for exact counts.
        """
        parts = [
            hist
            for lane in self.lanes
            for name, hist in list(lane.histograms.items())
            if tenant is None or name == tenant
        ]
        return LatencyHistogram.merged(parts)

    def tenants(self) -> List[str]:
        names = {
            name for lane in self.lanes for name in list(lane.histograms)
        }
        return sorted(names)
