"""Streaming log-bucketed latency histograms for the serving layer.

The serving subsystem measures *wall-clock* request latency (queueing +
service), which is unbounded and heavy-tailed — exactly what a fixed-width
histogram handles badly. :class:`LatencyHistogram` uses geometrically
spaced buckets (a fixed number per decade, HdrHistogram style): any
recorded value lands in a bucket whose edges are within a known *relative*
error of the true value, so quantile estimates carry a guaranteed relative
error bound of ``bucket_growth() - 1`` regardless of where the mass lies.

Histograms are plain count arrays, so they **merge** by addition: per-shard
and per-tenant histograms recorded lock-free by single writer threads are
combined after the fact, and merging is associative and commutative (a
property test in ``tests/test_latency.py`` checks this). Exact count, sum,
min and max are tracked alongside the buckets, so means are exact and only
quantiles are approximate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: Default resolution: 10^(1/40) growth ≈ 5.9 % relative quantile error.
DEFAULT_BUCKETS_PER_DECADE = 40

#: Default measurable range: 100 ns .. 1000 s of wall-clock latency.
DEFAULT_MIN_LATENCY = 1e-7
DEFAULT_MAX_LATENCY = 1e3


class LatencyHistogram:
    """A mergeable histogram with geometrically spaced buckets.

    Bucket ``i`` (``0 <= i < n_buckets``) covers latencies in
    ``[min_latency * g**i, min_latency * g**(i+1))`` with
    ``g = 10**(1/buckets_per_decade)``. Values below ``min_latency`` clamp
    into the first bucket, values at or above ``max_latency`` into the
    last — the error bound holds for everything in range.

    Recording is not synchronized: each histogram must have a single
    writer (the serving layer keeps one per worker thread) and readers
    merge copies.
    """

    # Bucket geometry derived deterministically from constructor arguments;
    # only the counts array is mutable state.
    _snapshot_exempt = frozenset({"n_buckets", "_log_min", "_scale"})

    def __init__(
        self,
        min_latency: float = DEFAULT_MIN_LATENCY,
        max_latency: float = DEFAULT_MAX_LATENCY,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        if min_latency <= 0.0 or max_latency <= min_latency:
            raise ConfigError(
                f"need 0 < min_latency < max_latency, got "
                f"{min_latency}, {max_latency}"
            )
        if buckets_per_decade < 1:
            raise ConfigError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.min_latency = float(min_latency)
        self.max_latency = float(max_latency)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_latency / self.min_latency)
        self.n_buckets = max(1, int(math.ceil(decades * buckets_per_decade)))
        self.counts = np.zeros(self.n_buckets, dtype=np.int64)
        # Exact side statistics (buckets only approximate the distribution).
        self.count = 0
        self.sum = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0
        # Precomputed for vectorized index math.
        self._log_min = math.log10(self.min_latency)
        self._scale = float(buckets_per_decade)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _index(self, seconds: float) -> int:
        if seconds < self.min_latency:
            return 0
        i = int((math.log10(seconds) - self._log_min) * self._scale)
        return min(i, self.n_buckets - 1)

    def record(self, seconds: float) -> None:
        """Record one latency measurement (in seconds)."""
        if seconds < 0.0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self.counts[self._index(seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds < self.min_seen:
            self.min_seen = seconds
        if seconds > self.max_seen:
            self.max_seen = seconds

    def record_many(self, seconds: Sequence[float]) -> None:
        """Vectorized :meth:`record` for an array of measurements."""
        values = np.asarray(seconds, dtype=np.float64)
        if len(values) == 0:
            return
        if (values < 0.0).any():
            raise ValueError("latencies must be >= 0")
        clipped = np.maximum(values, self.min_latency)
        idx = ((np.log10(clipped) - self._log_min) * self._scale).astype(np.int64)
        np.clip(idx, 0, self.n_buckets - 1, out=idx)
        np.add.at(self.counts, idx, 1)
        self.count += len(values)
        self.sum += float(values.sum())
        self.min_seen = min(self.min_seen, float(values.min()))
        self.max_seen = max(self.max_seen, float(values.max()))

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def compatible_with(self, other: "LatencyHistogram") -> bool:
        return (
            self.min_latency == other.min_latency
            and self.max_latency == other.max_latency
            and self.buckets_per_decade == other.buckets_per_decade
        )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Add ``other``'s contents into this histogram (in place)."""
        if not self.compatible_with(other):
            raise ConfigError("cannot merge histograms with different bucketing")
        self.counts += other.counts
        self.count += other.count
        self.sum += other.sum
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)
        return self

    def copy(self) -> "LatencyHistogram":
        clone = LatencyHistogram(
            self.min_latency, self.max_latency, self.buckets_per_decade
        )
        clone.counts = self.counts.copy()
        clone.count = self.count
        clone.sum = self.sum
        clone.min_seen = self.min_seen
        clone.max_seen = self.max_seen
        return clone

    def diff(self, base: "LatencyHistogram") -> "LatencyHistogram":
        """Everything recorded since ``base`` (an earlier copy of this
        histogram's contents). Bucket counts, count and sum subtract
        exactly. When ``base`` holds recordings, the delta period's exact
        min/max are unknowable, so they tighten to the outermost
        non-empty delta buckets' edges — the quantile error bound is
        unaffected."""
        if not self.compatible_with(base):
            raise ConfigError("cannot diff histograms with different bucketing")
        delta = self.copy()
        delta.counts = self.counts - base.counts
        if (delta.counts < 0).any() or self.count < base.count:
            raise ValueError("base is not a prefix of this histogram")
        delta.count = self.count - base.count
        delta.sum = max(0.0, self.sum - base.sum)
        if base.count == 0:
            return delta  # the copy's exact min/max already apply
        nonzero = np.flatnonzero(delta.counts)
        if len(nonzero) == 0:
            delta.min_seen = math.inf
            delta.max_seen = 0.0
        else:
            delta.min_seen = self.bucket_edges(int(nonzero[0]))[0]
            delta.max_seen = self.bucket_edges(int(nonzero[-1]))[1]
        return delta

    @classmethod
    def merged(
        cls,
        parts: Iterable["LatencyHistogram"],
        template: Optional["LatencyHistogram"] = None,
    ) -> "LatencyHistogram":
        """A fresh histogram holding the sum of ``parts``.

        With no parts the result is an empty histogram bucketed like
        ``template`` (or default-bucketed when none is given)."""
        result: Optional[LatencyHistogram] = None
        for part in parts:
            if result is None:
                result = part.copy()
            else:
                result.merge(part)
        if result is not None:
            return result
        if template is not None:
            return cls(
                template.min_latency,
                template.max_latency,
                template.buckets_per_decade,
            )
        return cls()

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def bucket_growth(self) -> float:
        """The geometric bucket width ``g``; quantiles are exact to within
        a factor of ``g`` (relative error ``g - 1``)."""
        return 10.0 ** (1.0 / self.buckets_per_decade)

    def bucket_edges(self, index: int) -> Tuple[float, float]:
        """The ``[lo, hi)`` latency range bucket ``index`` covers."""
        g = self.bucket_growth()
        lo = self.min_latency * g**index
        return lo, lo * g

    def quantile_bounds(self, q: float) -> Tuple[float, float]:
        """Edges of the bucket containing the ``q``-quantile (0 with no
        recorded data). The true quantile of the recorded in-range samples
        lies within these bounds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0, 0.0
        # The k-th order statistic (1-based), matching the "lower" method.
        rank = min(self.count, max(1, int(math.ceil(q * self.count))))
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, rank))
        return self.bucket_edges(index)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated as the geometric midpoint of its
        bucket, clamped into the exact observed ``[min, max]`` range."""
        lo, hi = self.quantile_bounds(q)
        if hi == 0.0:
            return 0.0
        estimate = math.sqrt(lo * hi)
        return min(max(estimate, self.min_seen), self.max_seen)

    def percentiles(
        self, points: Sequence[float] = (50.0, 95.0, 99.0, 99.9)
    ) -> Dict[float, float]:
        """Quantile estimates for percentile ``points`` (e.g. 99.9)."""
        return {p: self.quantile(p / 100.0) for p in points}

    @property
    def mean(self) -> float:
        """Exact mean of all recorded latencies (0 with no data)."""
        return self.sum / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @staticmethod
    def _percentile_key(point: float) -> str:
        """``50.0 -> "p50"``, ``99.9 -> "p999"`` — the benchmark metrics
        vocabulary (``p50_ms`` / ``p99_ms`` / ``p999_ms``)."""
        text = f"{point:g}".replace(".", "")
        return f"p{text}"

    def percentile_summary(
        self,
        points: Sequence[float] = (50.0, 99.0, 99.9),
        unit: str = "ms",
    ) -> Dict[str, float]:
        """Named percentile estimates, scaled to ``unit``.

        Returns ``{"p50_ms": ..., "p99_ms": ..., "p999_ms": ...}`` — the
        single source of the p-latency columns emitted by the serving
        experiments and benchmarks, so the key naming and unit scaling
        live in one place.
        """
        try:
            scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
        except KeyError:
            raise ValueError(f"unit must be s, ms or us, got {unit!r}") from None
        return {
            f"{self._percentile_key(p)}_{unit}": self.quantile(p / 100.0) * scale
            for p in points
        }

    def render(
        self,
        points: Sequence[float] = (50.0, 95.0, 99.0, 99.9),
        unit: str = "ms",
    ) -> str:
        """One-line ``p50=...ms p95=...ms ...`` rendering of ``points``."""
        try:
            scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
        except KeyError:
            raise ValueError(f"unit must be s, ms or us, got {unit!r}") from None
        return " ".join(
            f"p{p:g}={self.quantile(p / 100.0) * scale:.3f}{unit}"
            for p in points
        )

    def summary(self) -> str:
        """One-line ``count/mean/p50/p95/p99/p99.9/max`` summary (ms)."""
        if self.count == 0:
            return "no samples"
        return (
            f"n={self.count} mean={self.mean * 1e3:.3f}ms "
            f"{self.render()} max={self.max_seen * 1e3:.3f}ms"
        )

    # ------------------------------------------------------------------
    # Persistence (used by the obs metrics registry)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot (primitives + one numpy array)."""
        return {
            "min_latency": self.min_latency,
            "max_latency": self.max_latency,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": self.counts.copy(),
            "count": self.count,
            "sum": self.sum,
            "min_seen": self.min_seen,
            "max_seen": self.max_seen,
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`state_dict` output."""
        hist = cls(
            float(state["min_latency"]),
            float(state["max_latency"]),
            int(state["buckets_per_decade"]),
        )
        counts = np.asarray(state["counts"], dtype=np.int64)
        if counts.shape != hist.counts.shape:
            raise ConfigError(
                f"histogram state has {counts.shape[0]} buckets, "
                f"expected {hist.n_buckets}"
            )
        hist.counts = counts.copy()
        hist.count = int(state["count"])
        hist.sum = float(state["sum"])
        hist.min_seen = float(state["min_seen"])
        hist.max_seen = float(state["max_seen"])
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyHistogram({self.summary()})"
