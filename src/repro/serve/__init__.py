"""Concurrent serving subsystem: live traffic over simulated engines.

Layers (DESIGN.md §7):

* :mod:`repro.serve.latency` — mergeable log-bucketed latency histograms;
* :mod:`repro.serve.server` — :class:`KVServer`, per-shard worker lanes
  with bounded queues, the background tuning loop, live checkpointing;
* :mod:`repro.serve.loadgen` — open-loop (Poisson) and closed-loop clients
  replaying the deterministic workload generators as timed request
  streams, including multi-tenant mixes;
* :mod:`repro.serve.experiments` — the canonical serving comparison
  (static vs Lerp-tuned × shard counts) behind the
  ``serving_tail_latency`` benchmark and the ``python -m repro.serve`` CLI.
"""

from repro.serve.latency import LatencyHistogram
from repro.serve.locks import ascending_lane_order, ordered_lane_locks
from repro.serve.loadgen import (
    ClientResult,
    ClosedLoopClient,
    LoadReport,
    OpenLoopClient,
    TenantSpec,
    request_stream,
    requests_from_mission,
    run_load,
)
from repro.serve.server import (
    REQ_DELETE,
    REQ_GET,
    REQ_PUT,
    REQ_RANGE,
    KVServer,
    Request,
    ServerWindow,
)
from repro.serve.experiments import (
    ServingRun,
    ServingScale,
    build_server,
    calibrate_lane_capacity,
    format_serving_report,
    run_serving_comparison,
    run_serving_config,
    serving_scale,
)

__all__ = [
    "LatencyHistogram",
    "ascending_lane_order",
    "ordered_lane_locks",
    "KVServer",
    "Request",
    "ServerWindow",
    "REQ_GET",
    "REQ_PUT",
    "REQ_DELETE",
    "REQ_RANGE",
    "OpenLoopClient",
    "ClosedLoopClient",
    "TenantSpec",
    "ClientResult",
    "LoadReport",
    "run_load",
    "request_stream",
    "requests_from_mission",
    "ServingRun",
    "ServingScale",
    "serving_scale",
    "calibrate_lane_capacity",
    "build_server",
    "run_serving_config",
    "run_serving_comparison",
    "format_serving_report",
]
