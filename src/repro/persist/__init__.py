"""Checkpoint/restore for engines, tuners and whole stores.

High-level entry points::

    from repro.persist import save_store, load_store

    save_store(store, "run.ckpt")          # everything: engine + tuners + logs
    store = load_store("run.ckpt")         # fresh process, bit-exact resume

    save_engine(tree, "tree.snap")         # just a storage engine
    save_tuner(lerp, config, "lerp.snap")  # just a trained tuner (transfer)

See DESIGN.md §6 for the format and the restore invariants.
"""

from repro.persist.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    config_from_state,
    config_to_state,
    lerp_config_from_state,
    lerp_config_to_state,
    load_engine,
    load_obs,
    load_snapshot,
    load_store,
    load_tuner,
    save_engine,
    save_obs,
    save_snapshot,
    save_store,
    save_tuner,
    store_from_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "save_snapshot",
    "load_snapshot",
    "save_engine",
    "load_engine",
    "save_tuner",
    "load_tuner",
    "save_store",
    "load_store",
    "save_obs",
    "load_obs",
    "store_from_snapshot",
    "config_to_state",
    "config_from_state",
    "lerp_config_to_state",
    "lerp_config_from_state",
]
