"""Versioned snapshot files for engines, tuners and whole stores.

The paper's deployment story depends on state that outlives a process: Lerp
is "pre-trained offline and redeployed" across workloads, and long benchmark
runs must be resumable. This module is the on-disk half of that story; the
in-memory half is the ``state_dict()`` / ``load_state_dict()`` hooks that
every stateful component implements (see DESIGN.md §6).

A snapshot file is a single pickled payload::

    {
        "magic": "repro-snapshot",
        "format_version": 1,
        "kind": "engine" | "store" | "tuner",
        "repro_version": "...",          # library that wrote the file
        "meta": {...},                   # caller-supplied annotations
        "state": {...},                  # the actual state dictionary
    }

``state`` contains only primitives, numpy arrays and nested containers of
them — never live objects — so the format survives refactors of the classes
it describes. ``load_snapshot`` validates magic, version and kind before
anything is interpreted; mismatches raise :class:`SnapshotError` instead of
failing deep inside a restore.

Restore invariants (asserted by ``tests/test_persist.py``):

* **Bit-exactness** — an engine/store restored from a snapshot and driven
  with the remaining operation stream produces *identical* mission stats,
  simulated clock, I/O counters and tree structure as a process that never
  snapshotted. (The one exception is ``MissionStats.model_update_time``,
  which measures host wall-clock by design.)
* **Same blueprint** — a snapshot restores only into an object built with
  the same configuration (sizes, shard count, agent architecture); loaders
  verify the cheap invariants (capacities, shard counts, parameter shapes)
  and raise rather than silently reinterpreting state.
* **Between missions** — snapshots are taken with no mission window open.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from typing import Callable, Dict, List, Optional

from repro import __version__
from repro.config import (
    BloomMode,
    BloomScheme,
    CostModelParams,
    SystemConfig,
    TransitionKind,
)
from repro.core.lerp import Lerp, LerpConfig
from repro.core.ruskey import RusKey
from repro.core.tuners import Tuner
from repro.durable.atomio import publish_bytes
from repro.engine.sharded import ShardedStore
from repro.errors import SnapshotError
from repro.lsm.flsm import FLSMTree
from repro.lsm.tree import LSMTree
from repro.rl.ddpg import DDPGConfig
from repro.rl.dqn import DQNConfig

MAGIC = "repro-snapshot"
FORMAT_VERSION = 1

#: Engine classes the loader can rebuild from a blueprint, by tag. Order
#: matters when classifying: subclasses before their bases.
_ENGINE_TAGS = (
    ("sharded", ShardedStore),
    ("flsm", FLSMTree),
    ("lsm", LSMTree),
)


# ----------------------------------------------------------------------
# Config (de)serialization
# ----------------------------------------------------------------------
def config_to_state(config: SystemConfig) -> Dict[str, object]:
    """``SystemConfig`` as a plain dict (enums by value)."""
    state = dataclasses.asdict(config)
    state["bloom_scheme"] = config.bloom_scheme.value
    state["bloom_mode"] = config.bloom_mode.value
    return state


def config_from_state(state: Dict[str, object]) -> SystemConfig:
    """Rebuild a ``SystemConfig`` from :func:`config_to_state` output."""
    fields = dict(state)
    fields["bloom_scheme"] = BloomScheme(fields["bloom_scheme"])
    fields["bloom_mode"] = BloomMode(fields["bloom_mode"])
    fields["costs"] = CostModelParams(**fields["costs"])
    return SystemConfig(**fields)


def lerp_config_to_state(config: LerpConfig) -> Dict[str, object]:
    """``LerpConfig`` (with its nested agent configs) as a plain dict."""
    state = dataclasses.asdict(config)
    state["transition"] = config.transition.value
    state["ddpg"]["hidden"] = list(config.ddpg.hidden)
    state["dqn"]["hidden"] = list(config.dqn.hidden)
    state["policy_dqn"]["hidden"] = list(config.policy_dqn.hidden)
    return state


def lerp_config_from_state(state: Dict[str, object]) -> LerpConfig:
    """Rebuild a ``LerpConfig`` from :func:`lerp_config_to_state` output."""
    fields = dict(state)
    fields["transition"] = TransitionKind(fields["transition"])
    ddpg = dict(fields["ddpg"])
    ddpg["hidden"] = tuple(ddpg["hidden"])
    fields["ddpg"] = DDPGConfig(**ddpg)
    dqn = dict(fields["dqn"])
    dqn["hidden"] = tuple(dqn["hidden"])
    fields["dqn"] = DQNConfig(**dqn)
    if "policy_dqn" in fields:  # absent in pre-policy snapshots
        policy_dqn = dict(fields["policy_dqn"])
        policy_dqn["hidden"] = tuple(policy_dqn["hidden"])
        fields["policy_dqn"] = DQNConfig(**policy_dqn)
    return LerpConfig(**fields)


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------
def save_snapshot(
    path: str,
    kind: str,
    state: Dict[str, object],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write ``state`` to ``path`` as a versioned snapshot (atomically
    *and* durably via :mod:`repro.durable.atomio`: the published file is
    complete or absent, never half-written, and both its bytes and the
    rename are fsync'd before this returns)."""
    payload = {
        "magic": MAGIC,
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "repro_version": __version__,
        "meta": dict(meta) if meta else {},
        "state": state,
    }
    path = os.fspath(path)
    try:
        blob = pickle.dumps(payload, protocol=4)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise SnapshotError(
            f"snapshot state for {path} is not serializable (state dicts "
            f"must hold only primitives and numpy arrays): {exc}"
        ) from exc
    try:
        publish_bytes(path, blob, suffix=f".tmp.{os.getpid()}")
    except OSError as exc:
        raise SnapshotError(f"cannot write snapshot to {path}: {exc}") from exc


def load_snapshot(
    path: str, expected_kind: Optional[str] = None
) -> Dict[str, object]:
    """Read and validate a snapshot; returns the full payload dict."""
    try:
        with open(os.fspath(path), "rb") as fh:
            payload = pickle.load(fh)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    except (pickle.UnpicklingError, EOFError) as exc:
        raise SnapshotError(f"{path} is not a repro snapshot: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
        raise SnapshotError(f"{path} is not a repro snapshot")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"{path} has snapshot format version {version}; this library "
            f"reads version {FORMAT_VERSION}"
        )
    if expected_kind is not None and payload.get("kind") != expected_kind:
        raise SnapshotError(
            f"{path} holds a {payload.get('kind')!r} snapshot, "
            f"expected {expected_kind!r}"
        )
    return payload


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
def _classify_engine(engine: object) -> str:
    # Imported lazily: repro.durable calls back into this module's config
    # helpers, so neither package imports the other at module level.
    from repro.durable.store import DurableStore

    if isinstance(engine, DurableStore):
        return "durable"
    for tag, cls in _ENGINE_TAGS:
        if isinstance(engine, cls):
            return tag
    raise SnapshotError(
        f"cannot snapshot engine of type {type(engine).__name__}; known "
        f"kinds are {['durable'] + [tag for tag, _ in _ENGINE_TAGS]}"
    )


def _build_engine(
    tag: str,
    config: SystemConfig,
    n_shards: int,
    engine_state: Optional[Dict[str, object]] = None,
):
    if tag == "durable":
        from repro.durable.store import DurableStore

        if not engine_state or "data_dir" not in engine_state:
            raise SnapshotError(
                "durable engine snapshot carries no data_dir to reopen"
            )
        # Re-materialization happens in load_state_dict; opening the
        # directory here just establishes (or recovers) the store files.
        return DurableStore(str(engine_state["data_dir"]), config)
    if tag == "sharded":
        return ShardedStore(config, n_shards)
    if tag == "flsm":
        return FLSMTree(config)
    if tag == "lsm":
        return LSMTree(config)
    raise SnapshotError(f"unknown engine kind in snapshot: {tag!r}")


def save_engine(
    engine, path: str, meta: Optional[Dict[str, object]] = None
) -> None:
    """Snapshot a bare engine (tree or sharded store) with its config, so
    :func:`load_engine` can rebuild it without any caller-supplied context."""
    tag = _classify_engine(engine)
    state = {
        "engine_kind": tag,
        "config": config_to_state(engine.config),
        "n_shards": getattr(engine, "n_shards", 1),
        "engine": engine.state_dict(),
    }
    save_snapshot(path, "engine", state, meta)


def load_engine(path: str):
    """Rebuild and restore an engine from a :func:`save_engine` snapshot."""
    payload = load_snapshot(path, expected_kind="engine")
    state = payload["state"]
    config = config_from_state(state["config"])
    engine = _build_engine(
        state["engine_kind"], config, int(state["n_shards"]), state["engine"]
    )
    engine.load_state_dict(state["engine"])
    return engine


# ----------------------------------------------------------------------
# Tuners
# ----------------------------------------------------------------------
def _tuner_blueprint(tuner: Tuner) -> Dict[str, object]:
    """How to rebuild ``tuner`` in a fresh process.

    Lerp tuners are rebuilt from their (plain-data) config; the simple
    baselines hold only construction-time configuration and pickle cleanly.
    Anything else must be supplied by the caller at load time.
    """
    if isinstance(tuner, Lerp):
        return {"kind": "lerp", "config": lerp_config_to_state(tuner.config)}
    try:
        return {"kind": "pickled", "data": pickle.dumps(tuner, protocol=4)}
    except Exception as exc:
        raise SnapshotError(
            f"tuner {type(tuner).__name__} cannot be serialized; make it "
            "picklable (or snapshot its state_dict() separately)"
        ) from exc


def _tuner_from_blueprint(
    blueprint: Dict[str, object], system_config: SystemConfig
) -> Tuner:
    if blueprint["kind"] == "lerp":
        return Lerp(system_config, lerp_config_from_state(blueprint["config"]))
    return pickle.loads(blueprint["data"])


def save_tuner(
    tuner: Tuner,
    system_config: SystemConfig,
    path: str,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Snapshot one tuner (e.g. a trained Lerp for later redeployment)."""
    state = {
        "blueprint": _tuner_blueprint(tuner),
        "system_config": config_to_state(system_config),
        "tuner": tuner.state_dict(),
    }
    save_snapshot(path, "tuner", state, meta)


def load_tuner(path: str) -> Tuner:
    """Rebuild and restore a tuner from a :func:`save_tuner` snapshot."""
    payload = load_snapshot(path, expected_kind="tuner")
    state = payload["state"]
    tuner = _tuner_from_blueprint(
        state["blueprint"], config_from_state(state["system_config"])
    )
    tuner.load_state_dict(state["tuner"])
    return tuner


# ----------------------------------------------------------------------
# Whole stores
# ----------------------------------------------------------------------
def save_store(
    store: RusKey, path: str, meta: Optional[Dict[str, object]] = None
) -> None:
    """Snapshot a whole :class:`RusKey` store: engine, tuner(s), controller
    logs, and the blueprint needed to rebuild everything in a fresh
    process."""
    store_state = store.state_dict()
    unique_tuners = (
        store.tuners[:1] if store_state["tuners_shared"] else store.tuners
    )
    state = {
        "engine_kind": _classify_engine(store.engine),
        "config": config_to_state(store.config),
        "n_shards": getattr(store.engine, "n_shards", 1),
        "chunk_size": store_state["chunk_size"],
        "tuner_blueprints": [_tuner_blueprint(t) for t in unique_tuners],
        "store": store_state,
    }
    save_snapshot(path, "store", state, meta)


def load_store(
    path: str,
    tuner_factory: Optional[Callable[[SystemConfig], Tuner]] = None,
) -> RusKey:
    """Rebuild and restore a :class:`RusKey` from a :func:`save_store`
    snapshot. ``tuner_factory`` overrides the snapshot's tuner blueprints
    (e.g. to rebuild a custom tuner subclass yourself); the snapshot's
    saved tuner state is loaded into the rebuilt tuners either way, and a
    shared-tuner snapshot is rebuilt as one shared instance."""
    payload = load_snapshot(path, expected_kind="store")
    return store_from_snapshot(payload, tuner_factory=tuner_factory)


def store_from_snapshot(
    payload: Dict[str, object],
    tuner_factory: Optional[Callable[[SystemConfig], Tuner]] = None,
) -> RusKey:
    """Like :func:`load_store`, from an already-loaded snapshot payload
    (lets callers that inspect ``payload['meta']`` first avoid
    deserializing the file twice)."""
    state = payload["state"]
    config = config_from_state(state["config"])
    n_shards = int(state["n_shards"])
    engine = _build_engine(
        state["engine_kind"], config, n_shards, state["store"]["engine"]
    )
    n_targets = len(engine.tuning_targets())
    blueprints = state["tuner_blueprints"]
    shared = bool(state["store"]["tuners_shared"])
    if tuner_factory is not None:
        # Preserve the snapshot's topology: a shared tuner stays one
        # instance, so its (single) saved state restores into every slot.
        if shared:
            shared_tuner = tuner_factory(config)
            tuners: List[Tuner] = [shared_tuner] * n_targets
        else:
            tuners = [tuner_factory(config) for _ in range(n_targets)]
    elif shared and n_targets > 1:
        shared_tuner = _tuner_from_blueprint(blueprints[0], config)
        tuners = [shared_tuner] * n_targets
    else:
        tuners = [_tuner_from_blueprint(b, config) for b in blueprints]
    store = RusKey(
        config,
        engine=engine,
        tuners=tuners,
        chunk_size=int(state["chunk_size"]),
    )
    store.load_state_dict(state["store"])
    return store


# ----------------------------------------------------------------------
# Telemetry snapshots (kind "obs")
# ----------------------------------------------------------------------
def save_obs(
    path: str,
    registry=None,
    audit=None,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Snapshot telemetry state: a metrics registry and/or a decision
    audit log.

    Telemetry is host-side measurement, so it lives in its *own* snapshot
    kind rather than inside engine snapshots — engine state keeps the
    bit-exact-resume invariant (wall measurements excluded), while the
    registry/audit view of a run survives checkpoint/restore through this
    file (and an attached audit log additionally rides its Lerp's own
    ``state_dict``).
    """
    state = {
        "registry": None if registry is None else registry.state_dict(),
        "audit": None if audit is None else audit.state_dict(),
    }
    save_snapshot(path, "obs", state, meta)


def load_obs(path: str):
    """Rebuild ``(registry, audit)`` from a :func:`save_obs` snapshot;
    either element is ``None`` when it was not saved."""
    from repro.obs.audit import DecisionAuditLog
    from repro.obs.metrics import MetricsRegistry

    payload = load_snapshot(path, expected_kind="obs")
    state = payload["state"]
    registry = (
        None
        if state["registry"] is None
        else MetricsRegistry.from_state_dict(state["registry"])
    )
    audit = (
        None
        if state["audit"] is None
        else DecisionAuditLog.from_state_dict(state["audit"])
    )
    return registry, audit
