"""Reinforcement-learning substrate: networks, optimizers, replay, agents."""

from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.nn import MLP, Linear, ReLU, Tanh
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.rl.optim import SGD, Adam
from repro.rl.replay import ReplayBuffer

__all__ = [
    "MLP",
    "Linear",
    "ReLU",
    "Tanh",
    "Adam",
    "SGD",
    "ReplayBuffer",
    "OrnsteinUhlenbeckNoise",
    "GaussianNoise",
    "DDPGAgent",
    "DDPGConfig",
    "DQNAgent",
    "DQNConfig",
]
