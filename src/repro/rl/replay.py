"""Experience replay buffer.

RusKey's Lerp stores "experience samples" — quadruples of (state, action,
reward, next state) extracted from mission statistics — in a replay buffer
and samples mini-batches for actor-critic updates (paper Section 3.1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import RLError


class ReplayBuffer:
    """Circular buffer of transitions with uniform sampling."""

    # Shared Lerp-owned generator; its state is serialized once by Lerp.
    _snapshot_exempt = frozenset({"_rng"})

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
    ) -> None:
        if capacity < 1:
            raise RLError(f"capacity must be >= 1, got {capacity}")
        if state_dim < 1 or action_dim < 1:
            raise RLError("state_dim and action_dim must be >= 1")
        self.capacity = capacity
        self._states = np.zeros((capacity, state_dim))
        self._actions = np.zeros((capacity, action_dim))
        self._rewards = np.zeros(capacity)
        self._next_states = np.zeros((capacity, state_dim))
        self._dones = np.zeros(capacity)
        self._rng = rng
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def push(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool = False,
    ) -> None:
        """Append one transition, overwriting the oldest when full."""
        i = self._cursor
        self._states[i] = state
        self._actions[i] = action
        self._rewards[i] = reward
        self._next_states[i] = next_state
        self._dones[i] = float(done)
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(
        self, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniformly sample ``batch_size`` transitions (with replacement)."""
        if self._size == 0:
            raise RLError("cannot sample from an empty replay buffer")
        if batch_size < 1:
            raise RLError(f"batch_size must be >= 1, got {batch_size}")
        idx = self._rng.integers(0, self._size, size=batch_size)
        return (
            self._states[idx],
            self._actions[idx],
            self._rewards[idx],
            self._next_states[idx],
            self._dones[idx],
        )

    def clear(self) -> None:
        self._size = 0
        self._cursor = 0

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: the filled portion of every column plus
        the write cursor. The sampling RNG is owned (and snapshotted) by
        the agent's owner."""
        n = self._size
        return {
            "capacity": self.capacity,
            "size": n,
            "cursor": self._cursor,
            "states": self._states[:n].copy(),
            "actions": self._actions[:n].copy(),
            "rewards": self._rewards[:n].copy(),
            "next_states": self._next_states[:n].copy(),
            "dones": self._dones[:n].copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the buffer contents in place."""
        if int(state["capacity"]) != self.capacity:
            raise RLError(
                f"replay capacity mismatch: snapshot has {state['capacity']}, "
                f"this buffer holds {self.capacity}"
            )
        n = int(state["size"])
        if not 0 <= n <= self.capacity:
            raise RLError(f"invalid replay size in snapshot: {n}")
        self._states[:n] = state["states"]
        self._actions[:n] = state["actions"]
        self._rewards[:n] = state["rewards"]
        self._next_states[:n] = state["next_states"]
        self._dones[:n] = state["dones"]
        self._size = n
        self._cursor = int(state["cursor"]) % self.capacity
