"""Deep Deterministic Policy Gradient (Lillicrap et al., the paper's choice).

The paper (Section 5.1.4) selects DDPG for Lerp because it "has been shown
to be more effective compared with the classic models such as DQN". This is
a from-scratch implementation on :mod:`repro.rl.nn`:

* deterministic actor ``µ(s)`` with tanh output in ``[-1, 1]``;
* critic ``Q(s, a)`` taking the concatenated state-action;
* target copies of both, tracked by Polyak averaging;
* critic trained on the TD target
  ``y = r + γ (1 - done) Q'(s', µ'(s'))``;
* actor trained by the deterministic policy gradient: the gradient of
  ``-Q(s, µ(s))`` w.r.t. the action is computed by back-propagating through
  the critic's *input*, then pushed through the actor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import RLError
from repro.rl.nn import MLP
from repro.rl.noise import OrnsteinUhlenbeckNoise
from repro.rl.optim import Adam
from repro.rl.replay import ReplayBuffer


@dataclass(frozen=True)
class DDPGConfig:
    """Hyperparameters of one DDPG agent.

    The paper uses three hidden layers of 128 units for both networks;
    the default here is the same shape scaled down (the tuning state is a
    handful of scalars, so smaller nets converge in fewer missions and the
    benchmarks run faster). Pass ``hidden=(128, 128, 128)`` for the paper's
    exact architecture.
    """

    state_dim: int = 8
    action_dim: int = 1
    hidden: Sequence[int] = (32, 32)
    actor_lr: float = 2e-3
    critic_lr: float = 2e-3
    gamma: float = 0.85
    tau: float = 0.05
    buffer_capacity: int = 4096
    batch_size: int = 32
    noise_sigma: float = 0.4
    noise_decay: float = 0.99
    warmup: int = 8

    def validate(self) -> None:
        if self.state_dim < 1 or self.action_dim < 1:
            raise RLError("state_dim and action_dim must be >= 1")
        if not 0.0 <= self.gamma < 1.0:
            raise RLError(f"gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise RLError(f"tau must be in (0, 1], got {self.tau}")
        if self.batch_size < 1 or self.buffer_capacity < self.batch_size:
            raise RLError("need buffer_capacity >= batch_size >= 1")
        if self.warmup < 1:
            raise RLError(f"warmup must be >= 1, got {self.warmup}")


class DDPGAgent:
    """One actor-critic learner over a continuous action space."""

    # config is the immutable blueprint; _rng aliases the Lerp-owned
    # generator, whose bit-generator state Lerp serializes exactly once.
    _snapshot_exempt = frozenset({"config", "_rng"})

    def __init__(self, config: DDPGConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        hidden = list(config.hidden)
        self.actor = MLP(config.state_dim, hidden, config.action_dim, rng, "tanh")
        self.critic = MLP(config.state_dim + config.action_dim, hidden, 1, rng)
        self.target_actor = MLP(
            config.state_dim, hidden, config.action_dim, rng, "tanh"
        )
        self.target_critic = MLP(config.state_dim + config.action_dim, hidden, 1, rng)
        # Small final-layer init (Lillicrap et al. §7): keeps early actor
        # outputs near zero so exploration noise — not random saturation —
        # drives the first actions, and early Q estimates stay small.
        self._shrink_final_layer(self.actor, 0.05)
        self._shrink_final_layer(self.critic, 0.05)
        self.target_actor.copy_params_from(self.actor)
        self.target_critic.copy_params_from(self.critic)
        self.actor_opt = Adam(self.actor.params(), self.actor.grads(), config.actor_lr)
        self.critic_opt = Adam(
            self.critic.params(), self.critic.grads(), config.critic_lr
        )
        self.replay = ReplayBuffer(
            config.buffer_capacity, config.state_dim, config.action_dim, rng
        )
        self.noise = OrnsteinUhlenbeckNoise(
            config.action_dim, rng, sigma=config.noise_sigma, theta=0.3
        )
        self.updates_done = 0

    @staticmethod
    def _shrink_final_layer(net: MLP, scale: float) -> None:
        from repro.rl.nn import Linear

        for layer in reversed(net.layers):
            if isinstance(layer, Linear):
                layer.weight *= scale
                break

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        """Action in ``[-1, 1]^action_dim`` for ``state``; adds OU noise
        when exploring."""
        action = self.actor.forward(np.atleast_2d(state))[0]
        if explore:
            action = action + self.noise.sample()
        return np.clip(action, -1.0, 1.0)

    def decay_noise(self) -> None:
        self.noise.scale_sigma(self.config.noise_decay)

    def reset_exploration(self, sigma: Optional[float] = None) -> None:
        """Restore exploration after a detected workload change."""
        self.noise.sigma = sigma if sigma is not None else self.config.noise_sigma
        self.noise.reset()

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def observe(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool = False,
    ) -> None:
        self.replay.push(state, action, reward, next_state, done)

    def update(self) -> Optional[float]:
        """One gradient step on critic and actor from a replay mini-batch.

        Returns the critic TD loss, or ``None`` while the buffer has fewer
        than ``warmup`` samples.
        """
        if len(self.replay) < self.config.warmup:
            return None
        cfg = self.config
        states, actions, rewards, next_states, dones = self.replay.sample(
            cfg.batch_size
        )

        # --- critic update -------------------------------------------------
        next_actions = self.target_actor.forward(next_states)
        target_q = self.target_critic.forward(
            np.concatenate([next_states, next_actions], axis=1)
        )[:, 0]
        y = rewards + cfg.gamma * (1.0 - dones) * target_q

        self.critic.zero_grad()
        q = self.critic.forward(np.concatenate([states, actions], axis=1))[:, 0]
        td_error = q - y
        loss = float(np.mean(td_error**2))
        grad_q = (2.0 / cfg.batch_size) * td_error[:, None]
        self.critic.backward(grad_q)
        self.critic_opt.step()

        # --- actor update --------------------------------------------------
        self.actor.zero_grad()
        policy_actions = self.actor.forward(states)
        critic_in = np.concatenate([states, policy_actions], axis=1)
        self.critic.zero_grad()  # scratch use of critic; discard its grads
        self.critic.forward(critic_in)
        grad_in = self.critic.backward(np.full((cfg.batch_size, 1), 1.0))
        grad_action = grad_in[:, cfg.state_dim :]
        # Maximize Q  <=>  descend along -dQ/da, averaged over the batch.
        self.actor.backward(-grad_action / cfg.batch_size)
        self.critic.zero_grad()
        self.actor_opt.step()

        # --- target tracking ----------------------------------------------
        self.target_actor.soft_update_from(self.actor, cfg.tau)
        self.target_critic.soft_update_from(self.critic, cfg.tau)
        self.updates_done += 1
        return loss

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything learned or mutated since construction: the four
        networks, both optimizers, the replay buffer, the exploration-noise
        process and the update counter. The RNG shared with the owner is
        snapshotted by the owner."""
        return {
            "actor": self.actor.state_dict(),
            "critic": self.critic.state_dict(),
            "target_actor": self.target_actor.state_dict(),
            "target_critic": self.target_critic.state_dict(),
            "actor_opt": self.actor_opt.state_dict(),
            "critic_opt": self.critic_opt.state_dict(),
            "replay": self.replay.state_dict(),
            "noise": self.noise.state_dict(),
            "updates_done": self.updates_done,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the agent in place (networks must match in architecture)."""
        self.actor.load_state_dict(state["actor"])
        self.critic.load_state_dict(state["critic"])
        self.target_actor.load_state_dict(state["target_actor"])
        self.target_critic.load_state_dict(state["target_critic"])
        self.actor_opt.load_state_dict(state["actor_opt"])
        self.critic_opt.load_state_dict(state["critic_opt"])
        self.replay.load_state_dict(state["replay"])
        self.noise.load_state_dict(state["noise"])
        self.updates_done = int(state["updates_done"])
