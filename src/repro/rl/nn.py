"""Minimal dense neural networks with manual backpropagation.

The paper implements Lerp's actor and critic with PyTorch ("a three-layer
fully-connected neural network with 128 neurons per layer using ReLU").
PyTorch is not available offline, so this module provides the equivalent
building blocks on numpy: linear layers, ReLU/Tanh activations, an
:class:`MLP` container that back-propagates gradients both to parameters and
to its *input* (the latter is what DDPG's actor update needs: ∂Q/∂a flows
through the critic's input into the actor).

All arrays are float64, batch-first (``x.shape == (batch, features)``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import RLError


class Layer:
    """Interface for a differentiable layer."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. this layer's input; accumulates parameter grads."""
        raise NotImplementedError

    def params(self) -> List[np.ndarray]:
        return []

    def grads(self) -> List[np.ndarray]:
        return []


class Linear(Layer):
    """Fully connected layer ``y = x @ W + b`` with He initialization."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        if in_dim < 1 or out_dim < 1:
            raise RLError(f"invalid Linear dims: {in_dim} -> {out_dim}")
        scale = np.sqrt(2.0 / in_dim)
        self.weight = rng.normal(0.0, scale, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RLError("backward called before forward")
        self.grad_weight += self._x.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def params(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RLError("backward called before forward")
        return grad_out * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation (used on the actor's output so actions
    live in [-1, 1])."""

    def __init__(self) -> None:
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RLError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class MLP:
    """A feed-forward stack of Linear layers with hidden activations.

    ``hidden`` lists the hidden layer widths; ``output_activation`` may be
    ``None`` (identity, e.g. critics) or ``"tanh"`` (actors).
    """

    # layers holds the parameter arrays reached through params(), which
    # state_dict copies in order; in_dim/out_dim are fixed architecture.
    _snapshot_exempt = frozenset({"layers", "in_dim", "out_dim"})

    def __init__(
        self,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        output_activation: Optional[str] = None,
    ) -> None:
        self.layers: List[Layer] = []
        previous = in_dim
        for width in hidden:
            self.layers.append(Linear(previous, width, rng))
            self.layers.append(ReLU())
            previous = width
        self.layers.append(Linear(previous, out_dim, rng))
        if output_activation == "tanh":
            self.layers.append(Tanh())
        elif output_activation is not None:
            raise RLError(f"unknown output activation: {output_activation!r}")
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.in_dim:
            raise RLError(
                f"MLP expected input dim {self.in_dim}, got {x.shape[1]}"
            )
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` (dL/dy) through the network.

        Returns dL/dx — the gradient with respect to the *input* of the most
        recent :meth:`forward` call. Parameter gradients accumulate until
        :meth:`zero_grad`.
        """
        grad = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> List[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> List[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]

    def zero_grad(self) -> None:
        for grad in self.grads():
            grad.fill(0.0)

    # ------------------------------------------------------------------
    # Parameter vector utilities (target networks, tests)
    # ------------------------------------------------------------------
    def copy_params_from(self, other: "MLP") -> None:
        """Hard copy of every parameter from ``other`` (same architecture)."""
        for mine, theirs in zip(self.params(), other.params()):
            if mine.shape != theirs.shape:
                raise RLError("cannot copy params between different shapes")
            mine[...] = theirs

    def soft_update_from(self, other: "MLP", tau: float) -> None:
        """Polyak averaging: ``θ ← τ·θ_other + (1-τ)·θ`` (DDPG targets)."""
        if not 0.0 <= tau <= 1.0:
            raise RLError(f"tau must be in [0, 1], got {tau}")
        for mine, theirs in zip(self.params(), other.params()):
            mine *= 1.0 - tau
            mine += tau * theirs

    def num_parameters(self) -> int:
        return sum(p.size for p in self.params())

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> List[np.ndarray]:
        """Copies of every parameter array, in :meth:`params` order."""
        return [p.copy() for p in self.params()]

    def load_state_dict(self, state: Sequence[np.ndarray]) -> None:
        """Restore parameters *in place* (optimizers hold references to the
        live arrays, so they must not be replaced). Gradients are zeroed."""
        params = self.params()
        if len(state) != len(params):
            raise RLError(
                f"parameter count mismatch: snapshot has {len(state)}, "
                f"network has {len(params)}"
            )
        for mine, theirs in zip(params, state):
            if mine.shape != theirs.shape:
                raise RLError(
                    f"parameter shape mismatch: {mine.shape} vs {theirs.shape}"
                )
            mine[...] = theirs
        self.zero_grad()
