"""Deep Q-Network over a small discrete action set.

The paper mentions DDPG "has been shown to be more effective compared with
the classic models such as DQN"; this implementation exists so that the
comparison can be run as an ablation (the level-based tuner accepts either
agent — its action set is just {decrease, keep, increase}).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import RLError
from repro.rl.nn import MLP
from repro.rl.optim import Adam
from repro.rl.replay import ReplayBuffer


@dataclass(frozen=True)
class DQNConfig:
    """Hyperparameters of one DQN agent."""

    state_dim: int = 8
    n_actions: int = 3
    hidden: "tuple[int, ...]" = (32, 32)
    lr: float = 1e-3
    gamma: float = 0.9
    buffer_capacity: int = 4096
    batch_size: int = 32
    epsilon_start: float = 1.0
    epsilon_min: float = 0.05
    epsilon_decay: float = 0.97
    target_sync_every: int = 16
    warmup: int = 8

    def validate(self) -> None:
        if self.state_dim < 1 or self.n_actions < 2:
            raise RLError("need state_dim >= 1 and n_actions >= 2")
        if not 0.0 <= self.gamma < 1.0:
            raise RLError(f"gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 <= self.epsilon_min <= self.epsilon_start <= 1.0:
            raise RLError("need 0 <= epsilon_min <= epsilon_start <= 1")
        if self.batch_size < 1 or self.buffer_capacity < self.batch_size:
            raise RLError("need buffer_capacity >= batch_size >= 1")
        if self.target_sync_every < 1:
            raise RLError("target_sync_every must be >= 1")


class DQNAgent:
    """ε-greedy Q-learner with a target network."""

    # config is the immutable blueprint; _rng aliases the Lerp-owned
    # generator, whose bit-generator state Lerp serializes exactly once.
    _snapshot_exempt = frozenset({"config", "_rng"})

    def __init__(self, config: DQNConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self.q_net = MLP(config.state_dim, list(config.hidden), config.n_actions, rng)
        self.target_net = MLP(
            config.state_dim, list(config.hidden), config.n_actions, rng
        )
        self.target_net.copy_params_from(self.q_net)
        self.opt = Adam(self.q_net.params(), self.q_net.grads(), config.lr)
        # Actions are stored as a single index in the replay buffer.
        self.replay = ReplayBuffer(config.buffer_capacity, config.state_dim, 1, rng)
        self.epsilon = config.epsilon_start
        self.updates_done = 0

    def act(self, state: np.ndarray, explore: bool = True) -> int:
        """Greedy action index, ε-random when exploring."""
        if explore and self._rng.random() < self.epsilon:
            return int(self._rng.integers(0, self.config.n_actions))
        q_values = self.q_net.forward(np.atleast_2d(state))[0]
        return int(np.argmax(q_values))

    def decay_epsilon(self) -> None:
        self.epsilon = max(
            self.config.epsilon_min, self.epsilon * self.config.epsilon_decay
        )

    def reset_exploration(self, epsilon: Optional[float] = None) -> None:
        self.epsilon = (
            epsilon if epsilon is not None else self.config.epsilon_start
        )

    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool = False,
    ) -> None:
        self.replay.push(state, np.asarray([action], dtype=float), reward, next_state, done)

    def update(self) -> Optional[float]:
        """One TD(0) step on a replay mini-batch; returns the loss."""
        if len(self.replay) < self.config.warmup:
            return None
        cfg = self.config
        states, actions, rewards, next_states, dones = self.replay.sample(
            cfg.batch_size
        )
        action_idx = actions[:, 0].astype(int)

        next_q = self.target_net.forward(next_states).max(axis=1)
        y = rewards + cfg.gamma * (1.0 - dones) * next_q

        self.q_net.zero_grad()
        q_all = self.q_net.forward(states)
        q_taken = q_all[np.arange(cfg.batch_size), action_idx]
        td_error = q_taken - y
        loss = float(np.mean(td_error**2))
        grad = np.zeros_like(q_all)
        grad[np.arange(cfg.batch_size), action_idx] = (
            2.0 / cfg.batch_size
        ) * td_error
        self.q_net.backward(grad)
        self.opt.step()

        self.updates_done += 1
        if self.updates_done % cfg.target_sync_every == 0:
            self.target_net.copy_params_from(self.q_net)
        return loss

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Networks, optimizer, replay, ε and the update counter. The RNG
        shared with the owner is snapshotted by the owner."""
        return {
            "q_net": self.q_net.state_dict(),
            "target_net": self.target_net.state_dict(),
            "opt": self.opt.state_dict(),
            "replay": self.replay.state_dict(),
            "epsilon": self.epsilon,
            "updates_done": self.updates_done,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the agent in place (networks must match in architecture)."""
        self.q_net.load_state_dict(state["q_net"])
        self.target_net.load_state_dict(state["target_net"])
        self.opt.load_state_dict(state["opt"])
        self.replay.load_state_dict(state["replay"])
        self.epsilon = float(state["epsilon"])
        self.updates_done = int(state["updates_done"])
