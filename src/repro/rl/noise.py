"""Exploration noise processes for continuous-action RL."""

from __future__ import annotations

import numpy as np

from repro.errors import RLError


class OrnsteinUhlenbeckNoise:
    """Temporally correlated exploration noise (the standard DDPG choice).

    ``dx = theta * (mu - x) dt + sigma * sqrt(dt) * N(0, 1)``
    """

    # Hyperparameters fixed at construction plus the shared Lerp-owned RNG;
    # only the evolving noise state vector is serialized.
    _snapshot_exempt = frozenset({"mu", "theta", "dt", "_rng"})

    def __init__(
        self,
        action_dim: int,
        rng: np.random.Generator,
        mu: float = 0.0,
        theta: float = 0.15,
        sigma: float = 0.3,
        dt: float = 1.0,
    ) -> None:
        if action_dim < 1:
            raise RLError(f"action_dim must be >= 1, got {action_dim}")
        if sigma < 0 or theta < 0 or dt <= 0:
            raise RLError("sigma/theta must be >= 0 and dt > 0")
        self.mu = mu
        self.theta = theta
        self.sigma = sigma
        self.dt = dt
        self._rng = rng
        self._state = np.full(action_dim, mu, dtype=np.float64)

    def reset(self) -> None:
        """Return the process to its mean (called on workload shifts)."""
        self._state.fill(self.mu)

    def sample(self) -> np.ndarray:
        drift = self.theta * (self.mu - self._state) * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * self._rng.standard_normal(
            self._state.shape
        )
        self._state = self._state + drift + diffusion
        return self._state.copy()

    def scale_sigma(self, factor: float) -> None:
        """Decay (or boost) the noise magnitude, clipped to stay >= 0."""
        self.sigma = max(0.0, self.sigma * factor)

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The mutable pieces: current sigma and the process position."""
        return {"sigma": self.sigma, "state": self._state.copy()}

    def load_state_dict(self, state: dict) -> None:
        self.sigma = float(state["sigma"])
        self._state[...] = state["state"]


class GaussianNoise:
    """Uncorrelated Gaussian exploration noise."""

    # Stateless beyond hyperparameters; the RNG is the shared Lerp generator.
    _snapshot_exempt = frozenset({"_dim", "_rng"})

    def __init__(
        self, action_dim: int, rng: np.random.Generator, sigma: float = 0.2
    ) -> None:
        if action_dim < 1:
            raise RLError(f"action_dim must be >= 1, got {action_dim}")
        if sigma < 0:
            raise RLError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma
        self._dim = action_dim
        self._rng = rng

    def reset(self) -> None:
        """No internal state; provided for interface parity."""

    def sample(self) -> np.ndarray:
        return self._rng.normal(0.0, self.sigma, size=self._dim)

    def scale_sigma(self, factor: float) -> None:
        self.sigma = max(0.0, self.sigma * factor)

    def state_dict(self) -> dict:
        return {"sigma": self.sigma}

    def load_state_dict(self, state: dict) -> None:
        self.sigma = float(state["sigma"])
