"""Gradient-descent optimizers for the numpy networks."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import RLError


class SGD:
    """Plain stochastic gradient descent (kept for tests and ablations)."""

    def __init__(self, params: List[np.ndarray], grads: List[np.ndarray], lr: float) -> None:
        if lr <= 0:
            raise RLError(f"lr must be > 0, got {lr}")
        if len(params) != len(grads):
            raise RLError("params and grads must align")
        self._params = params
        self._grads = grads
        self.lr = lr

    def step(self) -> None:
        for param, grad in zip(self._params, self._grads):
            param -= self.lr * grad


class Adam:
    """Adam (Kingma & Ba) over a fixed list of parameter arrays."""

    def __init__(
        self,
        params: List[np.ndarray],
        grads: List[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise RLError(f"lr must be > 0, got {lr}")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise RLError("betas must be in [0, 1)")
        if len(params) != len(grads):
            raise RLError("params and grads must align")
        self._params = params
        self._grads = grads
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self._params, self._grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
