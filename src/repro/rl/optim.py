"""Gradient-descent optimizers for the numpy networks."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import RLError


class SGD:
    """Plain stochastic gradient descent (kept for tests and ablations)."""

    # _params/_grads alias the network's live arrays (serialized by MLP);
    # lr is a constructor hyperparameter.
    _snapshot_exempt = frozenset({"_params", "_grads", "lr"})

    def __init__(self, params: List[np.ndarray], grads: List[np.ndarray], lr: float) -> None:
        if lr <= 0:
            raise RLError(f"lr must be > 0, got {lr}")
        if len(params) != len(grads):
            raise RLError("params and grads must align")
        self._params = params
        self._grads = grads
        self.lr = lr

    def step(self) -> None:
        for param, grad in zip(self._params, self._grads):
            param -= self.lr * grad

    # SGD is stateless beyond its hyperparameters; hooks exist for interface
    # parity with Adam so owners can treat any optimizer uniformly.
    def state_dict(self) -> dict:
        return {"kind": "sgd"}

    def load_state_dict(self, state: dict) -> None:
        return None


class Adam:
    """Adam (Kingma & Ba) over a fixed list of parameter arrays."""

    # _params/_grads alias the network's live arrays (serialized by MLP);
    # lr/beta1/beta2/eps are constructor hyperparameters.
    _snapshot_exempt = frozenset({"_params", "_grads", "lr", "beta1", "beta2", "eps"})

    def __init__(
        self,
        params: List[np.ndarray],
        grads: List[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise RLError(f"lr must be > 0, got {lr}")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise RLError("betas must be in [0, 1)")
        if len(params) != len(grads):
            raise RLError("params and grads must align")
        self._params = params
        self._grads = grads
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self._params, self._grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the moment estimates and step count."""
        return {
            "kind": "adam",
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore moments in place (they are paired with live parameters)."""
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise RLError("optimizer state does not match parameter layout")
        self._t = int(state["t"])
        for mine, theirs in zip(self._m, state["m"]):
            mine[...] = theirs
        for mine, theirs in zip(self._v, state["v"]):
            mine[...] = theirs
