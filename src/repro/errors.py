"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from :class:`ReproError`
so that callers can catch library failures without catching programming
mistakes (``TypeError`` and friends propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A :class:`~repro.config.SystemConfig` value is out of range or
    inconsistent with another value."""


class StorageError(ReproError):
    """The simulated storage layer was used incorrectly (e.g. reading a page
    that was never written)."""


class KeyNotFoundError(ReproError, KeyError):
    """A strict lookup did not find the requested key.

    Inherits from :class:`KeyError` so that code written against a plain
    mapping keeps working.
    """

    def __init__(self, key: int) -> None:
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:  # KeyError.__str__ repr()s the key; be plainer.
        return f"key not found: {self.key}"


class TreeStateError(ReproError):
    """An LSM-tree invariant would be violated by the requested operation
    (e.g. writing to a sealed run)."""


class PolicyError(ReproError):
    """A compaction policy value is invalid for the current tree (must be an
    integer in ``[1, T]``)."""


class TransitionError(ReproError):
    """A compaction-policy transition could not be applied."""


class WorkloadError(ReproError):
    """A workload specification is invalid (bad mix, empty key space, ...)."""


class RLError(ReproError):
    """A reinforcement-learning component was mis-configured or used out of
    order (e.g. sampling an empty replay buffer)."""


class SnapshotError(ReproError):
    """A snapshot could not be written, read, or restored (unknown format,
    version mismatch, state incompatible with the receiving object)."""


class ServeError(ReproError):
    """The serving layer was used out of order (submitting to a stopped
    server, starting a running one, malformed requests)."""


class ObsError(ReproError):
    """The observability layer was misused (duplicate metric registration
    with a different shape, wrong label set, label-cardinality overflow,
    malformed exposition text)."""


class DurabilityError(ReproError):
    """The durable storage layer hit unrecoverable on-disk state (bad
    magic/CRC in a live SSTable, a CURRENT pointer naming a missing
    manifest, a manifest edit referencing a file that never made it to
    disk) or was misused (writing to a closed WAL, reopening a live
    directory with a mismatched configuration)."""
