"""The formal storage-engine contract.

Every component above the storage layer — :class:`~repro.core.missions.MissionRunner`,
the :class:`~repro.core.ruskey.RusKey` facade and the benchmark harness —
drives the store exclusively through :class:`KVEngine`. The reference
implementation is :class:`~repro.lsm.tree.LSMTree` (and its
:class:`~repro.lsm.flsm.FLSMTree` subclass); :class:`~repro.engine.sharded.ShardedStore`
implements the same contract over N hash-partitioned FLSM shards.

``KVEngine`` is a structural :class:`typing.Protocol` rather than an ABC so
the LSM layer does not need to import this package (no inheritance, no
import cycle): any object with the right methods *is* an engine, and
``isinstance(obj, KVEngine)`` checks conformance at runtime.

The contract, beyond plain data access:

* **Batch paths** — ``put_batch``/``get_batch`` are the hot ingestion and
  lookup paths. They must be semantically equivalent to per-key loops over
  ``put``/``get`` against the same engine state (identical flush boundaries
  and cost charging), just vectorized.
* **Mission windows** — ``begin_mission``/``end_mission`` bracket one batch
  of operations; ``end_mission`` returns the window's aggregated
  :class:`~repro.lsm.stats.MissionStats`. For a sharded engine the returned
  record sums the per-shard windows (see DESIGN.md, "Sharded stats
  aggregation").
* **Tuning surface** — ``tuning_targets`` exposes the underlying tree(s) a
  :class:`~repro.core.tuners.Tuner` may adjust, and
  ``last_mission_breakdown`` the matching per-target stats of the last
  completed mission, so one tuner (or one tuner per shard) can be wired to
  any engine without knowing its topology.
* **Policy control** — ``apply_transition`` sets the compaction policy of
  levels ``1..len(policies)`` using a given transition kind on every
  underlying tree; ``apply_named_policy``/``named_policy`` do the same for
  the named tiering/leveling/lazy-leveling dimension
  (:mod:`repro.lsm.policy`), which is also the discrete policy action
  surface the RL tuner drives.
"""

from __future__ import annotations

from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.config import SystemConfig, TransitionKind
from repro.lsm.stats import MissionStats
from repro.storage.pager import IOCounters


@runtime_checkable
class KVEngine(Protocol):
    """Structural contract of a simulated key-value storage engine."""

    config: SystemConfig

    # -- point data path ------------------------------------------------
    def put(self, key: int, value: int) -> None:
        """Insert or overwrite one entry."""
        ...

    def delete(self, key: int) -> None:
        """Delete one key (tombstone write)."""
        ...

    def get(self, key: int) -> Optional[int]:
        """Latest value for ``key``; ``None`` when absent or deleted."""
        ...

    # -- batch data path ------------------------------------------------
    def put_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Vectorized insert; equivalent to per-key :meth:`put` in order."""
        ...

    def get_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized lookups; returns ``(found_mask, values)``."""
        ...

    def range_lookup(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All live entries with ``lo <= key <= hi`` in key order."""
        ...

    def range_scan_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized range lookups; equivalent to per-range
        :meth:`range_lookup` in order (same op counts and cost charging),
        returning flat ``(keys, values, offsets)`` arrays where range
        ``i``'s live entries are ``keys[offsets[i]:offsets[i + 1]]``."""
        ...

    def bulk_load(
        self, keys: np.ndarray, values: np.ndarray, distribute: bool = False
    ) -> None:
        """Populate an empty engine without charging simulated time."""
        ...

    # -- mission windows ------------------------------------------------
    def begin_mission(self) -> None:
        """Open a stats window covering the next batch of operations."""
        ...

    def end_mission(self) -> MissionStats:
        """Close the window; returns its (aggregated) statistics."""
        ...

    # -- tuning surface -------------------------------------------------
    def tuning_targets(self) -> Sequence[object]:
        """The underlying tree(s) a tuner may adjust, in a stable order."""
        ...

    def last_mission_breakdown(self) -> Sequence[MissionStats]:
        """Per-target stats of the last completed mission (aligned with
        :meth:`tuning_targets`)."""
        ...

    def policies(self) -> List[int]:
        """Representative per-level compaction policies, shallow to deep."""
        ...

    def apply_transition(
        self, policies: Sequence[int], transition: TransitionKind
    ) -> None:
        """Set the policy of levels ``1..len(policies)`` on every tree."""
        ...

    def named_policy(self) -> Optional[str]:
        """Name of the pinned compaction policy (representative tree), or
        ``None`` when levels are governed by raw per-level ``K`` values."""
        ...

    def apply_named_policy(
        self, policy: object, transition: TransitionKind
    ) -> None:
        """Pin every underlying tree to a named compaction policy
        (leveling / tiering / lazy-leveling) via ``transition``."""
        ...

    # -- observability --------------------------------------------------
    def set_tracer(self, tracer: object) -> None:
        """Attach (or detach with ``None``) a :class:`repro.obs.trace.Tracer`
        to the engine's batch entry points. Tracing is host-wall-clock
        observation only — it must leave every simulated observable
        bit-identical (the zero-sim-impact contract, DESIGN.md §12)."""
        ...

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Full serializable snapshot of the engine (between missions).

        The returned mapping contains only primitives, numpy arrays and
        nested containers thereof; :mod:`repro.persist` wraps it in a
        versioned snapshot file. A restored engine must be *bit-exact*:
        running the same operation stream after a save/load cycle yields
        the same stats, clock, counters and tree structure as never having
        snapshotted at all.
        """
        ...

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the engine in place from :meth:`state_dict` output.

        The engine must have been constructed with the same
        :class:`SystemConfig` (and topology) the snapshot was taken under.
        """
        ...

    # -- introspection --------------------------------------------------
    @property
    def stats(self) -> object:
        """The engine's statistics view (collector or aggregate)."""
        ...

    @property
    def cache_hits(self) -> int:
        """Cumulative (aggregated) block-cache hits."""
        ...

    @property
    def cache_misses(self) -> int:
        """Cumulative (aggregated) block-cache misses."""
        ...

    @property
    def io_counters(self) -> IOCounters:
        """Cumulative (aggregated) page-level I/O counters."""
        ...

    @property
    def clock_now(self) -> float:
        """Total simulated seconds consumed so far."""
        ...

    @property
    def total_entries(self) -> int:
        """Number of stored entries, including buffered ones."""
        ...

    def check_invariants(self) -> None:
        """Raise if any structural invariant is violated."""
        ...
