"""Pluggable storage engines.

:class:`KVEngine` is the structural contract every engine satisfies;
:class:`~repro.lsm.tree.LSMTree` / :class:`~repro.lsm.flsm.FLSMTree` are the
single-tree reference implementations and :class:`ShardedStore` the
hash-partitioned multi-tree one.
"""

from repro.engine.base import KVEngine
from repro.engine.sharded import (
    AggregatedStats,
    ShardedStore,
    merge_io_counters,
    merge_mission_stats,
    shard_of,
    shard_of_key,
)

__all__ = [
    "KVEngine",
    "ShardedStore",
    "AggregatedStats",
    "shard_of",
    "shard_of_key",
    "merge_io_counters",
    "merge_mission_stats",
]
