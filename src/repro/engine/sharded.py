"""Hash-partitioned multi-tree engine.

:class:`ShardedStore` splits the keyspace over ``n_shards`` independent
FLSM-trees by a Fibonacci hash of the key. Each shard owns its clock, disk
model, cache and :class:`~repro.lsm.stats.StatsCollector`; the store exposes
aggregated views of all of them so everything written against the
:class:`~repro.engine.base.KVEngine` contract (mission runner, tuners,
benchmark harness) drives a sharded store exactly like a single tree.

Aggregation rule (see DESIGN.md): shards model independent stores executing
their slice of the traffic serially on one device, so *times and counters
sum* across shards — ``clock_now`` is the sum of shard clocks, the
aggregated :class:`~repro.lsm.stats.MissionStats` of a mission window sums
the per-shard windows field by field, and per-level time maps merge by
summing per level. Operation counts are attributed to exactly one shard
(the key's home shard; a range scan counts once, on the home shard of its
start key) so aggregated counts equal the counts an unsharded tree would
report for the same operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SystemConfig, TransitionKind
from repro.errors import ConfigError, TreeStateError
from repro.lsm.flsm import FLSMTree
from repro.lsm.rangepath import (
    empty_batch_result,
    merge_tagged_segments,
    scan_batch,
)
from repro.lsm.stats import MissionStats, StatsCollector
from repro.lsm.tree import LSMTree
from repro.storage.pager import IOCounters

if TYPE_CHECKING:  # obs depends on engine; annotate lazily to avoid a cycle
    from repro.obs.trace import Tracer

#: Fibonacci hashing multiplier (golden-ratio / 2^64, odd).
_HASH_MULT = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1


def shard_of(keys: np.ndarray, n_shards: int) -> np.ndarray:
    """Vectorized shard index for each 64-bit key.

    A multiplicative (Fibonacci) hash decorrelates shard choice from key
    magnitude, so both sequential and skewed keyspaces spread evenly.
    """
    h = np.asarray(keys, dtype=np.int64).astype(np.uint64)
    h = (h * np.uint64(_HASH_MULT)) >> np.uint64(17)
    return (h % np.uint64(n_shards)).astype(np.int64)


def shard_of_key(key: int, n_shards: int) -> int:
    """Scalar counterpart of :func:`shard_of` (bit-identical result)."""
    h = ((int(key) & _MASK_64) * _HASH_MULT) & _MASK_64
    return (h >> 17) % n_shards


def merge_io_counters(parts: Sequence[IOCounters]) -> IOCounters:
    """Field-wise sum of several I/O counter sets."""
    return IOCounters(
        random_reads=sum(p.random_reads for p in parts),
        random_writes=sum(p.random_writes for p in parts),
        seq_reads=sum(p.seq_reads for p in parts),
        seq_writes=sum(p.seq_writes for p in parts),
    )


def _merge_level_times(maps: Sequence[Dict[int, float]]) -> Dict[int, float]:
    merged: Dict[int, float] = {}
    for one in maps:
        for level_no, seconds in one.items():
            merged[level_no] = merged.get(level_no, 0.0) + seconds
    return merged


def merge_mission_stats(
    index: int, parts: Sequence[MissionStats]
) -> MissionStats:
    """Sum per-shard mission windows into one store-level record.

    All fields sum except ``wall_duration``: per-shard windows open and
    close at (nearly) the same host instants — they are *concurrent* in
    wall time — so the store-level window spans their maximum, and the
    merged record's ``ops_per_second`` is the store's aggregate wall
    throughput. The summed thread-time is kept separately in
    ``wall_duration_sum`` (see :class:`MissionStats`), so both aggregation
    semantics are explicit and the merge stays associative in both.
    """
    return MissionStats(
        index=index,
        n_lookups=sum(p.n_lookups for p in parts),
        n_updates=sum(p.n_updates for p in parts),
        n_ranges=sum(p.n_ranges for p in parts),
        read_time=sum(p.read_time for p in parts),
        write_time=sum(p.write_time for p in parts),
        level_read_time=_merge_level_times([p.level_read_time for p in parts]),
        level_write_time=_merge_level_times([p.level_write_time for p in parts]),
        io=merge_io_counters([p.io for p in parts]),
        sim_duration=sum(p.sim_duration for p in parts),
        model_update_time=sum(p.model_update_time for p in parts),
        cache_hits=sum(p.cache_hits for p in parts),
        cache_misses=sum(p.cache_misses for p in parts),
        wall_duration=max((p.wall_duration for p in parts), default=0.0),
        wall_duration_sum=sum(p.wall_duration_sum for p in parts),
    )


class AggregatedStats:
    """Read-only cross-shard view matching the ``StatsCollector`` API.

    Totals and per-level maps are recomputed from the shard collectors on
    access, so they always sum exactly to the per-shard values. The
    ``completed`` list holds one *aggregated* :class:`MissionStats` per
    mission window (appended by :meth:`ShardedStore.end_mission`).
    """

    def __init__(self, collectors: Sequence[StatsCollector]) -> None:
        self.per_shard: List[StatsCollector] = list(collectors)
        self.completed: List[MissionStats] = []

    @property
    def total_read_time(self) -> float:
        return sum(c.total_read_time for c in self.per_shard)

    @property
    def total_write_time(self) -> float:
        return sum(c.total_write_time for c in self.per_shard)

    @property
    def total_time(self) -> float:
        return self.total_read_time + self.total_write_time

    @property
    def total_lookups(self) -> int:
        return sum(c.total_lookups for c in self.per_shard)

    @property
    def total_updates(self) -> int:
        return sum(c.total_updates for c in self.per_shard)

    @property
    def total_ranges(self) -> int:
        return sum(c.total_ranges for c in self.per_shard)

    @property
    def total_operations(self) -> int:
        return self.total_lookups + self.total_updates + self.total_ranges

    @property
    def level_read_time(self) -> Dict[int, float]:
        return _merge_level_times([c.level_read_time for c in self.per_shard])

    @property
    def level_write_time(self) -> Dict[int, float]:
        return _merge_level_times([c.level_write_time for c in self.per_shard])

    def level_time(self, level_no: int) -> float:
        return sum(c.level_time(level_no) for c in self.per_shard)

    @property
    def in_mission(self) -> bool:
        return any(c.in_mission for c in self.per_shard)

    def recent_missions(self, n: int) -> List[MissionStats]:
        if n <= 0:
            return []
        return self.completed[-n:]


class ShardedStore:
    """A :class:`~repro.engine.base.KVEngine` over N independent FLSM shards.

    ``tree_factory(config, shard_no)`` may be passed to customize shard
    construction; by default each shard is an :class:`FLSMTree` with the
    shared config and a per-shard seed offset (so Bloom randomness is
    independent across shards).
    """

    # config is the shared immutable blueprint; tracer is an injected
    # observer re-attached by the embedding layer, excluded by design.
    _snapshot_exempt = frozenset({"config", "tracer"})

    def __init__(
        self,
        config: SystemConfig,
        n_shards: int,
        tree_factory: Optional[
            Callable[[SystemConfig, int], LSMTree]
        ] = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        self.config = config
        self.n_shards = n_shards
        if tree_factory is None:
            tree_factory = lambda cfg, i: FLSMTree(  # noqa: E731
                cfg.with_updates(seed=cfg.seed + i)
            )
        self.shards: List[LSMTree] = [
            tree_factory(config, i) for i in range(n_shards)
        ]
        self._stats = AggregatedStats([s.stats for s in self.shards])
        self._mission_index = 0
        self._last_breakdown: List[MissionStats] = []
        #: Optional span tracer (see :meth:`set_tracer`); store-level spans
        #: parent the per-shard ``lsm.*`` spans opened on the same thread.
        self.tracer: Optional["Tracer"] = None

    def set_tracer(self, tracer: "Optional[Tracer]") -> None:
        """Attach (or detach with ``None``) a span tracer to this store
        *and* every shard tree, so a store-level batch span nests the
        per-shard spans it fans out to."""
        self.tracer = tracer
        for shard in self.shards:
            shard.set_tracer(tracer)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: int) -> LSMTree:
        """The shard that owns ``key``."""
        return self.shards[shard_of_key(key, self.n_shards)]

    def _shard_groups(self, keys: np.ndarray):
        """Group a key batch per home shard with one stable sort.

        Yields ``(shard_no, idx)`` for each non-empty group, where ``idx``
        indexes the caller's arrays *in original order* (the stable sort
        preserves each shard's operation order, so per-shard execution is
        identical to routing the keys one by one).
        """
        shard_ids = shard_of(keys, self.n_shards)
        order = np.argsort(shard_ids, kind="stable")
        bounds = np.searchsorted(
            shard_ids[order], np.arange(self.n_shards + 1)
        )
        for s in range(self.n_shards):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if lo != hi:
                yield s, order[lo:hi]

    # ------------------------------------------------------------------
    # Point data path
    # ------------------------------------------------------------------
    def put(self, key: int, value: int) -> None:
        self.shard_for(key).put(key, value)

    def delete(self, key: int) -> None:
        self.shard_for(key).delete(key)

    def get(self, key: int) -> Optional[int]:
        return self.shard_for(key).get(key)

    # ------------------------------------------------------------------
    # Batch data path
    # ------------------------------------------------------------------
    def put_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Group the batch per shard, then bulk-insert each group — one
        memtable bulk-insert (and one flush check) per shard per batch
        instead of per key."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if len(keys) == 0:
            return
        tracer = self.tracer
        if tracer is None:
            self._put_batch_impl(keys, values)
            return
        with tracer.span("store.put_batch", n_keys=len(keys)):
            self._put_batch_impl(keys, values)

    def _put_batch_impl(self, keys: np.ndarray, values: np.ndarray) -> None:
        if self.n_shards == 1:
            self.shards[0].put_batch(keys, values)
            return
        for s, idx in self._shard_groups(keys):
            self.shards[s].put_batch(keys[idx], values[idx])

    def get_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized lookups grouped per shard (one batch call per shard
        instead of one mask scan per shard); results scatter back in the
        caller's order."""
        keys = np.asarray(keys, dtype=np.int64)
        n = len(keys)
        found = np.zeros(n, dtype=bool)
        values = np.zeros(n, dtype=np.int64)
        if n == 0:
            return found, values
        tracer = self.tracer
        if tracer is None:
            return self._get_batch_impl(keys, found, values)
        with tracer.span("store.get_batch", n_keys=n):
            return self._get_batch_impl(keys, found, values)

    def _get_batch_impl(
        self, keys: np.ndarray, found: np.ndarray, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.n_shards == 1:
            return self.shards[0].get_batch(keys)
        for s, idx in self._shard_groups(keys):
            shard_found, shard_values = self.shards[s].get_batch(keys[idx])
            found[idx] = shard_found
            values[idx] = shard_values
        return found, values

    def range_lookup(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Cross-shard range scan.

        Hash partitioning does not preserve key order, so every shard is
        scanned and the (disjoint) per-shard results are merged by key. The
        operation is *counted* once, on the home shard of ``lo``, so
        aggregated operation counts match an unsharded tree.
        """
        if lo > hi:
            raise ValueError(f"empty range: lo={lo} > hi={hi}")
        self.shard_for(lo).stats.count_range()
        key_arrays: List[np.ndarray] = []
        value_arrays: List[np.ndarray] = []
        for shard in self.shards:
            keys, values = shard.range_scan(lo, hi)
            if len(keys):
                key_arrays.append(keys)
                value_arrays.append(values)
        if not key_arrays:
            return []
        keys = np.concatenate(key_arrays)
        values = np.concatenate(value_arrays)
        order = np.argsort(keys)  # shards hold disjoint keys
        return list(zip(keys[order].tolist(), values[order].tolist()))

    def range_scan_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized cross-shard range scans.

        Equivalent to per-range :meth:`range_lookup` in submission order:
        each range is counted once on the home shard of its ``lo``, every
        shard scans the whole batch (its per-shard charges replay in
        range order, bit-identical to the per-op loop — shard clocks are
        independent, so cross-shard interleaving is unobservable), and
        the disjoint per-shard results merge per range with one
        ``(range_id, key)`` lexsort. Returns flat ``(keys, values,
        offsets)`` arrays in the :meth:`LSMTree.range_scan_batch` layout.
        """
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        if los.shape != his.shape or los.ndim != 1:
            raise ValueError(
                f"los/his must be 1-d arrays of equal length, got "
                f"{los.shape} vs {his.shape}"
            )
        if self.n_shards == 1:
            return self.shards[0].range_scan_batch(los, his)
        bad = los > his
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                f"empty range: lo={int(los[i])} > hi={int(his[i])}"
            )
        n_ranges = len(los)
        if n_ranges == 0:
            return empty_batch_result(0)
        tracer = self.tracer
        if tracer is None:
            return self._range_scan_batch_impl(los, his, n_ranges)
        with tracer.span("store.range_scan_batch", n_ranges=n_ranges):
            return self._range_scan_batch_impl(los, his, n_ranges)

    def _range_scan_batch_impl(
        self, los: np.ndarray, his: np.ndarray, n_ranges: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        homes = np.bincount(shard_of(los, self.n_shards), minlength=self.n_shards)
        for s in range(self.n_shards):
            if homes[s]:
                self.shards[s].stats.count_range(int(homes[s]))
        rid_range = np.arange(n_ranges, dtype=np.int64)
        rid_parts: List[np.ndarray] = []
        key_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        for shard in self.shards:
            keys, values, offsets = scan_batch(shard, los, his)
            if len(keys):
                rid_parts.append(np.repeat(rid_range, np.diff(offsets)))
                key_parts.append(keys)
                value_parts.append(values)
        return merge_tagged_segments(
            rid_parts, key_parts, value_parts, n_ranges
        )

    def bulk_load(
        self, keys: np.ndarray, values: np.ndarray, distribute: bool = False
    ) -> None:
        """Partition the records by shard and bulk-load each shard."""
        if self.total_entries:
            raise TreeStateError("bulk_load requires an empty store")
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if self.n_shards == 1:
            self.shards[0].bulk_load(keys, values, distribute=distribute)
            return
        for s, idx in self._shard_groups(keys):
            self.shards[s].bulk_load(keys[idx], values[idx], distribute=distribute)

    # ------------------------------------------------------------------
    # Mission windows
    # ------------------------------------------------------------------
    def begin_mission(self) -> None:
        for shard in self.shards:
            shard.begin_mission()

    def end_mission(self) -> MissionStats:
        parts = [shard.end_mission() for shard in self.shards]
        merged = merge_mission_stats(self._mission_index, parts)
        self._mission_index += 1
        self._last_breakdown = parts
        self._stats.completed.append(merged)
        return merged

    # ------------------------------------------------------------------
    # Tuning surface
    # ------------------------------------------------------------------
    def tuning_targets(self) -> Sequence[LSMTree]:
        return self.shards

    def last_mission_breakdown(self) -> Sequence[MissionStats]:
        return self._last_breakdown

    def policies(self) -> List[int]:
        """Shard 0's per-level policies (the representative trajectory;
        with independent per-shard tuners shards may diverge — see
        :meth:`policies_per_shard`)."""
        return self.shards[0].policies()

    def policies_per_shard(self) -> List[List[int]]:
        return [shard.policies() for shard in self.shards]

    def apply_transition(
        self, policies: Sequence[int], transition: TransitionKind
    ) -> None:
        for shard in self.shards:
            shard.set_policies(list(policies), transition)

    def set_policy(
        self, level_no: int, new_policy: int, transition: TransitionKind
    ) -> None:
        """Set one level's policy on every shard."""
        for shard in self.shards:
            shard.set_policy(level_no, new_policy, transition)

    def named_policy(self) -> Optional[str]:
        """Shard 0's pinned named policy (the representative trajectory;
        with independent per-shard tuners shards may diverge)."""
        return self.shards[0].named_policy()

    def apply_named_policy(
        self, policy, transition: TransitionKind = TransitionKind.FLEXIBLE
    ) -> None:
        """Pin every shard to a named compaction policy (see
        :mod:`repro.lsm.policy`)."""
        for shard in self.shards:
            shard.set_named_policy(policy, transition)

    # ------------------------------------------------------------------
    # Aggregated introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> AggregatedStats:
        return self._stats

    @property
    def io_counters(self) -> IOCounters:
        return merge_io_counters([s.io_counters for s in self.shards])

    @property
    def clock_now(self) -> float:
        return sum(s.clock_now for s in self.shards)

    @property
    def cache_hits(self) -> int:
        """Block-cache hits summed across shards."""
        return sum(s.cache_hits for s in self.shards)

    @property
    def cache_misses(self) -> int:
        """Block-cache misses summed across shards."""
        return sum(s.cache_misses for s in self.shards)

    @property
    def cache_hit_rate(self) -> float:
        """Aggregated block-cache hit fraction (0.0 with no traffic)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_entries(self) -> int:
        return sum(s.total_entries for s in self.shards)

    @property
    def n_levels(self) -> int:
        return max(s.n_levels for s in self.shards)

    def describe(self) -> List[List[Dict[str, object]]]:
        """Per-shard structural snapshots."""
        return [shard.describe() for shard in self.shards]

    def check_invariants(self) -> None:
        for shard in self.shards:
            shard.check_invariants()

    def read_amplification_snapshot(self) -> Dict[int, int]:
        """Per-level run counts summed across shards."""
        merged: Dict[int, int] = {}
        for shard in self.shards:
            for level_no, runs in shard.read_amplification_snapshot().items():
                merged[level_no] = merged.get(level_no, 0) + runs
        return merged

    # ------------------------------------------------------------------
    # Snapshot hooks (see repro.persist and DESIGN.md §6)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Per-shard snapshots plus the store's aggregation state."""
        return {
            "n_shards": self.n_shards,
            "shards": [shard.state_dict() for shard in self.shards],
            "mission_index": self._mission_index,
            "last_breakdown": [m.state_dict() for m in self._last_breakdown],
            "completed": [m.state_dict() for m in self._stats.completed],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore every shard in place plus the aggregated mission log."""
        if int(state["n_shards"]) != self.n_shards:
            raise TreeStateError(
                f"shard-count mismatch: snapshot has {state['n_shards']} "
                f"shards, this store has {self.n_shards}"
            )
        for shard, shard_state in zip(self.shards, state["shards"]):
            shard.load_state_dict(shard_state)
        self._mission_index = int(state["mission_index"])
        self._last_breakdown = [
            MissionStats.from_state_dict(m) for m in state["last_breakdown"]
        ]
        self._stats.completed = [
            MissionStats.from_state_dict(m) for m in state["completed"]
        ]
