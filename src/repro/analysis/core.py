"""Rule engine for the invariant linter.

The moving parts:

* :class:`ModuleInfo` — one parsed source file: its AST, raw lines, and
  the ``# repro: allow[RULE]`` pragmas found in it.
* :class:`Rule` — base class; a rule declares which package-relative
  path prefixes it applies to (``scopes``) and yields raw findings from
  one module's AST.
* :class:`Analyzer` — walks a package tree, runs every rule over every
  in-scope module, assigns stable fingerprints, then applies the two
  suppression layers (inline pragmas, committed baseline).

Suppression policy (DESIGN.md §14): a finding may be silenced either by
an inline pragma **with a justification** on (or immediately above) the
offending line::

    t0 = time.perf_counter()  # repro: allow[SIM-PURITY] wall telemetry only

or by an entry in the committed baseline file (for findings that predate
a rule and are tracked for burn-down). A pragma without a justification
does not suppress — it is itself reported under the ``PRAGMA-FORMAT``
pseudo-rule, so "allow" never silently degrades into "ignore".
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Pseudo-rule reported for malformed suppression pragmas (not a Rule
#: subclass: it is emitted by the analyzer itself and cannot be
#: pragma-suppressed, only fixed).
PRAGMA_FORMAT = "PRAGMA-FORMAT"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_\-, ]+)\]\s*(?P<reason>.*)$"
)


@dataclass
class Pragma:
    """One ``# repro: allow[...]`` comment."""

    line: int  #: physical line the comment sits on (1-based)
    target_line: int  #: line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip())


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    module: str  #: package-relative posix path, e.g. ``lsm/tree.py``
    path: str  #: path as given to the analyzer (reporting only)
    line: int
    col: int
    message: str
    snippet: str = ""
    fingerprint: str = ""
    #: ``None`` (live), ``"pragma"`` or ``"baseline"`` once suppressed.
    suppressed_by: str | None = None
    #: justification text of the suppressing pragma/baseline entry.
    justification: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`name` / :attr:`description`, optionally narrow
    :attr:`scopes` (package-relative path prefixes; ``()`` means every
    module) and :attr:`exclude` (exact package-relative paths that are
    structurally allowlisted — e.g. the helper module a rule funnels
    callers into), and implement :meth:`check`.
    """

    name: str = ""
    description: str = ""
    scopes: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, module_rel: str) -> bool:
        if module_rel in self.exclude:
            return False
        if not self.scopes:
            return True
        return any(module_rel.startswith(scope) for scope in self.scopes)

    def check(self, module: ModuleInfo) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            module=module.rel,
            path=module.path,
            line=line,
            col=col,
            message=message,
            snippet=module.line(line),
        )


class ModuleInfo:
    """One parsed module plus its pragma map."""

    def __init__(self, path: str, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.pragmas = self._scan_pragmas()

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _scan_pragmas(self) -> list[Pragma]:
        pragmas: list[Pragma] = []
        for i, text in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            reason = match.group("reason").strip().lstrip("-—:").strip()
            stripped = text.strip()
            if stripped.startswith("#"):
                # Standalone comment line: applies to the next non-blank,
                # non-comment line.
                target = i + 1
                while target <= len(self.lines):
                    nxt = self.lines[target - 1].strip()
                    if nxt and not nxt.startswith("#"):
                        break
                    target += 1
            else:
                target = i
            pragmas.append(Pragma(line=i, target_line=target, rules=rules, reason=reason))
        return pragmas

    def pragma_for(self, rule: str, line: int) -> Pragma | None:
        """The valid pragma suppressing ``rule`` on ``line``, if any."""
        for pragma in self.pragmas:
            if pragma.target_line != line or not pragma.valid:
                continue
            if rule in pragma.rules or "*" in pragma.rules:
                return pragma
        return None


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run."""

    package_root: str
    rules: list[str]
    files: list[str]
    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by is None]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by is not None]

    @property
    def clean(self) -> bool:
        return not self.unsuppressed and not self.errors


def fingerprint_of(rule: str, module: str, snippet: str, occurrence: int) -> str:
    """Stable identity of a finding: rule + module + normalized source
    text + occurrence index among identical lines. Deliberately excludes
    the line number so baseline entries survive unrelated edits above
    the finding."""
    basis = f"{rule}|{module}|{' '.join(snippet.split())}|{occurrence}"
    return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]


class Analyzer:
    """Runs a rule set over every ``*.py`` under a package root.

    ``package_root`` is the directory that *is* the ``repro`` package —
    rules scope themselves by path relative to it (``lsm/tree.py``).
    """

    def __init__(self, package_root: str, rules: list[Rule], baseline=None) -> None:
        if not os.path.isdir(package_root):
            raise ConfigError(f"package root is not a directory: {package_root}")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate rule names: {names}")
        self.package_root = package_root
        self.rules = rules
        self.baseline = baseline

    def collect_files(self) -> list[str]:
        found: list[str] = []
        for dirpath, dirnames, filenames in os.walk(self.package_root):
            dirnames[:] = sorted(
                d for d in dirnames if d != "__pycache__" and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
        return found

    def load_module(self, path: str) -> ModuleInfo:
        rel = os.path.relpath(path, self.package_root)
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        return ModuleInfo(path=path, rel=rel, source=source)

    def run(self, files: list[str] | None = None) -> AnalysisReport:
        paths = files if files is not None else self.collect_files()
        report = AnalysisReport(
            package_root=self.package_root,
            rules=[rule.name for rule in self.rules],
            files=[os.path.relpath(p, self.package_root) for p in paths],
        )
        for path in paths:
            try:
                module = self.load_module(path)
            except (OSError, SyntaxError) as exc:
                report.errors.append(f"{path}: {exc}")
                continue
            module_findings: list[Finding] = []
            for rule in self.rules:
                if not rule.applies_to(module.rel):
                    continue
                module_findings.extend(rule.check(module))
            for pragma in module.pragmas:
                if not pragma.valid:
                    module_findings.append(
                        Finding(
                            rule=PRAGMA_FORMAT,
                            module=module.rel,
                            path=module.path,
                            line=pragma.line,
                            col=0,
                            message=(
                                "suppression pragma has no justification; write "
                                "`# repro: allow[RULE] <why this is safe>` "
                                "(an unjustified pragma suppresses nothing)"
                            ),
                            snippet=module.line(pragma.line),
                        )
                    )
            module_findings.sort(key=lambda f: (f.line, f.col, f.rule))
            self._fingerprint(module_findings)
            self._suppress(module, module_findings)
            report.findings.extend(module_findings)
        report.findings.sort(key=lambda f: (f.module, f.line, f.col, f.rule))
        return report

    def _fingerprint(self, findings: list[Finding]) -> None:
        seen: dict[tuple[str, str], int] = {}
        for finding in findings:
            key = (finding.rule, " ".join(finding.snippet.split()))
            occurrence = seen.get(key, 0)
            seen[key] = occurrence + 1
            finding.fingerprint = fingerprint_of(
                finding.rule, finding.module, finding.snippet, occurrence
            )

    def _suppress(self, module: ModuleInfo, findings: list[Finding]) -> None:
        for finding in findings:
            if finding.rule == PRAGMA_FORMAT:
                continue  # fix the pragma; it cannot be pragma'd away
            pragma = module.pragma_for(finding.rule, finding.line)
            if pragma is not None:
                finding.suppressed_by = "pragma"
                finding.justification = pragma.reason
                continue
            if self.baseline is not None:
                entry = self.baseline.lookup(finding.fingerprint)
                if entry is not None:
                    finding.suppressed_by = "baseline"
                    finding.justification = entry.get("justification", "")
