"""Static-analysis subsystem: AST rules enforcing the repo's invariants.

The reproduction rests on a handful of load-bearing contracts that runtime
tests can only catch when a twin run happens to exercise the offending
path:

* **SIM-PURITY** — :class:`~repro.storage.clock.SimClock` is the sole time
  source on simulated paths (``lsm/``, ``storage/``, ``cost/``, ``core/``,
  ``engine/``); host wall-clock is telemetry-only and must come from the
  profiler's sanctioned timer (DESIGN.md §2, §10).
* **OBS-ZERO-IMPACT** — nothing in ``obs/`` may advance the clock, draw
  randomness, or mutate an observed engine (DESIGN.md §12).
* **LOCK-ORDER** — multi-lane lock acquisition in ``serve/`` goes through
  :func:`repro.serve.locks.ordered_lane_locks`, never ad-hoc nested
  acquisition (DESIGN.md §7).
* **SNAPSHOT-COMPLETENESS** — a class with ``state_dict()`` must account
  for every attribute its ``__init__`` assigns (DESIGN.md §6).
* **DURABLE-FSYNC** — file publishes in ``durable/``/``persist/`` go
  through :mod:`repro.durable.atomio` (tmp → fsync → rename → dir fsync);
  bare rename/un-fsynced writes are flagged (DESIGN.md §13).

This package is the linter that reads the code instead: a small rule
engine (:mod:`repro.analysis.core`), the five rules above
(:mod:`repro.analysis.rules`), pragma + baseline suppression, and text /
JSON reporters behind a ``python -m repro.analysis`` CLI that exits
non-zero on any unsuppressed finding. CI runs it next to ruff
(DESIGN.md §14).
"""

from repro.analysis.baseline import Baseline
from repro.analysis.core import Analyzer, AnalysisReport, Finding, ModuleInfo, Rule
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Rule",
    "get_rules",
    "render_json",
    "render_text",
]
