"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.core import AnalysisReport, Finding

REPORT_VERSION = 1


def _render_finding(finding: Finding, show_snippet: bool = True) -> str:
    parts = [f"{finding.location()}: {finding.rule}: {finding.message}"]
    if show_snippet and finding.snippet:
        parts.append(f"    | {finding.snippet}")
    if finding.suppressed_by:
        why = f" ({finding.justification})" if finding.justification else ""
        parts.append(f"    suppressed by {finding.suppressed_by}{why}")
    return "\n".join(parts)


def render_text(report: AnalysisReport, show_suppressed: bool = False) -> str:
    """Human-readable report; one block per finding, summary last."""
    out: list[str] = []
    for error in report.errors:
        out.append(f"error: {error}")
    shown = report.findings if show_suppressed else report.unsuppressed
    for finding in shown:
        out.append(_render_finding(finding))
    counts = Counter(f.rule for f in report.unsuppressed)
    n_files = len(report.files)
    n_supp = len(report.suppressed)
    if report.clean:
        summary = (
            f"repro.analysis: clean — {n_files} files, "
            f"{len(report.rules)} rules, {n_supp} suppressed finding(s)"
        )
    else:
        by_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        summary = (
            f"repro.analysis: {len(report.unsuppressed)} unsuppressed finding(s) "
            f"[{by_rule}] in {n_files} files "
            f"({n_supp} suppressed, {len(report.errors)} error(s))"
        )
    out.append(summary)
    return "\n".join(out)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (uploaded as a CI artifact)."""
    payload = {
        "version": REPORT_VERSION,
        "package_root": report.package_root,
        "rules": report.rules,
        "n_files": len(report.files),
        "clean": report.clean,
        "counts": {
            "unsuppressed": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
            "errors": len(report.errors),
        },
        "errors": report.errors,
        "findings": [
            {
                "rule": f.rule,
                "module": f.module,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "fingerprint": f.fingerprint,
                "suppressed_by": f.suppressed_by,
                "justification": f.justification,
            }
            for f in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
