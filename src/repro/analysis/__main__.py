"""``python -m repro.analysis`` — run the invariant linter.

Exits non-zero on any unsuppressed finding (or analysis error), so CI
can gate on it next to ruff. Default package root is the installed
``repro`` package itself; default baseline is ``analysis_baseline.json``
at the repo root (two levels above ``src/repro``), loaded only if it
exists.

Examples::

    python -m repro.analysis                      # lint the repo, text report
    python -m repro.analysis --format json        # JSON to stdout
    python -m repro.analysis --json out.json      # text + JSON artifact
    python -m repro.analysis --rules SIM-PURITY,LOCK-ORDER
    python -m repro.analysis --write-baseline     # acknowledge current findings
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.baseline import Baseline
from repro.analysis.core import Analyzer
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES, get_rules


def default_package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_baseline_path(package_root: str) -> str:
    repo_root = os.path.dirname(os.path.dirname(package_root))
    return os.path.join(repo_root, "analysis_baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro codebase",
    )
    parser.add_argument(
        "--package-root",
        default=None,
        help="directory that is the repro package (default: the installed one)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: analysis_baseline.json at the repo "
        "root, if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report the full finding set)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current unsuppressed findings to the baseline file "
        "and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.name}: {cls.description}")
        return 0

    package_root = args.package_root or default_package_root()
    rule_names = (
        [n.strip() for n in args.rules.split(",") if n.strip()]
        if args.rules
        else None
    )
    rules = get_rules(rule_names)

    baseline_path = args.baseline or default_baseline_path(package_root)
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load_or_empty(baseline_path)

    analyzer = Analyzer(package_root, rules, baseline=baseline)
    report = analyzer.run()

    if args.write_baseline:
        fresh = Baseline.from_findings(report.unsuppressed, path=baseline_path)
        target = fresh.save()
        print(
            f"wrote {len(fresh)} baseline entr{'y' if len(fresh) == 1 else 'ies'} "
            f"to {target}"
        )
        return 0

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(render_json(report))
    if args.format == "json":
        print(render_json(report), end="")
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
