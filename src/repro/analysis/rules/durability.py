"""DURABLE-FSYNC: publishes are tmp → fsync → rename → dir-fsync.

The durability chain (DESIGN.md §13) acknowledges a write only after its
bytes are fsync'd, and publishes files by writing a sibling temp file,
fsyncing it, and atomically renaming it into place — followed by an
fsync of the containing directory so the *rename itself* survives a
crash. :mod:`repro.durable.atomio` is the helper that owns this
sequence; ``durable/`` and ``persist/`` code must publish through it.

Flagged shapes:

* ``os.rename`` anywhere in scope — not an atomic overwrite on every
  platform; ``os.replace`` (via the helper) is the portable spelling;
* ``os.replace`` in a function that never calls ``os.fsync`` — the
  renamed file's contents (or the rename) may not be durable;
* a ``with open(..., "w"/"wb"/"a"/...)`` block whose function never
  fsyncs — a complete write-and-close with no durability point. Files
  held open as long-lived instance handles (WAL segments, manifest
  writers) are not matched; their fsync discipline lives in their
  explicit ``sync()`` methods.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleInfo, Rule
from repro.analysis.rules.common import build_import_map, iter_functions, resolve

WRITE_MODE_CHARS = ("w", "a", "x", "+")


def _open_write_mode(node: ast.Call, imports: dict[str, str]) -> bool:
    origin = resolve(node.func, imports)
    is_open = origin in ("open", "io.open", "os.fdopen") or (
        isinstance(node.func, ast.Name) and node.func.id == "open"
    )
    if not is_open:
        return False
    mode: ast.AST | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in mode.value for c in WRITE_MODE_CHARS)
    return True  # dynamic mode: assume it can write


class DurableFsyncRule(Rule):
    name = "DURABLE-FSYNC"
    description = (
        "durable/persist file publishes go through repro.durable.atomio "
        "(tmp -> fsync -> os.replace -> dir fsync); bare renames and "
        "un-fsynced writes are flagged"
    )
    scopes = ("durable/", "persist/")
    #: The atomic-publish helper owns the raw sequence.
    exclude = ("durable/atomio.py",)

    def check(self, module: ModuleInfo) -> list[Finding]:
        imports = build_import_map(module.tree)
        findings: list[Finding] = []
        for func in iter_functions(module.tree):
            findings.extend(self._check_function(module, func, imports))
        findings.sort(key=lambda f: (f.line, f.col))
        return findings

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: dict[str, str],
    ) -> list[Finding]:
        calls: list[tuple[str, ast.Call]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                origin = resolve(node.func, imports) or ""
                calls.append((origin, node))
        has_fsync = any(origin == "os.fsync" for origin, _ in calls)
        findings: list[Finding] = []
        for origin, node in calls:
            if origin == "os.rename":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "`os.rename` in a durable path; publish through "
                        "repro.durable.atomio (os.replace + fsyncs) instead",
                    )
                )
            elif origin == "os.replace" and not has_fsync:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`os.replace` in `{func.name}` without any `os.fsync`"
                        "; the published bytes (and the rename) may not "
                        "survive a crash — use repro.durable.atomio",
                    )
                )
        if not has_fsync:
            for node in ast.walk(func):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    call = item.context_expr
                    if isinstance(call, ast.Call) and _open_write_mode(call, imports):
                        findings.append(
                            self.finding(
                                module,
                                call,
                                f"file written and closed in `{func.name}` "
                                "with no fsync anywhere in the function; "
                                "durable writes must fsync before they are "
                                "relied upon (repro.durable.atomio)",
                            )
                        )
        return findings
