"""OBS-ZERO-IMPACT: telemetry must not perturb the simulation.

``obs/`` carries a hard bit-identity guarantee (DESIGN.md §12): running
with instrumentation on must leave every simulated observable — clock,
latencies, policies, IO/cache counters, RNG streams — bit-identical to
running with it off. Runtime twin-run tests pin that for the paths they
exercise; this rule reads the package instead and flags the three ways
the guarantee breaks:

* **clock advances** — any ``.advance*(...)`` call;
* **randomness** — any numpy/stdlib RNG use (the tracer's sampling is
  deliberately a deterministic counter, never an RNG draw);
* **observed-object mutation** — assigning/augmenting an attribute of a
  function *parameter* (that is how engines, tuners and servers arrive
  in the collectors), or calling a known state-mutating engine method
  (``put_batch``, ``end_mission``, ``apply_transition``, ...) on one.
  Mutating locals the function itself constructed (registries, spans,
  events) is of course fine.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleInfo, Rule
from repro.analysis.rules.common import (
    attr_root,
    build_import_map,
    iter_functions,
    param_names,
    resolve,
    walk_function_body,
)

#: Engine/tuner methods that mutate simulated state. (`get`/`get_batch`
#: are mutators too — reads charge the SimClock — but plain `get` is
#: omitted: it collides with `dict.get` on parameter payloads.)
MUTATOR_METHODS = frozenset(
    {
        "advance",
        "advance_repeated",
        "apply_named_policy",
        "apply_transition",
        "begin_mission",
        "bulk_load",
        "delete",
        "end_mission",
        "get_batch",
        "load_state_dict",
        "observe_mission",
        "put",
        "put_batch",
        "range_lookup",
        "range_scan_batch",
        "set_named_policy",
        "set_policy",
        "warm_start",
    }
)


class ObsZeroImpactRule(Rule):
    name = "OBS-ZERO-IMPACT"
    description = (
        "obs/ may not advance the SimClock, draw randomness, or mutate an "
        "observed engine/tuner/server"
    )
    scopes = ("obs/",)

    def check(self, module: ModuleInfo) -> list[Finding]:
        imports = build_import_map(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node, imports))
        for func in iter_functions(module.tree):
            findings.extend(self._check_param_mutation(module, func))
        findings.sort(key=lambda f: (f.line, f.col))
        return findings

    def _check_call(
        self, module: ModuleInfo, node: ast.Call, imports: dict[str, str]
    ) -> list[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr.startswith("advance"):
            return [
                self.finding(
                    module,
                    node,
                    f"`.{func.attr}(...)` call in obs/ advances a clock; "
                    "telemetry must never touch SimClock",
                )
            ]
        origin = resolve(func, imports)
        if origin is not None:
            if origin.startswith("numpy.random") or origin.endswith("default_rng"):
                return [
                    self.finding(
                        module,
                        node,
                        f"RNG use `{origin}` in obs/; sampling decisions must "
                        "be deterministic (counter-based), never random draws",
                    )
                ]
            if origin == "random" or origin.startswith("random."):
                return [
                    self.finding(
                        module,
                        node,
                        f"stdlib RNG `{origin}` in obs/; sampling decisions "
                        "must be deterministic (counter-based)",
                    )
                ]
        return []

    def _check_param_mutation(
        self, module: ModuleInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        params = param_names(func)
        if not params:
            return []
        findings: list[Finding] = []
        for node in walk_function_body(func):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target] if getattr(node, "value", None) else []
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = attr_root(target)
                if root is not None and root.id in params:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"mutation of observed object `{root.id}` in obs/ "
                            f"function `{func.name}`; collectors must be "
                            "read-only over what they observe",
                        )
                    )
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in MUTATOR_METHODS:
                    root = attr_root(node.func.value)
                    if root is not None and root.id in params:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"`.{node.func.attr}(...)` on observed object "
                                f"`{root.id}` mutates simulated state from "
                                "obs/; collectors must be read-only",
                            )
                        )
        return findings
