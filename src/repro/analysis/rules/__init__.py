"""Rule registry for the invariant linter."""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.durability import DurableFsyncRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.obs_impact import ObsZeroImpactRule
from repro.analysis.rules.sim_purity import SimPurityRule
from repro.analysis.rules.snapshot import SnapshotCompletenessRule
from repro.errors import ConfigError

#: Every shipped rule, in report order.
ALL_RULES: tuple[type[Rule], ...] = (
    SimPurityRule,
    ObsZeroImpactRule,
    LockOrderRule,
    SnapshotCompletenessRule,
    DurableFsyncRule,
)


def get_rules(names: list[str] | None = None) -> list[Rule]:
    """Instantiate the full rule set, or the named subset."""
    by_name = {cls.name: cls for cls in ALL_RULES}
    if names is None:
        return [cls() for cls in ALL_RULES]
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise ConfigError(
            f"unknown rule(s) {unknown}; available: {sorted(by_name)}"
        )
    return [by_name[n]() for n in names]
