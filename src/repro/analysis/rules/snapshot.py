"""SNAPSHOT-COMPLETENESS: ``state_dict()`` accounts for all of ``__init__``.

The bit-exact checkpoint/resume invariant (DESIGN.md §6) dies quietly:
someone adds a mutable attribute in ``__init__``, forgets the snapshot
hooks, and every twin-run test still passes until a resume happens to
cross a window where that attribute mattered. This rule closes the gap
statically: for every class that defines ``state_dict()``, each
attribute assigned to ``self`` in ``__init__`` must be *accounted for* —

* referenced (read or restored) in ``state_dict``, ``load_state_dict``
  or ``from_state_dict`` of the same class, or named there as a string
  key; or
* declared in a class-level ``_snapshot_exempt`` set naming attributes
  that are deliberately not snapshot state (host wall-clock telemetry
  like ``model_update_time``, rebuild-from-config caches, injected
  callbacks), each of which should say why in a nearby comment; or
* suppressed with an inline ``# repro: allow[SNAPSHOT-COMPLETENESS]``
  pragma on the assignment.

Dataclass-style classes without an explicit ``__init__`` are out of
static reach and are covered by the runtime round-trip tests instead.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleInfo, Rule
from repro.analysis.rules.common import self_attr_name, str_constants

SNAPSHOT_METHODS = ("state_dict", "load_state_dict", "from_state_dict")

#: Attributes every class may leave out of snapshots without declaring
#: them: host wall-clock measurement whose exclusion is a documented
#: repo-wide convention (DESIGN.md §6).
GLOBAL_EXEMPT = frozenset({"model_update_time"})


def _exempt_set(cls: ast.ClassDef) -> set[str]:
    """Parse a class-level ``_snapshot_exempt = {...}`` declaration."""
    for node in cls.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            value = node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == "_snapshot_exempt"):
            continue
        if value is None:
            continue
        if isinstance(value, ast.Call):  # frozenset({...}) / set([...])
            value = value.args[0] if value.args else None
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            return {
                el.value
                for el in value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            }
    return set()


def _init_assignments(init: ast.FunctionDef) -> dict[str, int]:
    """``{attr: first assignment line}`` for every ``self.X`` target in
    ``__init__`` (nested functions excluded)."""
    assigned: dict[str, int] = {}

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Tuple):
                inner: list[ast.AST] = list(target.elts)
            else:
                inner = [target]
            for t in inner:
                name = self_attr_name(t)
                if name is not None and name not in assigned:
                    assigned[name] = t.lineno
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in init.body:
        visit(stmt)
    return assigned


def _covered_names(cls: ast.ClassDef) -> set[str]:
    """Attribute names referenced (or named as string keys) inside the
    snapshot methods of ``cls``."""
    covered: set[str] = set()
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in SNAPSHOT_METHODS:
            continue
        for sub in ast.walk(node):
            name = self_attr_name(sub)
            if name is not None:
                covered.add(name)
        for text in str_constants(node):
            covered.add(text)
            covered.add("_" + text)  # key "now" may restore self._now
    return covered


class SnapshotCompletenessRule(Rule):
    name = "SNAPSHOT-COMPLETENESS"
    description = (
        "a class defining state_dict() must reference, restore, or "
        "explicitly exempt every attribute its __init__ assigns"
    )
    scopes = ()  # snapshot discipline is repo-wide

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "state_dict" not in methods or "__init__" not in methods:
                continue
            assigned = _init_assignments(methods["__init__"])
            covered = _covered_names(node)
            exempt = _exempt_set(node) | GLOBAL_EXEMPT
            for attr, lineno in sorted(assigned.items(), key=lambda kv: kv[1]):
                if attr in covered or attr in exempt:
                    continue
                stub = ast.Constant(value=None)
                stub.lineno, stub.col_offset = lineno, 0
                findings.append(
                    self.finding(
                        module,
                        stub,
                        f"`{node.name}.__init__` assigns `self.{attr}` but "
                        "the class's snapshot methods never mention it; "
                        "serialize it, restore it in load_state_dict, or "
                        "declare it in `_snapshot_exempt` with a reason",
                    )
                )
        return findings
