"""LOCK-ORDER: multi-lane locking goes through the ordered helper.

Cross-shard operations in ``serve/`` (coalesced range batches, live
checkpoints) must hold every lane lock at once. Two lanes doing that
concurrently deadlock unless both acquire in the same global order —
so the one sanctioned way to take multiple lane locks is
:func:`repro.serve.locks.ordered_lane_locks`, which sorts by lane index
and acquires ascending (DESIGN.md §7).

The rule flags the ad-hoc shapes that bypass it:

* any explicit ``.acquire()`` / ``.release()`` call outside the helper
  module — hand-rolled acquisition loops are exactly how unordered
  multi-lock creep starts (single-lock use belongs in a ``with``);
* a ``with`` statement entering two or more lock-valued expressions;
* a ``with`` on one lock nested lexically inside a ``with`` on a
  *different* lock — the classic unordered double acquisition.

A lock-valued expression is one whose final attribute name is ``lock``
or ends in ``_lock``; plain mutexes guarding scalar counters keep their
conventional names and stay in scope of the rule on purpose.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleInfo, Rule


def _is_lock_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr == "lock" or node.attr.endswith("_lock")
    if isinstance(node, ast.Name):
        return node.id == "lock" or node.id.endswith("_lock")
    return False


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure is cosmetic
        return "<lock>"


class LockOrderRule(Rule):
    name = "LOCK-ORDER"
    description = (
        "multi-lane lock acquisition in serve/ must use "
        "repro.serve.locks.ordered_lane_locks, never ad-hoc nesting or "
        "explicit acquire() loops"
    )
    scopes = ("serve/",)
    #: The ordered-acquisition helper is the one place allowed to call
    #: ``acquire``/``release`` directly.
    exclude = ("serve/locks.py",)

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("acquire", "release"):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"explicit `.{node.func.attr}()` in serve/; take "
                            "single locks with `with`, and multi-lane locks "
                            "through repro.serve.locks.ordered_lane_locks",
                        )
                    )
        findings.extend(self._check_with_nesting(module))
        findings.sort(key=lambda f: (f.line, f.col))
        return findings

    def _check_with_nesting(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, held: tuple[str, ...]) -> None:
            now_held = held
            if isinstance(node, (ast.With, ast.AsyncWith)):
                lock_items = [
                    item.context_expr
                    for item in node.items
                    if _is_lock_expr(item.context_expr)
                ]
                if len(lock_items) >= 2:
                    texts = ", ".join(_expr_text(e) for e in lock_items)
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"one `with` acquires multiple locks ({texts}); "
                            "use repro.serve.locks.ordered_lane_locks for "
                            "ordered multi-lane acquisition",
                        )
                    )
                for expr in lock_items:
                    text = _expr_text(expr)
                    outer = [h for h in held if h != text]
                    if outer:
                        findings.append(
                            self.finding(
                                module,
                                expr,
                                f"`with {text}` nested inside `with "
                                f"{outer[-1]}` is unordered double lock "
                                "acquisition; use "
                                "repro.serve.locks.ordered_lane_locks",
                            )
                        )
                    now_held = now_held + (text,)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested function body does not run while the lock is
                # held at definition time; analyze it with a clean stack.
                now_held = ()
            for child in ast.iter_child_nodes(node):
                visit(child, now_held)

        visit(module.tree, ())
        return findings
