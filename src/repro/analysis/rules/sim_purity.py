"""SIM-PURITY: SimClock is the only clock on simulated paths.

Simulated-path packages (``lsm/``, ``storage/``, ``cost/``, ``core/``,
``engine/``) must charge time exclusively through
:class:`~repro.storage.clock.SimClock` and draw randomness only from
seeded, explicitly-threaded generators — otherwise benchmark latencies
stop being deterministic and host-independent (DESIGN.md §2).

Host wall-clock is permitted only as *telemetry* and only through the
profiler's sanctioned timer: ``from repro.lsm.readpath import
perf_counter`` (the profiler module itself is the one structural
allowlist entry). Any other wall-clock read — ``time.time``,
``time.perf_counter``, ``datetime.now`` and friends, or a bare
``perf_counter``-looking call whose import origin the rule cannot trace
to the profiler — is flagged, as is any unseeded or global-state RNG
(``np.random.default_rng()`` without a seed, the legacy ``np.random.*``
module functions, the stdlib ``random`` module).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ModuleInfo, Rule
from repro.analysis.rules.common import build_import_map, resolve

#: The one wall-timer simulated-path code may call (profiler telemetry).
SANCTIONED_TIMERS = frozenset({"repro.lsm.readpath.perf_counter"})

WALL_CLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Bare call names that look like wall timers; flagged when their import
#: origin cannot be traced to the profiler module (conservative: a local
#: rebinding of ``perf_counter`` is still a wall timer).
SUSPECT_BARE_TIMERS = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "time_ns",
        "clock_gettime",
    }
)

#: Legacy module-level numpy RNG entry points (shared global state).
NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "normal",
        "uniform",
        "shuffle",
        "permutation",
        "choice",
        "standard_normal",
        "exponential",
        "poisson",
        "zipf",
    }
)


class SimPurityRule(Rule):
    name = "SIM-PURITY"
    description = (
        "simulated paths read time only from SimClock (wall-clock via the "
        "profiler's sanctioned timer only) and randomness only from seeded "
        "generators"
    )
    scopes = ("lsm/", "storage/", "cost/", "core/", "engine/")
    #: The profiler module owns the wall timer; it is the allowlist.
    exclude = ("lsm/readpath.py",)

    def check(self, module: ModuleInfo) -> list[Finding]:
        imports = build_import_map(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve(node.func, imports)
            if origin in SANCTIONED_TIMERS:
                continue
            if origin in WALL_CLOCK_ORIGINS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"wall-clock read `{origin}` on a simulated path; charge "
                        "time through SimClock, or for profiler telemetry import "
                        "the sanctioned timer: "
                        "`from repro.lsm.readpath import perf_counter`",
                    )
                )
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in SUSPECT_BARE_TIMERS
                and origin not in SANCTIONED_TIMERS
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"call to `{node.func.id}` does not trace to the "
                        "profiler's sanctioned timer "
                        "(`repro.lsm.readpath.perf_counter`); simulated paths "
                        "must not read the host clock",
                    )
                )
                continue
            findings.extend(self._check_rng(module, node, origin))
        return findings

    def _check_rng(
        self, module: ModuleInfo, node: ast.Call, origin: str | None
    ) -> list[Finding]:
        if origin is None:
            return []
        if origin == "numpy.random.default_rng":
            seeded = bool(node.args or node.keywords)
            if node.args and (
                isinstance(node.args[0], ast.Constant) and node.args[0].value is None
            ):
                seeded = False
            if not seeded:
                return [
                    self.finding(
                        module,
                        node,
                        "unseeded `np.random.default_rng()` on a simulated path; "
                        "every generator must be seeded from the config and "
                        "threaded explicitly",
                    )
                ]
            return []
        if origin.startswith("numpy.random."):
            tail = origin.rsplit(".", 1)[1]
            if tail in NUMPY_GLOBAL_RNG:
                return [
                    self.finding(
                        module,
                        node,
                        f"legacy global-state RNG `{origin}` on a simulated "
                        "path; use a seeded np.random.Generator threaded "
                        "through the config",
                    )
                ]
        if origin == "random" or origin.startswith("random."):
            return [
                self.finding(
                    module,
                    node,
                    f"stdlib `{origin}` RNG on a simulated path; use a seeded "
                    "np.random.Generator threaded through the config",
                )
            ]
        return []
