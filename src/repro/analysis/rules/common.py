"""Shared AST plumbing for the rule implementations."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def build_import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to their dotted import origin.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` → ``{"pc": "time.perf_counter"}``.
    Only module-level and nested plain imports are recorded; a name
    re-bound after import simply resolves to its last import origin,
    which is the conservative behaviour the rules want.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = alias.name if alias.asname else local
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: origin unknowable statically
                continue
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def resolve(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Dotted origin of a Name/Attribute chain, or ``None``.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    under ``import numpy as np``; attribute chains rooted at something
    unresolvable (``self.x``) return ``None``.
    """
    if isinstance(node, ast.Name):
        return imports.get(node.id)
    if isinstance(node, ast.Attribute):
        base = resolve(node.value, imports)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def attr_root(node: ast.AST) -> ast.Name | None:
    """The Name at the root of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_function_body(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function's body *excluding* nested function/class bodies
    (those are visited as their own scopes)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """All parameter names except ``self``/``cls``."""
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return {n for n in names if n not in ("self", "cls")}


def self_attr_name(node: ast.AST) -> str | None:
    """``x`` for an expression of the exact shape ``self.x``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def str_constants(node: ast.AST) -> set[str]:
    """Every string literal appearing anywhere under ``node``."""
    return {
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    }
