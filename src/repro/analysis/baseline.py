"""Committed-baseline suppression layer.

A baseline entry acknowledges a *known* finding — typically one that
predates a new rule — without an inline pragma, so a rule can land
strict while its backlog burns down. The file is committed at the repo
root (``analysis_baseline.json``) and matched by fingerprint
(:func:`repro.analysis.core.fingerprint_of`), which keys on the rule,
module and normalized source text rather than the line number, so
unrelated edits do not invalidate entries — but any change to the
offending line itself does, forcing a fresh look.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigError

FORMAT_VERSION = 1


class Baseline:
    """In-memory view of the committed baseline file."""

    def __init__(self, entries: list[dict] | None = None, path: str | None = None) -> None:
        self.path = path
        self.entries: list[dict] = list(entries or [])
        self._by_fingerprint = {
            str(entry.get("fingerprint", "")): entry for entry in self.entries
        }

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, fingerprint: str) -> dict | None:
        return self._by_fingerprint.get(fingerprint)

    @classmethod
    def load(cls, path: str) -> Baseline:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {FORMAT_VERSION})"
            )
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            raise ConfigError(f"baseline entries must be a list in {path}")
        return cls(entries=entries, path=path)

    @classmethod
    def load_or_empty(cls, path: str) -> Baseline:
        if os.path.exists(path):
            return cls.load(path)
        return cls(path=path)

    @classmethod
    def from_findings(cls, findings, path: str | None = None) -> Baseline:
        """Build a baseline acknowledging every given finding."""
        entries = [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "module": finding.module,
                "snippet": finding.snippet,
                "justification": "baselined pre-existing finding",
            }
            for finding in findings
        ]
        return cls(entries=entries, path=path)

    def save(self, path: str | None = None) -> str:
        target = path or self.path
        if not target:
            raise ConfigError("no path to save the baseline to")
        payload = {"version": FORMAT_VERSION, "entries": self.entries}
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return target
