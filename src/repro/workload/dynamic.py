"""Dynamic (multi-session) workload schedules.

The paper's headline experiment (Figure 7) concatenates five sessions with
different lookup/update mixes: read-heavy (10 % updates), balanced (50 %),
write-heavy (90 %), write-inclined (70 %) and read-inclined (30 %).
:class:`DynamicWorkload` chains any sequence of workload specs;
:func:`paper_dynamic_workload` builds exactly the Figure 7 schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workload.spec import Mission, WorkloadSpec
from repro.workload.uniform import UniformWorkload


@dataclass(frozen=True)
class WorkloadPhase:
    """One session of a dynamic schedule: a spec and its mission count."""

    spec: WorkloadSpec
    n_missions: int

    def __post_init__(self) -> None:
        if self.n_missions < 1:
            raise WorkloadError(f"n_missions must be >= 1, got {self.n_missions}")


class DynamicWorkload(WorkloadSpec):
    """Concatenation of workload phases, presented as one mission stream."""

    def __init__(self, phases: Sequence[WorkloadPhase], name: str = "dynamic") -> None:
        if not phases:
            raise WorkloadError("a dynamic workload needs at least one phase")
        self.phases: List[WorkloadPhase] = list(phases)
        self.name = name

    @property
    def total_missions(self) -> int:
        return sum(phase.n_missions for phase in self.phases)

    def phase_boundaries(self) -> List[int]:
        """Mission indices at which a new phase starts (first is 0)."""
        boundaries = [0]
        for phase in self.phases[:-1]:
            boundaries.append(boundaries[-1] + phase.n_missions)
        return boundaries

    def phase_at(self, mission_index: int) -> Tuple[int, WorkloadPhase]:
        """The (phase index, phase) active at ``mission_index``."""
        if mission_index < 0:
            raise WorkloadError(f"mission_index must be >= 0, got {mission_index}")
        cursor = 0
        for i, phase in enumerate(self.phases):
            cursor += phase.n_missions
            if mission_index < cursor:
                return i, phase
        return len(self.phases) - 1, self.phases[-1]

    def expected_lookup_fraction(self, mission_index: int) -> float:
        _, phase = self.phase_at(mission_index)
        return phase.spec.expected_lookup_fraction(mission_index)

    def load_records(self) -> "tuple[object, object]":
        """Bulk-load records of the first phase (all phases are expected to
        share one record space)."""
        first = self.phases[0].spec
        if not hasattr(first, "load_records"):
            raise WorkloadError(
                f"first phase spec {first.name!r} does not provide load_records"
            )
        return first.load_records()  # type: ignore[attr-defined]

    def missions(self, n_missions: int, mission_size: int) -> Iterator[Mission]:
        emitted = 0
        for phase in self.phases:
            if emitted >= n_missions:
                return
            take = min(phase.n_missions, n_missions - emitted)
            yield from phase.spec.missions(take, mission_size)
            emitted += take
        # If more missions are requested than scheduled, keep replaying the
        # final phase (a stable tail keeps long experiments well-defined).
        while emitted < n_missions:
            take = min(self.phases[-1].n_missions, n_missions - emitted)
            yield from self.phases[-1].spec.missions(take, mission_size)
            emitted += take


def paper_dynamic_workload(
    n_records: int,
    missions_per_session: int,
    seed: int = 0,
) -> DynamicWorkload:
    """The Figure 7 schedule: read-heavy → balanced → write-heavy →
    write-inclined → read-inclined (update fractions 10/50/90/70/30 %)."""
    update_fractions = [0.1, 0.5, 0.9, 0.7, 0.3]
    session_names = [
        "read-heavy",
        "balanced",
        "write-heavy",
        "write-inclined",
        "read-inclined",
    ]
    phases = [
        WorkloadPhase(
            UniformWorkload(
                n_records,
                lookup_fraction=1.0 - update_fraction,
                seed=seed + i,
                name=session_names[i],
            ),
            missions_per_session,
        )
        for i, update_fraction in enumerate(update_fractions)
    ]
    return DynamicWorkload(phases, name="paper-dynamic")
