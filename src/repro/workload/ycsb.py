"""YCSB-style workloads with Zipfian key popularity.

The paper evaluates RusKey "under the YCSB standard benchmarks ... We use
the default Zipfian distribution, in which the update frequency and access
frequency of keys follow the power law" (Figure 11), with the same
compositions as the uniform experiments plus a 50 % range-scan / 50 % update
mix. :class:`YCSBWorkload` reproduces that generator; classmethods provide
the named YCSB core mixes (A-F) for completeness.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import Mission, WorkloadSpec, mission_from_mix
from repro.workload.zipf import ZipfianSampler


class YCSBWorkload(WorkloadSpec):
    """Zipfian-key workload with configurable lookup / range / update mix."""

    def __init__(
        self,
        n_records: int,
        lookup_fraction: float,
        seed: int = 0,
        range_fraction: float = 0.0,
        range_span: int = 64,
        zipf_exponent: float = 0.99,
        value_space: int = 2**31,
        name: str = "",
    ) -> None:
        if n_records < 1:
            raise WorkloadError(f"n_records must be >= 1, got {n_records}")
        if not 0.0 <= lookup_fraction <= 1.0:
            raise WorkloadError(
                f"lookup_fraction must be in [0, 1], got {lookup_fraction}"
            )
        if not 0.0 <= range_fraction <= 1.0:
            raise WorkloadError(
                f"range_fraction must be in [0, 1], got {range_fraction}"
            )
        if range_span < 1:
            raise WorkloadError(f"range_span must be >= 1, got {range_span}")
        self.n_records = n_records
        self.lookup_fraction = lookup_fraction
        self.range_fraction = range_fraction
        self.range_span = range_span
        self.zipf_exponent = zipf_exponent
        self.value_space = value_space
        self.seed = seed
        self.name = name or f"ycsb(γ={lookup_fraction:.2f}, zipf={zipf_exponent})"

    # ------------------------------------------------------------------
    # Named YCSB core workloads
    # ------------------------------------------------------------------
    @classmethod
    def workload_a(cls, n_records: int, seed: int = 0) -> "YCSBWorkload":
        """YCSB A: 50 % reads, 50 % updates (update heavy)."""
        return cls(n_records, lookup_fraction=0.5, seed=seed, name="ycsb-a")

    @classmethod
    def workload_b(cls, n_records: int, seed: int = 0) -> "YCSBWorkload":
        """YCSB B: 95 % reads, 5 % updates (read mostly)."""
        return cls(n_records, lookup_fraction=0.95, seed=seed, name="ycsb-b")

    @classmethod
    def workload_c(cls, n_records: int, seed: int = 0) -> "YCSBWorkload":
        """YCSB C: 100 % reads."""
        return cls(n_records, lookup_fraction=1.0, seed=seed, name="ycsb-c")

    @classmethod
    def workload_e(
        cls, n_records: int, seed: int = 0, range_span: int = 64
    ) -> "YCSBWorkload":
        """YCSB E: 95 % range scans, 5 % updates."""
        return cls(
            n_records,
            lookup_fraction=0.95,
            range_fraction=1.0,
            range_span=range_span,
            seed=seed,
            name="ycsb-e",
        )

    @classmethod
    def paper_range_mix(
        cls, n_records: int, seed: int = 0, range_span: int = 64
    ) -> "YCSBWorkload":
        """The paper's Figure 11 (d): 50 % range lookups, 50 % updates."""
        return cls(
            n_records,
            lookup_fraction=0.5,
            range_fraction=1.0,
            range_span=range_span,
            seed=seed,
            name="ycsb-range50",
        )

    # ------------------------------------------------------------------
    def expected_lookup_fraction(self, mission_index: int) -> float:
        return self.lookup_fraction

    def load_records(self) -> "tuple[np.ndarray, np.ndarray]":
        rng = np.random.default_rng(self.seed ^ 0x5EED)
        keys = np.arange(self.n_records, dtype=np.int64)
        values = rng.integers(0, self.value_space, size=self.n_records, dtype=np.int64)
        return keys, values

    def missions(self, n_missions: int, mission_size: int) -> Iterator[Mission]:
        rng = np.random.default_rng(self.seed)
        sampler = ZipfianSampler(self.n_records, rng, self.zipf_exponent)
        for _ in range(n_missions):
            update_keys = sampler.sample(mission_size)
            lookup_keys = sampler.sample(mission_size)
            values = rng.integers(
                0, self.value_space, size=mission_size, dtype=np.int64
            )
            yield mission_from_mix(
                rng,
                mission_size,
                self.lookup_fraction,
                update_keys,
                lookup_keys,
                values,
                range_fraction=self.range_fraction,
                range_span=self.range_span,
            )
