"""Zipfian key sampling (the YCSB default request distribution).

YCSB's Zipfian generator draws item *ranks* with probability proportional to
``1 / rank^s`` (s ≈ 0.99) and then *scrambles* ranks onto the key space so
hot keys are spread out rather than clustered at low key values. Both pieces
are reproduced here; sampling uses an exact inverse-CDF lookup over a
precomputed table, which is fast for the key-space sizes this simulator
targets (≲ tens of millions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

_SCRAMBLE_MUL = np.uint64(0xC6A4A7935BD1E995)  # 64-bit FNV/Murmur-style mixer


class ZipfianSampler:
    """Samples integers in ``[0, n_items)`` with Zipf(s) popularity."""

    def __init__(
        self,
        n_items: int,
        rng: np.random.Generator,
        exponent: float = 0.99,
        scrambled: bool = True,
    ) -> None:
        if n_items < 1:
            raise WorkloadError(f"n_items must be >= 1, got {n_items}")
        if exponent < 0:
            raise WorkloadError(f"exponent must be >= 0, got {exponent}")
        self.n_items = n_items
        self.exponent = exponent
        self.scrambled = scrambled
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n_items + 1, dtype=np.float64), exponent)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def _scramble(self, ranks: np.ndarray) -> np.ndarray:
        """Map ranks to spread-out item ids (stable, collision-free within
        the modulus for odd multipliers). The +1 offset keeps rank 0 — the
        hottest item — from trivially mapping to item 0."""
        shifted = ranks.astype(np.uint64) + np.uint64(1)
        mixed = (shifted * _SCRAMBLE_MUL) % np.uint64(self.n_items)
        return mixed.astype(np.int64)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item ids."""
        if size < 0:
            raise WorkloadError(f"size must be >= 0, got {size}")
        uniform = self._rng.random(size)
        ranks = np.searchsorted(self._cdf, uniform, side="left")
        ranks = np.minimum(ranks, self.n_items - 1)
        if self.scrambled:
            return self._scramble(ranks)
        return ranks.astype(np.int64)

    def probability_of_rank(self, rank: int) -> float:
        """P(the rank-th most popular item) — used by distribution tests."""
        if not 0 <= rank < self.n_items:
            raise WorkloadError(f"rank out of range: {rank}")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)


class UniformSampler:
    """Uniform sampling over ``[0, n_items)`` with the same interface."""

    def __init__(self, n_items: int, rng: np.random.Generator) -> None:
        if n_items < 1:
            raise WorkloadError(f"n_items must be >= 1, got {n_items}")
        self.n_items = n_items
        self._rng = rng

    def sample(self, size: int) -> np.ndarray:
        if size < 0:
            raise WorkloadError(f"size must be >= 0, got {size}")
        return self._rng.integers(0, self.n_items, size=size, dtype=np.int64)
