"""Workload trace recording and replay.

The paper motivates dynamic tuning with production traces (Facebook's UDB
trace from Cao et al.). Those traces are proprietary, so this module is the
substitution (see DESIGN.md §2): any generated workload can be *recorded* to
an ``.npz`` file and *replayed* later, which gives experiments the same
repeat-a-real-trace workflow the paper's motivation describes — and lets
users plug in their own converted traces as plain arrays.
"""

from __future__ import annotations

import pathlib
from typing import Iterator, List, Union

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import Mission, WorkloadSpec


class TraceRecorder:
    """Accumulates missions and serializes them to a single ``.npz`` file."""

    def __init__(self) -> None:
        self.missions: List[Mission] = []

    def record(self, mission: Mission) -> None:
        self.missions.append(mission)

    def wrap(self, source: Iterator[Mission]) -> Iterator[Mission]:
        """Pass missions through while recording them."""
        for mission in source:
            self.record(mission)
            yield mission

    def save(self, path: Union[str, pathlib.Path]) -> None:
        if not self.missions:
            raise WorkloadError("nothing recorded; refusing to write empty trace")
        kinds = np.concatenate([m.kinds for m in self.missions])
        keys = np.concatenate([m.keys for m in self.missions])
        values = np.concatenate([m.values for m in self.missions])
        spans = np.concatenate([m.spans for m in self.missions])
        lengths = np.asarray([len(m) for m in self.missions], dtype=np.int64)
        np.savez_compressed(
            path, kinds=kinds, keys=keys, values=values, spans=spans, lengths=lengths
        )


class TraceWorkload(WorkloadSpec):
    """Replays a recorded trace as a workload.

    The trace's own mission boundaries are preserved when ``mission_size``
    matches the recording; otherwise operations are re-chunked into missions
    of the requested size.
    """

    def __init__(self, path: Union[str, pathlib.Path], name: str = "") -> None:
        data = np.load(path)
        required = {"kinds", "keys", "values", "spans", "lengths"}
        missing = required - set(data.files)
        if missing:
            raise WorkloadError(f"trace file missing arrays: {sorted(missing)}")
        self._kinds = data["kinds"]
        self._keys = data["keys"]
        self._values = data["values"]
        self._spans = data["spans"]
        self._lengths = data["lengths"]
        self.name = name or f"trace({pathlib.Path(path).name})"

    @property
    def total_operations(self) -> int:
        return len(self._kinds)

    def expected_lookup_fraction(self, mission_index: int) -> float:
        boundaries = np.concatenate([[0], np.cumsum(self._lengths)])
        if mission_index >= len(self._lengths):
            mission_index = len(self._lengths) - 1
        lo, hi = boundaries[mission_index], boundaries[mission_index + 1]
        if hi == lo:
            return 0.0
        from repro.workload.spec import OP_UPDATE

        return float(np.mean(self._kinds[lo:hi] != OP_UPDATE))

    def missions(self, n_missions: int, mission_size: int) -> Iterator[Mission]:
        emitted = 0
        cursor = 0
        total = len(self._kinds)
        while emitted < n_missions and cursor < total:
            stop = min(cursor + mission_size, total)
            yield Mission(
                kinds=self._kinds[cursor:stop],
                keys=self._keys[cursor:stop],
                values=self._values[cursor:stop],
                spans=self._spans[cursor:stop],
            )
            cursor = stop
            emitted += 1
