"""Workload generation: uniform, Zipfian/YCSB, dynamic schedules, traces."""

from repro.workload.dynamic import (
    DynamicWorkload,
    WorkloadPhase,
    paper_dynamic_workload,
)
from repro.workload.spec import (
    OP_LOOKUP,
    OP_RANGE,
    OP_UPDATE,
    Mission,
    WorkloadSpec,
    mission_from_mix,
)
from repro.workload.trace import TraceRecorder, TraceWorkload
from repro.workload.uniform import UniformWorkload
from repro.workload.ycsb import YCSBWorkload
from repro.workload.zipf import UniformSampler, ZipfianSampler

__all__ = [
    "Mission",
    "WorkloadSpec",
    "mission_from_mix",
    "OP_LOOKUP",
    "OP_UPDATE",
    "OP_RANGE",
    "UniformWorkload",
    "YCSBWorkload",
    "ZipfianSampler",
    "UniformSampler",
    "DynamicWorkload",
    "WorkloadPhase",
    "paper_dynamic_workload",
    "TraceRecorder",
    "TraceWorkload",
]
