"""Workload representation: operations, missions, generator interface.

A *mission* (paper Section 3) is a fixed-size batch of operations; RusKey
re-tunes after each mission. Missions are represented as parallel numpy
arrays so the executor can process them in vectorized chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError

#: Operation codes inside :class:`Mission.kinds`.
OP_LOOKUP = 0
OP_UPDATE = 1
OP_RANGE = 2

OP_NAMES = {OP_LOOKUP: "lookup", OP_UPDATE: "update", OP_RANGE: "range"}


@dataclass
class Mission:
    """A batch of operations, stored column-wise.

    * ``kinds[i]`` — one of :data:`OP_LOOKUP`, :data:`OP_UPDATE`,
      :data:`OP_RANGE`;
    * ``keys[i]`` — the key (or range start for range lookups);
    * ``values[i]`` — the value written by updates (ignored otherwise);
    * ``spans[i]`` — the range width for range lookups (ignored otherwise).
    """

    kinds: np.ndarray
    keys: np.ndarray
    values: np.ndarray
    spans: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.kinds)
        if not (len(self.keys) == len(self.values) == len(self.spans) == n):
            raise WorkloadError("mission arrays must have equal length")

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def lookup_fraction(self) -> float:
        """Fraction of point+range lookups among the mission's operations."""
        if len(self.kinds) == 0:
            return 0.0
        return float(np.mean(self.kinds != OP_UPDATE))

    @property
    def n_updates(self) -> int:
        return int(np.sum(self.kinds == OP_UPDATE))

    @property
    def n_lookups(self) -> int:
        return int(np.sum(self.kinds == OP_LOOKUP))

    @property
    def n_ranges(self) -> int:
        return int(np.sum(self.kinds == OP_RANGE))


class WorkloadSpec:
    """Interface of a workload generator.

    Implementations are deterministic given their seed and yield an endless
    stream of missions via :meth:`missions`.
    """

    #: Human-readable name used by the benchmark harness.
    name: str = "workload"

    def missions(self, n_missions: int, mission_size: int) -> Iterator[Mission]:
        """Yield ``n_missions`` missions of ``mission_size`` operations."""
        raise NotImplementedError

    def expected_lookup_fraction(self, mission_index: int) -> float:
        """The configured lookup fraction at ``mission_index`` (for harness
        annotations; the realized fraction varies stochastically)."""
        raise NotImplementedError


def mission_from_mix(
    rng: np.random.Generator,
    mission_size: int,
    lookup_fraction: float,
    update_keys: np.ndarray,
    lookup_keys: np.ndarray,
    values: np.ndarray,
    range_fraction: float = 0.0,
    range_span: int = 0,
) -> Mission:
    """Assemble a mission from pre-drawn key pools.

    ``lookup_fraction`` of the operations are lookups; of those, a
    ``range_fraction`` share become range scans of width ``range_span``.
    The i-th update (lookup) consumes ``update_keys[i]`` (``lookup_keys[i]``),
    so callers draw the pools from whatever key distribution they model.
    """
    if not 0.0 <= lookup_fraction <= 1.0:
        raise WorkloadError(
            f"lookup_fraction must be in [0, 1], got {lookup_fraction}"
        )
    if not 0.0 <= range_fraction <= 1.0:
        raise WorkloadError(
            f"range_fraction must be in [0, 1], got {range_fraction}"
        )
    draws = rng.random(mission_size)
    kinds = np.where(draws < lookup_fraction, OP_LOOKUP, OP_UPDATE).astype(np.int8)
    if range_fraction > 0.0:
        lookups = kinds == OP_LOOKUP
        promote = rng.random(mission_size) < range_fraction
        kinds[lookups & promote] = OP_RANGE
    keys = np.zeros(mission_size, dtype=np.int64)
    vals = np.zeros(mission_size, dtype=np.int64)
    spans = np.zeros(mission_size, dtype=np.int64)
    is_update = kinds == OP_UPDATE
    n_updates = int(is_update.sum())
    n_reads = mission_size - n_updates
    if n_updates > len(update_keys) or n_reads > len(lookup_keys):
        raise WorkloadError("key pools are smaller than the drawn mix requires")
    keys[is_update] = update_keys[:n_updates]
    vals[is_update] = values[:n_updates]
    keys[~is_update] = lookup_keys[:n_reads]
    spans[kinds == OP_RANGE] = range_span
    return Mission(kinds=kinds, keys=keys, values=vals, spans=spans)
