"""Uniform-key workloads (the paper's main experiment setting).

"Each operation can be lookup or update, which consists of uniformly and
randomly distributed keys and values" (Section 7). Operations draw keys
uniformly from a fixed record space ``[0, n_records)``; the database is bulk
loaded with all records first, so point lookups hit unless the workload is
configured with a ``zero_result_fraction`` (those draw keys from outside the
record space, exercising the Bloom-filter-dominated path the paper's cost
analysis focuses on).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import Mission, WorkloadSpec, mission_from_mix


class UniformWorkload(WorkloadSpec):
    """Fixed lookup/update mix with uniformly distributed keys."""

    def __init__(
        self,
        n_records: int,
        lookup_fraction: float,
        seed: int = 0,
        zero_result_fraction: float = 0.0,
        value_space: int = 2**31,
        name: str = "",
    ) -> None:
        if n_records < 1:
            raise WorkloadError(f"n_records must be >= 1, got {n_records}")
        if not 0.0 <= lookup_fraction <= 1.0:
            raise WorkloadError(
                f"lookup_fraction must be in [0, 1], got {lookup_fraction}"
            )
        if not 0.0 <= zero_result_fraction <= 1.0:
            raise WorkloadError(
                f"zero_result_fraction must be in [0, 1], got {zero_result_fraction}"
            )
        self.n_records = n_records
        self.lookup_fraction = lookup_fraction
        self.zero_result_fraction = zero_result_fraction
        self.value_space = value_space
        self.seed = seed
        self.name = name or f"uniform(γ={lookup_fraction:.2f})"

    def expected_lookup_fraction(self, mission_index: int) -> float:
        return self.lookup_fraction

    def load_records(self) -> "tuple[np.ndarray, np.ndarray]":
        """The ``(keys, values)`` to bulk load before running the workload."""
        rng = np.random.default_rng(self.seed ^ 0x5EED)
        keys = np.arange(self.n_records, dtype=np.int64)
        values = rng.integers(0, self.value_space, size=self.n_records, dtype=np.int64)
        return keys, values

    def missions(self, n_missions: int, mission_size: int) -> Iterator[Mission]:
        rng = np.random.default_rng(self.seed)
        for _ in range(n_missions):
            update_keys = rng.integers(
                0, self.n_records, size=mission_size, dtype=np.int64
            )
            lookup_keys = rng.integers(
                0, self.n_records, size=mission_size, dtype=np.int64
            )
            if self.zero_result_fraction > 0.0:
                missing = rng.random(mission_size) < self.zero_result_fraction
                lookup_keys[missing] += self.n_records  # guaranteed absent
            values = rng.integers(
                0, self.value_space, size=mission_size, dtype=np.int64
            )
            yield mission_from_mix(
                rng,
                mission_size,
                self.lookup_fraction,
                update_keys,
                lookup_keys,
                values,
            )
