"""Tests for repro.lsm.tree: correctness against a dict model, compaction
mechanics, cost accounting and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.config import SystemConfig, TransitionKind
from repro.errors import KeyNotFoundError, TreeStateError
from repro.lsm.iterators import live_items
from repro.lsm.tree import LSMTree


def build_tree(config):
    return LSMTree(config)


class TestBasicOperations:
    def test_put_get_roundtrip(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(1, 100)
        assert tree.get(1) == 100

    def test_get_missing_returns_none(self, tiny_config):
        tree = build_tree(tiny_config)
        assert tree.get(42) is None

    def test_get_strict_raises(self, tiny_config):
        tree = build_tree(tiny_config)
        with pytest.raises(KeyNotFoundError):
            tree.get_strict(42)

    def test_overwrite(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(1, 100)
        tree.put(1, 200)
        assert tree.get(1) == 200

    def test_delete_hides_key(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(1, 100)
        tree.delete(1)
        assert tree.get(1) is None

    def test_delete_survives_flushes(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(1, 100)
        # Force several flushes so both versions reach disk.
        for i in range(100, 200):
            tree.put(i, i)
        tree.delete(1)
        for i in range(200, 300):
            tree.put(i, i)
        assert tree.get(1) is None

    def test_updates_cross_levels(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(5, 1)
        for i in range(1000, 1300):
            tree.put(i, i)  # push version of key 5 deep
        tree.put(5, 2)
        assert tree.get(5) == 2

    def test_operation_counting(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(1, 1)
        tree.get(1)
        tree.get(2)
        tree.delete(1)
        assert tree.stats.total_updates == 2
        assert tree.stats.total_lookups == 2


class TestCompactionMechanics:
    def test_flush_creates_level_one(self, tiny_config):
        tree = build_tree(tiny_config)
        capacity = tiny_config.buffer_capacity_entries
        for i in range(capacity):
            tree.put(i, i)
        assert tree.n_levels >= 1
        assert tree.level(1).data_entries > 0

    def test_cascade_creates_deeper_levels(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(2000):
            tree.put(i, i)
        assert tree.n_levels >= 3
        tree.check_invariants()

    def test_levels_respect_capacity(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(3000):
            tree.put(int(i * 7919 % 100000), i)
        tree.check_invariants()
        for level in tree.levels:
            assert level.data_entries <= level.capacity_entries

    def test_compaction_charges_write_time(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(200):
            tree.put(i, i)
        assert tree.stats.total_write_time > 0
        assert tree.clock.now > 0

    def test_lookup_charges_read_time(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(200):
            tree.put(i, i)
        before = tree.stats.total_read_time
        tree.get(50)
        assert tree.stats.total_read_time > before

    def test_tombstones_dropped_at_bottom(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(50):
            tree.put(i, i)
        for i in range(50):
            tree.delete(i)
        # Push everything to the bottom via more writes.
        for i in range(1000, 3000):
            tree.put(i, i)
        keys, values = live_items(tree)
        assert not (np.isin(np.arange(50), keys)).any()

    def test_force_merge_empties_level(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(500):
            tree.put(i, i)
        populated = [l.level_no for l in tree.levels if not l.is_empty]
        target = populated[0]
        tree.force_merge_level(target)
        assert tree.level(target).is_empty
        tree.check_invariants()

    def test_merge_preserves_data(self, tiny_config):
        tree = build_tree(tiny_config)
        expected = {}
        for i in range(700):
            key = int(i * 31 % 900)
            tree.put(key, i)
            expected[key] = i
        tree.force_merge_level(1)
        keys, values = live_items(tree)
        assert dict(zip(keys.tolist(), values.tolist())) == expected


class TestBatchAndRange:
    def _loaded_tree(self, config, n=800):
        tree = build_tree(config)
        model = {}
        rng = np.random.default_rng(5)
        for i in range(n):
            key = int(rng.integers(0, 2000))
            value = int(rng.integers(0, 10**6))
            tree.put(key, value)
            model[key] = value
        return tree, model, rng

    def test_get_batch_matches_serial(self, tiny_config):
        tree, model, rng = self._loaded_tree(tiny_config)
        probes = rng.integers(0, 2500, size=300).astype(np.int64)
        found, values = tree.get_batch(probes)
        for i, probe in enumerate(probes):
            expected = model.get(int(probe))
            if expected is None:
                assert not found[i]
            else:
                assert found[i] and values[i] == expected

    def test_get_batch_counts_lookups(self, tiny_config):
        tree, _, _ = self._loaded_tree(tiny_config, n=100)
        before = tree.stats.total_lookups
        tree.get_batch(np.arange(50, dtype=np.int64))
        assert tree.stats.total_lookups == before + 50

    def test_get_batch_sees_memtable(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(3, 33)  # stays in memtable (buffer not full)
        found, values = tree.get_batch(np.asarray([3], dtype=np.int64))
        assert found[0] and values[0] == 33

    def test_get_batch_respects_tombstones(self, tiny_config):
        tree, model, _ = self._loaded_tree(tiny_config, n=200)
        victim = next(iter(model))
        tree.delete(victim)
        found, _ = tree.get_batch(np.asarray([victim], dtype=np.int64))
        assert not found[0]

    def test_range_lookup_matches_model(self, tiny_config):
        tree, model, _ = self._loaded_tree(tiny_config)
        result = tree.range_lookup(100, 400)
        expected = sorted((k, v) for k, v in model.items() if 100 <= k <= 400)
        assert result == expected

    def test_range_lookup_includes_memtable(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(5, 50)
        assert tree.range_lookup(0, 10) == [(5, 50)]

    def test_range_lookup_excludes_deleted(self, tiny_config):
        tree, model, _ = self._loaded_tree(tiny_config, n=300)
        victim = sorted(model)[0]
        tree.delete(victim)
        result = dict(tree.range_lookup(victim, victim + 10))
        assert victim not in result

    def test_range_rejects_inverted_bounds(self, tiny_config):
        with pytest.raises(ValueError):
            build_tree(tiny_config).range_lookup(10, 5)

    def test_range_counts_as_range_op(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.range_lookup(0, 10)
        assert tree.stats.total_ranges == 1


class TestBulkLoad:
    def test_bulk_load_lookups_work(self, tiny_config, rng):
        tree = build_tree(tiny_config)
        keys = rng.choice(10**5, size=400, replace=False).astype(np.int64)
        values = np.arange(400, dtype=np.int64)
        tree.bulk_load(keys, values)
        for i in (0, 100, 399):
            assert tree.get(int(keys[i])) == int(values[i])

    def test_bulk_load_is_free(self, tiny_config, rng):
        tree = build_tree(tiny_config)
        keys = rng.choice(10**5, size=400, replace=False).astype(np.int64)
        tree.bulk_load(keys, keys)
        assert tree.clock.now == 0.0

    def test_bulk_load_requires_empty_tree(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.put(1, 1)
        with pytest.raises(TreeStateError):
            tree.bulk_load(np.asarray([2], dtype=np.int64), np.asarray([2]))

    def test_bulk_load_distribute_splits_runs(self, small_config, rng):
        config = small_config.with_updates(initial_policy=10)
        tree = build_tree(config)
        keys = rng.choice(10**6, size=20_000, replace=False).astype(np.int64)
        tree.bulk_load(keys, keys, distribute=True)
        tree.check_invariants()
        # At K=10 a ~63%-full bottom level should carry several sealed runs.
        deepest = tree.levels[-1]
        assert deepest.n_runs >= 3
        keys_live, _ = live_items(tree)
        assert len(keys_live) == 20_000

    def test_bulk_load_distribute_preserves_lookups(self, small_config, rng):
        tree = build_tree(small_config.with_updates(initial_policy=5))
        keys = rng.choice(10**6, size=3000, replace=False).astype(np.int64)
        values = rng.integers(0, 10**6, size=3000).astype(np.int64)
        tree.bulk_load(keys, values, distribute=True)
        idx = rng.integers(0, 3000, size=100)
        for i in idx:
            assert tree.get(int(keys[i])) == int(values[i])

    def test_bulk_load_empty_is_noop(self, tiny_config):
        tree = build_tree(tiny_config)
        tree.bulk_load(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert tree.n_levels == 0


class TestPolicyControl:
    def test_set_policies_applies_each_level(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(1500):
            tree.put(i, i)
        n = tree.n_levels
        target = [min(i + 1, tiny_config.size_ratio) for i in range(n)]
        tree.set_policies(target, TransitionKind.FLEXIBLE)
        assert tree.policies() == target

    def test_describe_structure(self, tiny_config):
        tree = build_tree(tiny_config)
        for i in range(200):
            tree.put(i, i)
        description = tree.describe()
        assert description[0]["level"] == 1
        assert set(description[0]) >= {"policy", "runs", "entries", "fill"}

    def test_level_accessor_bounds(self, tiny_config):
        tree = build_tree(tiny_config)
        with pytest.raises(TreeStateError):
            tree.level(1)

    def test_bitarray_bloom_end_to_end(self, bitarray_config):
        tree = build_tree(bitarray_config)
        model = {}
        for i in range(600):
            key = int(i * 13 % 1500)
            tree.put(key, i)
            model[key] = i
        for key in list(model)[:100]:
            assert tree.get(key) == model[key]

    def test_block_cache_reduces_read_time(self, tiny_config):
        base = build_tree(tiny_config)
        cached = build_tree(tiny_config.with_updates(block_cache_pages=4096))
        for tree in (base, cached):
            for i in range(500):
                tree.put(i, i)
        # Repeated hot lookups: the cached tree should spend less read time.
        for tree in (base, cached):
            for _ in range(30):
                for key in range(40):
                    tree.get(key)
        assert cached.stats.total_read_time < base.stats.total_read_time


class LSMTreeComparedToDict(RuleBasedStateMachine):
    """Stateful property test: the tree behaves exactly like a dict."""

    def __init__(self):
        super().__init__()
        self.tree = LSMTree(
            SystemConfig(
                size_ratio=3,
                entry_bytes=1024,
                page_bytes=4096,
                write_buffer_bytes=8 * 1024,
                seed=3,
            )
        )
        self.model = {}

    @rule(key=st.integers(0, 300), value=st.integers(0, 10**9))
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 300))
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule(key=st.integers(0, 350))
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(a=st.integers(0, 350), b=st.integers(0, 350))
    def range_scan(self, a, b):
        lo, hi = min(a, b), max(a, b)
        expected = sorted((k, v) for k, v in self.model.items() if lo <= k <= hi)
        assert self.tree.range_lookup(lo, hi) == expected

    @rule(policy=st.integers(1, 3))
    def change_policy_flexible(self, policy):
        for level in self.tree.levels:
            self.tree.set_policy(level.level_no, policy, TransitionKind.FLEXIBLE)

    @invariant()
    def structural_invariants_hold(self):
        self.tree.check_invariants()


LSMTreeComparedToDict.TestCase.settings = settings(
    max_examples=25,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestLSMTreeStateful = LSMTreeComparedToDict.TestCase
