"""Tests for the three transition strategies (paper Section 4) and the
FLSM-tree facade."""

import pytest

from repro.config import TransitionKind
from repro.lsm.flsm import FLSMTree
from repro.lsm.transitions import (
    FlexibleTransition,
    GreedyTransition,
    LazyTransition,
    make_transition,
)
from repro.lsm.tree import LSMTree


@pytest.fixture
def loaded_tree(tiny_config):
    tree = LSMTree(tiny_config)
    for i in range(900):
        tree.put(i, i)
    return tree


class TestFlexibleTransition:
    def test_zero_immediate_cost(self, loaded_tree):
        io_before = loaded_tree.disk.counters.total
        clock_before = loaded_tree.clock.now
        for level in loaded_tree.levels:
            loaded_tree.set_policy(level.level_no, 3, TransitionKind.FLEXIBLE)
        assert loaded_tree.disk.counters.total == io_before
        assert loaded_tree.clock.now == clock_before

    def test_zero_delay_policy_effective_immediately(self, loaded_tree):
        loaded_tree.set_policy(1, 4, TransitionKind.FLEXIBLE)
        assert loaded_tree.level(1).policy == 4
        assert loaded_tree.level(1).pending_policy is None

    def test_sealed_runs_untouched(self, loaded_tree):
        level = next(l for l in loaded_tree.levels if not l.is_empty)
        sizes_before = [run.n_entries for run in level.runs]
        loaded_tree.set_policy(level.level_no, 4, TransitionKind.FLEXIBLE)
        assert [run.n_entries for run in level.runs] == sizes_before

    def test_data_still_readable_after_transition(self, loaded_tree):
        for level in loaded_tree.levels:
            loaded_tree.set_policy(level.level_no, 4, TransitionKind.FLEXIBLE)
        for key in (0, 450, 899):
            assert loaded_tree.get(key) == key


class TestLazyTransition:
    def test_no_immediate_cost_or_effect(self, loaded_tree):
        io_before = loaded_tree.disk.counters.total
        level = next(l for l in loaded_tree.levels if not l.is_empty)
        old_policy = level.policy
        loaded_tree.set_policy(level.level_no, 4, TransitionKind.LAZY)
        assert loaded_tree.disk.counters.total == io_before
        assert level.policy == old_policy
        assert level.pending_policy == 4

    def test_applies_when_level_empties(self, tiny_config):
        tree = LSMTree(tiny_config)
        for i in range(100):
            tree.put(i, i)
        tree.set_policy(1, 4, TransitionKind.LAZY)
        # Keep writing until level 1 has emptied through a full-level merge.
        i = 100
        while tree.level(1).pending_policy is not None and i < 5000:
            tree.put(i, i)
            i += 1
        assert tree.level(1).policy == 4


class TestGreedyTransition:
    def test_immediately_flushes_level(self, loaded_tree):
        level = next(l for l in loaded_tree.levels if not l.is_empty)
        deeper_nonempty = any(
            not l.is_empty for l in loaded_tree.levels[level.level_no:]
        )
        io_before = loaded_tree.disk.counters.total
        loaded_tree.set_policy(level.level_no, 4, TransitionKind.GREEDY)
        if deeper_nonempty:
            assert level.is_empty  # merged down
        else:
            assert level.n_runs == 1  # bottom level: rebuilt in place
        assert level.policy == 4
        assert loaded_tree.disk.counters.total > io_before

    def test_bottom_level_rebuilds_in_place(self, loaded_tree):
        bottom = max(
            (l for l in loaded_tree.levels if not l.is_empty),
            key=lambda l: l.level_no,
        )
        entries_before = bottom.data_entries
        depth_before = loaded_tree.n_levels
        loaded_tree.set_policy(bottom.level_no, 4, TransitionKind.GREEDY)
        assert bottom.data_entries <= entries_before  # tombstones may drop
        assert bottom.data_entries > 0
        assert bottom.n_runs == 1
        assert loaded_tree.n_levels == depth_before  # tree did not grow

    def test_no_merge_when_policy_unchanged(self, loaded_tree):
        level = next(l for l in loaded_tree.levels if not l.is_empty)
        io_before = loaded_tree.disk.counters.total
        loaded_tree.set_policy(level.level_no, level.policy, TransitionKind.GREEDY)
        assert loaded_tree.disk.counters.total == io_before

    def test_data_preserved(self, loaded_tree):
        for level in list(loaded_tree.levels):
            loaded_tree.set_policy(level.level_no, 2, TransitionKind.GREEDY)
        for key in (0, 450, 899):
            assert loaded_tree.get(key) == key

    def test_costs_more_than_flexible(self, tiny_config):
        def run_with(kind):
            tree = LSMTree(tiny_config)
            for i in range(900):
                tree.put(i, i)
            before = tree.clock.now
            for level in list(tree.levels):
                tree.set_policy(level.level_no, 4, kind)
            return tree.clock.now - before

        assert run_with(TransitionKind.GREEDY) > run_with(TransitionKind.FLEXIBLE)


class TestStrategyObjects:
    def test_make_transition_dispatch(self):
        assert isinstance(
            make_transition(TransitionKind.GREEDY), GreedyTransition
        )
        assert isinstance(make_transition(TransitionKind.LAZY), LazyTransition)
        assert isinstance(
            make_transition(TransitionKind.FLEXIBLE), FlexibleTransition
        )

    def test_apply_all(self, loaded_tree):
        FlexibleTransition().apply_all(loaded_tree, [2] * loaded_tree.n_levels)
        assert loaded_tree.policies() == [2] * loaded_tree.n_levels

    def test_repr(self):
        assert repr(FlexibleTransition()) == "FlexibleTransition()"


class TestFLSMTree:
    def test_transform_policy_returns_zero_cost(self, tiny_config):
        tree = FLSMTree(tiny_config)
        for i in range(500):
            tree.put(i, i)
        cost = tree.transform_policy(1, 4)
        assert cost == 0.0
        assert tree.level(1).policy == 4

    def test_transform_policies_logs(self, tiny_config):
        tree = FLSMTree(tiny_config)
        for i in range(500):
            tree.put(i, i)
        tree.transform_policies([2] * tree.n_levels)
        assert len(tree.transition_log) == 1
        assert tree.transition_log[0]["cost"] == 0.0

    def test_flsm_allows_mixed_run_sizes(self, tiny_config):
        """The defining FLSM property: runs of different sizes coexist."""
        tree = FLSMTree(tiny_config)
        for i in range(400):
            tree.put(i, i)
        # Shrink the active run capacity, then grow it again while writing.
        tree.transform_policy(1, tiny_config.size_ratio)
        for i in range(400, 500):
            tree.put(i, i)
        tree.transform_policy(1, 1)
        for i in range(500, 560):
            tree.put(i, i)
        sizes = {
            run.n_entries
            for level in tree.levels
            for run in level.runs
            if run.n_entries
        }
        assert len(sizes) >= 2
        tree.check_invariants()
