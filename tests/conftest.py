"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BloomMode, SystemConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A very small tree (16-entry buffer) so compactions happen quickly."""
    return SystemConfig(
        size_ratio=4,
        entry_bytes=1024,
        page_bytes=4096,
        write_buffer_bytes=16 * 1024,
        bits_per_key=8.0,
        seed=7,
    )


@pytest.fixture
def small_config() -> SystemConfig:
    """A small but multi-level tree with the paper's T=10."""
    return SystemConfig(
        size_ratio=10,
        entry_bytes=1024,
        page_bytes=4096,
        write_buffer_bytes=32 * 1024,
        bits_per_key=8.0,
        seed=7,
    )


@pytest.fixture
def bitarray_config(tiny_config: SystemConfig) -> SystemConfig:
    """Tiny config with real (bit-array) Bloom filters."""
    return tiny_config.with_updates(bloom_mode=BloomMode.BIT_ARRAY)
