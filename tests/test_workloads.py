"""Tests for repro.workload: specs, samplers, generators, dynamic schedules
and traces."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload import (
    OP_LOOKUP,
    OP_RANGE,
    OP_UPDATE,
    DynamicWorkload,
    Mission,
    TraceRecorder,
    TraceWorkload,
    UniformSampler,
    UniformWorkload,
    WorkloadPhase,
    YCSBWorkload,
    ZipfianSampler,
    mission_from_mix,
    paper_dynamic_workload,
)


class TestMission:
    def _mission(self, kinds):
        n = len(kinds)
        return Mission(
            kinds=np.asarray(kinds, dtype=np.int8),
            keys=np.zeros(n, dtype=np.int64),
            values=np.zeros(n, dtype=np.int64),
            spans=np.zeros(n, dtype=np.int64),
        )

    def test_counts(self):
        mission = self._mission([OP_LOOKUP, OP_UPDATE, OP_RANGE, OP_LOOKUP])
        assert mission.n_lookups == 2
        assert mission.n_updates == 1
        assert mission.n_ranges == 1
        assert len(mission) == 4

    def test_lookup_fraction_counts_ranges(self):
        mission = self._mission([OP_RANGE, OP_UPDATE])
        assert mission.lookup_fraction == pytest.approx(0.5)

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(WorkloadError):
            Mission(
                kinds=np.zeros(2, dtype=np.int8),
                keys=np.zeros(1, dtype=np.int64),
                values=np.zeros(2, dtype=np.int64),
                spans=np.zeros(2, dtype=np.int64),
            )


class TestMissionFromMix:
    def test_mix_fraction_respected(self, rng):
        n = 10_000
        pool = rng.integers(0, 1000, size=n, dtype=np.int64)
        mission = mission_from_mix(rng, n, 0.7, pool, pool, pool)
        assert mission.lookup_fraction == pytest.approx(0.7, abs=0.03)

    def test_range_promotion(self, rng):
        n = 10_000
        pool = rng.integers(0, 1000, size=n, dtype=np.int64)
        mission = mission_from_mix(
            rng, n, 0.5, pool, pool, pool, range_fraction=1.0, range_span=16
        )
        assert mission.n_lookups == 0
        assert mission.n_ranges > 0
        spans = mission.spans[mission.kinds == OP_RANGE]
        assert (spans == 16).all()

    def test_validation(self, rng):
        pool = np.zeros(10, dtype=np.int64)
        with pytest.raises(WorkloadError):
            mission_from_mix(rng, 10, 1.5, pool, pool, pool)
        with pytest.raises(WorkloadError):
            mission_from_mix(rng, 100, 0.5, pool, pool, pool)  # pools too small


class TestZipfianSampler:
    def test_range(self, rng):
        sampler = ZipfianSampler(100, rng)
        samples = sampler.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_skew_unscrambled(self):
        rng = np.random.default_rng(0)
        sampler = ZipfianSampler(1000, rng, exponent=0.99, scrambled=False)
        samples = sampler.sample(50_000)
        top = np.mean(samples == 0)
        assert top > 0.05  # the hottest item draws far more than 1/1000

    def test_rank_probabilities_decrease(self):
        rng = np.random.default_rng(0)
        sampler = ZipfianSampler(50, rng)
        probs = [sampler.probability_of_rank(r) for r in range(50)]
        assert probs == sorted(probs, reverse=True)
        assert sum(probs) == pytest.approx(1.0)

    def test_scramble_spreads_hot_keys(self):
        rng = np.random.default_rng(0)
        sampler = ZipfianSampler(1000, rng, scrambled=True)
        samples = sampler.sample(50_000)
        values, counts = np.unique(samples, return_counts=True)
        assert values[np.argmax(counts)] != 0  # hottest key not rank 0

    def test_exponent_zero_is_uniform(self):
        rng = np.random.default_rng(0)
        sampler = ZipfianSampler(10, rng, exponent=0.0, scrambled=False)
        samples = sampler.sample(100_000)
        _, counts = np.unique(samples, return_counts=True)
        assert counts.std() / counts.mean() < 0.05

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            ZipfianSampler(0, rng)
        sampler = ZipfianSampler(10, rng)
        with pytest.raises(WorkloadError):
            sampler.sample(-1)
        with pytest.raises(WorkloadError):
            sampler.probability_of_rank(10)

    def test_uniform_sampler(self, rng):
        sampler = UniformSampler(100, rng)
        samples = sampler.sample(10_000)
        assert 0 <= samples.min() and samples.max() < 100
        assert abs(samples.mean() - 49.5) < 2.0


class TestUniformWorkload:
    def test_mission_stream_shape(self):
        workload = UniformWorkload(n_records=1000, lookup_fraction=0.5, seed=1)
        missions = list(workload.missions(5, 200))
        assert len(missions) == 5
        assert all(len(m) == 200 for m in missions)

    def test_mix_matches_configuration(self):
        workload = UniformWorkload(n_records=1000, lookup_fraction=0.8, seed=1)
        mission = next(iter(workload.missions(1, 20_000)))
        assert mission.lookup_fraction == pytest.approx(0.8, abs=0.02)

    def test_deterministic_given_seed(self):
        a = next(iter(UniformWorkload(100, 0.5, seed=9).missions(1, 100)))
        b = next(iter(UniformWorkload(100, 0.5, seed=9).missions(1, 100)))
        assert (a.keys == b.keys).all()
        assert (a.kinds == b.kinds).all()

    def test_load_records_cover_space(self):
        workload = UniformWorkload(n_records=500, lookup_fraction=0.5)
        keys, values = workload.load_records()
        assert len(keys) == 500
        assert keys.tolist() == list(range(500))

    def test_zero_result_lookups_outside_records(self):
        workload = UniformWorkload(
            n_records=100, lookup_fraction=1.0, zero_result_fraction=1.0, seed=2
        )
        mission = next(iter(workload.missions(1, 500)))
        assert (mission.keys[mission.kinds == OP_LOOKUP] >= 100).all()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(0, 0.5)
        with pytest.raises(WorkloadError):
            UniformWorkload(10, 1.5)


class TestYCSBWorkload:
    def test_named_mixes(self):
        a = YCSBWorkload.workload_a(100)
        b = YCSBWorkload.workload_b(100)
        c = YCSBWorkload.workload_c(100)
        assert a.lookup_fraction == 0.5
        assert b.lookup_fraction == 0.95
        assert c.lookup_fraction == 1.0

    def test_workload_e_is_ranges(self):
        e = YCSBWorkload.workload_e(100, range_span=32)
        mission = next(iter(e.missions(1, 1000)))
        assert mission.n_ranges > 0
        assert mission.n_lookups == 0

    def test_paper_range_mix(self):
        workload = YCSBWorkload.paper_range_mix(100)
        mission = next(iter(workload.missions(1, 4000)))
        assert mission.lookup_fraction == pytest.approx(0.5, abs=0.05)
        assert mission.n_ranges > 0

    def test_keys_are_skewed(self):
        workload = YCSBWorkload(1000, lookup_fraction=0.0, seed=3)
        mission = next(iter(workload.missions(1, 20_000)))
        _, counts = np.unique(mission.keys, return_counts=True)
        assert counts.max() > 5 * counts.mean()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            YCSBWorkload(100, 0.5, range_span=0)


class TestDynamicWorkload:
    def _dynamic(self):
        return paper_dynamic_workload(n_records=200, missions_per_session=10, seed=0)

    def test_phase_boundaries(self):
        workload = self._dynamic()
        assert workload.phase_boundaries() == [0, 10, 20, 30, 40]
        assert workload.total_missions == 50

    def test_phase_at(self):
        workload = self._dynamic()
        assert workload.phase_at(0)[0] == 0
        assert workload.phase_at(9)[0] == 0
        assert workload.phase_at(10)[0] == 1
        assert workload.phase_at(49)[0] == 4
        assert workload.phase_at(999)[0] == 4

    def test_expected_fraction_tracks_sessions(self):
        workload = self._dynamic()
        assert workload.expected_lookup_fraction(0) == pytest.approx(0.9)
        assert workload.expected_lookup_fraction(25) == pytest.approx(0.1)
        assert workload.expected_lookup_fraction(45) == pytest.approx(0.7)

    def test_mission_stream_crosses_phases(self):
        workload = self._dynamic()
        missions = list(workload.missions(50, 2000))
        early = missions[0].lookup_fraction
        middle = missions[25].lookup_fraction
        assert early > 0.8
        assert middle < 0.2

    def test_stream_replays_tail_when_over_requested(self):
        workload = self._dynamic()
        missions = list(workload.missions(60, 100))
        assert len(missions) == 60

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DynamicWorkload([])
        with pytest.raises(WorkloadError):
            WorkloadPhase(UniformWorkload(10, 0.5), 0)
        with pytest.raises(WorkloadError):
            self._dynamic().phase_at(-1)


class TestTrace:
    def test_record_and_replay_roundtrip(self, tmp_path):
        workload = UniformWorkload(n_records=100, lookup_fraction=0.5, seed=4)
        recorder = TraceRecorder()
        originals = list(recorder.wrap(workload.missions(3, 50)))
        path = tmp_path / "trace.npz"
        recorder.save(path)

        replay = TraceWorkload(path)
        assert replay.total_operations == 150
        replayed = list(replay.missions(3, 50))
        assert len(replayed) == 3
        for original, copy in zip(originals, replayed):
            assert (original.kinds == copy.kinds).all()
            assert (original.keys == copy.keys).all()

    def test_rechunking(self, tmp_path):
        workload = UniformWorkload(n_records=100, lookup_fraction=0.5, seed=4)
        recorder = TraceRecorder()
        list(recorder.wrap(workload.missions(2, 50)))
        path = tmp_path / "trace.npz"
        recorder.save(path)
        replayed = list(TraceWorkload(path).missions(10, 25))
        assert len(replayed) == 4  # 100 ops / 25 per mission

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            TraceRecorder().save(tmp_path / "empty.npz")

    def test_expected_fraction_from_trace(self, tmp_path):
        workload = UniformWorkload(n_records=100, lookup_fraction=1.0, seed=4)
        recorder = TraceRecorder()
        list(recorder.wrap(workload.missions(1, 100)))
        path = tmp_path / "trace.npz"
        recorder.save(path)
        assert TraceWorkload(path).expected_lookup_fraction(0) == pytest.approx(1.0)
