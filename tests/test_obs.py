"""Tests for the telemetry subsystem (repro.obs, DESIGN.md §12).

Covers the metrics registry (registration guards, label cardinality,
Prometheus/JSON exposition, hypothesis-checked merge associativity), span
tracing (nesting, deterministic sampling, profiler absorption), the RL
decision audit log (recording, timeline rendering, persistence through
tuner snapshots), and — the subsystem's hard invariant — the
**zero-sim-impact twin**: a run with every telemetry layer enabled is
bit-identical in all simulated observables to the same run without.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.lerp import Lerp, LerpConfig
from repro.core.ruskey import RusKey
from repro.core.tuners import StaticTuner
from repro.errors import ObsError
from repro.lsm.stats import MissionStats
from repro.lsm.tree import LSMTree
from repro.obs import (
    DecisionAuditLog,
    MetricsRegistry,
    Tracer,
    collect_engine_metrics,
    collect_store_metrics,
    format_decision_timeline,
    parse_prometheus_text,
)
from repro.engine.sharded import merge_mission_stats
from repro.persist import (
    load_obs,
    load_store,
    load_tuner,
    save_obs,
    save_store,
    save_tuner,
)
from repro.workload import UniformWorkload


def small_store(
    initial_policy: int = 1,
    cache_pages: int = 0,
    n_shards: int = 2,
    tune: bool = True,
):
    config = SystemConfig().with_updates(
        initial_policy=initial_policy, block_cache_pages=cache_pages
    )
    if tune:
        return RusKey(
            config,
            n_shards=n_shards,
            lerp_config=LerpConfig(burn_in_missions=1),
        )
    return RusKey(config, tuner=StaticTuner(initial_policy), n_shards=n_shards)


def run_small(store, n_missions: int = 4, mission_size: int = 200, seed: int = 3):
    workload = UniformWorkload(
        n_records=1500, lookup_fraction=0.5, seed=seed
    )
    keys, values = workload.load_records()
    store.bulk_load(keys, values)
    for mission in workload.missions(n_missions, mission_size):
        store.run_mission(mission)
    return store


# ======================================================================
# Metrics registry
# ======================================================================
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests served")
        requests.labels().inc()
        requests.labels().inc(2.0)
        depth = registry.gauge("queue_depth")
        depth.labels().set(7.0)
        lat = registry.histogram("latency_seconds")
        lat.labels().observe(0.25)
        families = registry.as_dict()["families"]
        assert families["requests_total"]["series"][0]["value"] == 3.0
        assert families["queue_depth"]["series"][0]["value"] == 7.0
        assert families["latency_seconds"]["series"][0]["count"] == 1

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        family = registry.counter("c")
        with pytest.raises(ObsError):
            family.labels().inc(-1.0)

    def test_registration_is_idempotent_and_shape_checked(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", labels=("shard",))
        assert registry.counter("ops", labels=("shard",)) is a
        with pytest.raises(ObsError):
            registry.gauge("ops", labels=("shard",))
        with pytest.raises(ObsError):
            registry.counter("ops", labels=("shard", "tenant"))

    def test_label_names_must_match_exactly(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labels=("shard", "tenant"))
        family.labels(shard="0", tenant="a").inc()
        with pytest.raises(ObsError):
            family.labels(shard="0")
        with pytest.raises(ObsError):
            family.labels(shard="0", tenant="a", extra="x")

    def test_cardinality_guard(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labels=("key",), max_series=4)
        for i in range(4):
            family.labels(key=str(i)).inc()
        with pytest.raises(ObsError, match="series budget"):
            family.labels(key="overflow")
        # Existing series stay reachable after the guard trips.
        family.labels(key="0").inc()

    def test_prometheus_exposition_parses_and_escapes(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", "help text", labels=("name",))
        family.labels(name='with"quote\\and\nnewline').set(1.5)
        registry.histogram("h").labels().observe_many([0.001, 0.01, 0.01])
        parsed = parse_prometheus_text(registry.render("prometheus"))
        assert parsed["types"]["g"] == "gauge"
        assert parsed["types"]["h"] == "histogram"
        values = {
            name: value for (name, _), value in parsed["samples"].items()
        }
        assert values["g"] == 1.5
        assert values["h_count"] == 3
        # Cumulative buckets: the +Inf bucket equals the count.
        inf_buckets = [
            value
            for (name, labels), value in parsed["samples"].items()
            if name == "h_bucket" and ("le", "+Inf") in labels
        ]
        assert inf_buckets == [3.0]

    def test_state_dict_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("ops", labels=("shard",)).labels(shard="1").inc(5)
        registry.histogram("lat").labels().observe(0.125)
        clone = MetricsRegistry.from_state_dict(registry.state_dict())
        assert clone.render("prometheus") == registry.render("prometheus")

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["a", "b", "c"]),
                    st.integers(min_value=0, max_value=100),
                ),
                max_size=8,
            ),
            min_size=3,
            max_size=3,
        )
    )
    def test_merge_associativity(self, parts):
        """(A ⊕ B) ⊕ C == A ⊕ (B ⊕ C), exactly.

        Values are integers (and histogram observations powers of two) so
        float addition is exact and the comparison is bit-strict, the
        same way per-shard registries merge into one fleet view.
        """

        def build(increments):
            registry = MetricsRegistry()
            ops = registry.counter("ops", labels=("shard",))
            lat = registry.histogram("lat", labels=("shard",))
            for shard, amount in increments:
                ops.labels(shard=shard).inc(float(amount))
                lat.labels(shard=shard).observe_many(
                    [2.0 ** (amount % 8 - 4)] * (amount % 3)
                )
            return registry

        a, b, c = (build(p) for p in parts)
        left = MetricsRegistry.merged(
            [MetricsRegistry.merged([build(parts[0]), build(parts[1])]), c]
        )
        right = MetricsRegistry.merged(
            [a, MetricsRegistry.merged([build(parts[1]), build(parts[2])])]
        )
        assert left.render("prometheus") == right.render("prometheus")
        assert left.render("json") == right.render("json")

    def test_merge_sums_shard_series(self):
        a = MetricsRegistry()
        a.counter("ops", labels=("shard",)).labels(shard="0").inc(3)
        b = MetricsRegistry()
        b.counter("ops", labels=("shard",)).labels(shard="0").inc(4)
        b.counter("ops", labels=("shard",)).labels(shard="1").inc(5)
        merged = MetricsRegistry.merged([a, b])
        view = {
            tuple(r["labels"].items()): r["value"]
            for r in merged.as_dict()["families"]["ops"]["series"]
        }
        assert view[(("shard", "0"),)] == 7.0
        assert view[(("shard", "1"),)] == 5.0


# ======================================================================
# Span tracing
# ======================================================================
class TestTracer:
    def test_nesting_and_timing(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer, tracer.span("inner"):
            pass
        roots = tracer.spans()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert roots[0].attrs == {"kind": "test"}
        child = roots[0].children[0]
        assert outer.start <= child.start
        assert child.duration <= outer.duration
        assert outer.duration >= 0.0

    def test_deterministic_sampling(self):
        tracer = Tracer(sample_every=3)
        for i in range(9):
            with tracer.span(f"root-{i}"):
                pass
        kept = [r.name for r in tracer.spans()]
        assert kept == ["root-0", "root-3", "root-6"]
        assert tracer.roots_seen == 9
        assert tracer.roots_kept == 3

    def test_synthetic_children_and_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("parent") as span:
            tracer.add_child(span, "stage.bloom", 0.002, level=1)
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        record = json.loads(path.read_text().splitlines()[0])
        (child,) = record["children"]
        assert child["name"] == "stage.bloom"
        assert child["synthetic"] is True
        assert child["duration"] == pytest.approx(0.002)

    def test_tree_spans_absorb_profiler_stages(self):
        config = SystemConfig()
        tree = LSMTree(config, profile=True)
        keys = np.arange(300, dtype=np.int64)
        tree.bulk_load(keys, keys)
        tracer = Tracer()
        tree.set_tracer(tracer)
        tree.get_batch(keys[:64])
        (root,) = tracer.spans()
        assert root.name == "lsm.get_batch"
        stages = {c.name for c in root.children if c.synthetic}
        assert any(name.startswith("stage.") for name in stages)

    def test_invalid_config_raises(self):
        with pytest.raises(ObsError):
            Tracer(sample_every=0)
        with pytest.raises(ObsError):
            Tracer(max_spans=0)


# ======================================================================
# Decision audit log
# ======================================================================
class TestAuditLog:
    def test_record_filter_and_order(self):
        log = DecisionAuditLog()
        log.record("policy_action", 0, arm="tiering", epsilon=0.5)
        log.record("restart", None, reason="reset")
        log.record("policy_action", 1, arm="leveling", epsilon=0.4)
        assert len(log) == 3
        assert [e.seq for e in log.events] == [0, 1, 2]
        actions = log.filter("policy_action")
        assert [e.data["arm"] for e in actions] == ["tiering", "leveling"]

    def test_state_dict_round_trip(self):
        log = DecisionAuditLog()
        log.record("level_action", 2, level=1, delta=1, k=3, sigma=0.2)
        clone = DecisionAuditLog.from_state_dict(log.state_dict())
        assert len(clone) == 1
        assert clone.events[0].state_dict() == log.events[0].state_dict()
        # The sequence counter survives: new events keep a total order.
        clone.record("restart", None, reason="detector")
        assert clone.events[-1].seq == 1

    def test_timeline_renders_decisions(self):
        log = DecisionAuditLog()
        log.record(
            "policy_action",
            0,
            arm="tiering",
            epsilon=0.25,
            reward=-1.5,
            lookup_fraction=0.5,
            switched=True,
        )
        log.record("level_action", 1, level=1, delta=-1, k=2, sigma=0.1,
                   reward=-0.5)
        log.record("policy_commit", 2, arm="leveling",
                   arm_means={"leveling": 1e-5})
        text = format_decision_timeline(
            log, policy_history=["tiering", None, "leveling"]
        )
        assert "ε=0.250" in text and "switch" in text
        assert "ΔK=-1" in text and "σ=0.100" in text
        assert "commit: leveling=1.000e-05" in text
        # The store column cross-checks the engine's applied policy.
        assert "| tiering" in text

    def test_lerp_records_and_snapshots_audit(self, tmp_path):
        store = small_store(n_shards=1)
        audit = DecisionAuditLog()
        store.attach_audit(audit)
        run_small(store, n_missions=4)
        kinds = {e.kind for e in audit.events}
        assert "level_action" in kinds
        assert all(e.mission is not None for e in audit.events)
        # The log rides the tuner snapshot (persist round trip).
        path = str(tmp_path / "lerp.snap")
        save_tuner(store.tuner, store.config, path)
        restored = load_tuner(path)
        assert isinstance(restored, Lerp)
        assert restored.audit is not None
        assert len(restored.audit) == len(audit)
        assert restored.missions_observed == store.tuner.missions_observed

    def test_store_snapshot_carries_audit(self, tmp_path):
        store = small_store(n_shards=2)
        store.attach_audit(DecisionAuditLog())
        run_small(store, n_missions=3)
        path = str(tmp_path / "store.ckpt")
        save_store(store, path)
        restored = load_store(path)
        total = sum(
            len(t.audit) for t in dict.fromkeys(restored.tuners) if t.audit
        )
        expected = sum(
            len(t.audit) for t in dict.fromkeys(store.tuners) if t.audit
        )
        assert total == expected > 0

    def test_obs_snapshot_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ops").labels().inc(9)
        audit = DecisionAuditLog()
        audit.record("restart", None, reason="reset")
        path = str(tmp_path / "obs.ckpt")
        save_obs(path, registry=registry, audit=audit)
        registry2, audit2 = load_obs(path)
        assert registry2.render("prometheus") == registry.render("prometheus")
        assert len(audit2) == 1
        assert audit2.events[0].data["reason"] == "reset"

    def test_restart_reason_recorded(self):
        tuner = Lerp(SystemConfig(), LerpConfig())
        audit = DecisionAuditLog()
        tuner.attach_audit(audit)
        tuner.reset()
        (event,) = audit.filter("restart")
        assert event.data["reason"] == "reset"
        assert event.mission is None


# ======================================================================
# Collection
# ======================================================================
class TestCollection:
    def test_engine_registry_matches_engine_state(self):
        store = run_small(small_store(tune=False))
        registry = collect_engine_metrics(store.engine)
        parsed = parse_prometheus_text(registry.render("prometheus"))
        clock = sum(
            value
            for (name, _), value in parsed["samples"].items()
            if name == "repro_sim_clock_seconds"
        )
        assert clock == pytest.approx(store.engine.clock_now, rel=0, abs=0)
        entries = sum(
            value
            for (name, _), value in parsed["samples"].items()
            if name == "repro_engine_entries"
        )
        assert int(entries) == store.engine.total_entries

    def test_store_registry_includes_tuner_series(self):
        store = run_small(small_store())
        registry = collect_store_metrics(store)
        text = registry.render("prometheus")
        assert "repro_tuner_model_seconds" in text
        assert "repro_store_missions 4" in text


# ======================================================================
# The zero-sim-impact twin (the subsystem's hard invariant)
# ======================================================================
def simulated_fingerprint(store) -> dict:
    io = store.engine.io_counters
    return {
        "clock": store.engine.clock_now,
        "entries": store.engine.total_entries,
        "cache": (store.engine.cache_hits, store.engine.cache_misses),
        "io": (io.random_reads, io.random_writes, io.seq_reads, io.seq_writes),
        "latencies": store.latency_series().tolist(),
        "sim_times": [m.total_time for m in store.mission_log],
        "policies": store.policy_history,
    }


class TestZeroSimImpact:
    @pytest.mark.parametrize("initial_policy", [1, 10],
                             ids=["leveling", "tiering"])
    @pytest.mark.parametrize("cache_pages", [0, 64],
                             ids=["nocache", "cache"])
    def test_instrumented_twin_is_bit_identical(
        self, initial_policy, cache_pages
    ):
        """Metrics + tracing + audit on vs everything off: every simulated
        observable must match bit for bit (no SimClock charge, no RNG
        draw, no counter touched by any telemetry layer)."""
        bare = run_small(small_store(initial_policy, cache_pages))

        inst = small_store(initial_policy, cache_pages)
        inst.engine.set_tracer(Tracer(sample_every=2))
        audit = DecisionAuditLog()
        inst.attach_audit(audit)
        run_small(inst)
        collect_store_metrics(inst)  # collection reads, never mutates

        assert simulated_fingerprint(bare) == simulated_fingerprint(inst)
        assert len(audit) > 0

    def test_detach_restores_bare_path(self):
        store = small_store(tune=False)
        tracer = Tracer()
        store.engine.set_tracer(tracer)
        store.engine.set_tracer(None)
        run_small(store)
        assert tracer.roots_seen == 0


# ======================================================================
# Satellite 1: MissionStats wall-duration merge asymmetry
# ======================================================================
class TestWallDurationMerge:
    def test_merge_keeps_max_and_sum_separately(self):
        """Per-shard windows overlap in wall time: elapsed wall time is the
        max across shards (lanes run concurrently), while summed busy time
        is a separate, explicitly-named quantity."""
        parts = []
        for i, wall in enumerate([0.2, 0.5, 0.3]):
            part = MissionStats(index=0, n_lookups=100)
            part.wall_duration = wall
            part.wall_duration_sum = wall
            parts.append(part)
        merged = merge_mission_stats(0, parts)
        assert merged.wall_duration_max == pytest.approx(0.5)
        assert merged.wall_duration == pytest.approx(0.5)
        assert merged.wall_duration_sum == pytest.approx(1.0)

    def test_ops_per_second_uses_elapsed_not_summed(self):
        part_a = MissionStats(index=0, n_lookups=300)
        part_a.wall_duration = 0.5
        part_a.wall_duration_sum = 0.5
        part_b = MissionStats(index=0, n_lookups=300)
        part_b.wall_duration = 0.5
        part_b.wall_duration_sum = 0.5
        merged = merge_mission_stats(0, [part_a, part_b])
        # 600 ops in 0.5s of elapsed wall time — NOT 600 / 1.0: dividing
        # by summed busy time would understate concurrent throughput 2x.
        assert merged.ops_per_second == pytest.approx(1200.0)

    def test_end_mission_populates_both(self):
        config = SystemConfig()
        tree = LSMTree(config)
        tree.begin_mission()
        tree.put(1, 2)
        stats = tree.end_mission()
        assert stats.wall_duration_sum == stats.wall_duration > 0.0
        assert stats.wall_duration_max == stats.wall_duration

    def test_wall_sum_excluded_from_snapshots(self):
        mission = MissionStats(index=0, n_lookups=1)
        mission.wall_duration = 1.0
        mission.wall_duration_sum = 2.0
        state = mission.state_dict()
        assert "wall_duration_sum" not in state
        restored = MissionStats.from_state_dict(state)
        assert restored.wall_duration_sum == 0.0


# ======================================================================
# Serving integration
# ======================================================================
class TestServeTracing:
    def test_server_emits_nested_serve_spans(self):
        from repro.serve.server import KVServer
        from repro.serve.loadgen import TenantSpec, run_load

        store = small_store(tune=False, n_shards=2)
        keys = np.arange(2000, dtype=np.int64)
        store.bulk_load(keys, keys)
        tracer = Tracer()
        server = KVServer(store.engine, max_batch=64, tracer=tracer)
        workload = UniformWorkload(n_records=2000, lookup_fraction=0.5, seed=5)
        tenant = TenantSpec(
            name="t", workload=workload, n_ops=800,
            n_clients=1, closed_loop=True, mission_size=200, seed=5,
        )
        server.start()
        try:
            run_load(server, [tenant])
        finally:
            server.stop()
        roots = tracer.spans()
        assert roots, "no serve spans were recorded"
        assert {r.name for r in roots} == {"serve.batch"}
        child_names = {c.name for r in roots for c in r.children}
        assert any(
            name.startswith(("lsm.", "store.")) for name in child_names
        ), child_names
