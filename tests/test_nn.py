"""Tests for the numpy neural-network substrate (repro.rl.nn, optim)."""

import numpy as np
import pytest

from repro.errors import RLError
from repro.rl.nn import MLP, Linear, ReLU, Tanh
from repro.rl.optim import SGD, Adam


def numerical_gradient(f, param, eps=1e-6):
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = param[idx]
        param[idx] = original + eps
        plus = f()
        param[idx] = original - eps
        minus = f()
        param[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestLayers:
    def test_linear_forward_shape(self, rng):
        layer = Linear(3, 5, rng)
        out = layer.forward(rng.normal(size=(7, 3)))
        assert out.shape == (7, 5)

    def test_linear_rejects_bad_dims(self, rng):
        with pytest.raises(RLError):
            Linear(0, 5, rng)

    def test_backward_before_forward_raises(self, rng):
        layer = Linear(3, 5, rng)
        with pytest.raises(RLError):
            layer.backward(np.zeros((1, 5)))

    def test_relu_zeroes_negatives(self):
        relu = ReLU()
        out = relu.forward(np.asarray([[-1.0, 0.0, 2.0]]))
        assert out.tolist() == [[0.0, 0.0, 2.0]]

    def test_relu_gradient_masks(self):
        relu = ReLU()
        relu.forward(np.asarray([[-1.0, 2.0]]))
        grad = relu.backward(np.asarray([[1.0, 1.0]]))
        assert grad.tolist() == [[0.0, 1.0]]

    def test_tanh_range(self, rng):
        tanh = Tanh()
        out = tanh.forward(rng.normal(size=(4, 3)) * 10)
        assert (np.abs(out) <= 1.0).all()


class TestMLPGradients:
    def test_param_gradients_match_numerical(self, rng):
        net = MLP(4, [8, 8], 2, rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 2))

        def loss():
            return float(np.sum((net.forward(x) - target) ** 2))

        net.zero_grad()
        out = net.forward(x)
        net.backward(2.0 * (out - target))
        for param, grad in zip(net.params(), net.grads()):
            numeric = numerical_gradient(loss, param)
            assert np.abs(numeric - grad).max() < 1e-6

    def test_input_gradient_matches_numerical(self, rng):
        net = MLP(3, [6], 1, rng)
        x = rng.normal(size=(2, 3))

        net.zero_grad()
        net.forward(x)
        grad_in = net.backward(np.ones((2, 1)))

        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                x[i, j] += eps
                plus = float(net.forward(x).sum())
                x[i, j] -= 2 * eps
                minus = float(net.forward(x).sum())
                x[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        assert np.abs(numeric - grad_in).max() < 1e-6

    def test_tanh_output_gradients(self, rng):
        net = MLP(3, [6], 2, rng, output_activation="tanh")
        x = rng.normal(size=(4, 3))
        target = np.zeros((4, 2))

        def loss():
            return float(np.sum((net.forward(x) - target) ** 2))

        net.zero_grad()
        out = net.forward(x)
        net.backward(2.0 * (out - target))
        numeric = numerical_gradient(loss, net.params()[0])
        assert np.abs(numeric - net.grads()[0]).max() < 1e-6


class TestMLPUtilities:
    def test_rejects_wrong_input_dim(self, rng):
        net = MLP(4, [8], 2, rng)
        with pytest.raises(RLError):
            net.forward(np.zeros((1, 3)))

    def test_rejects_unknown_activation(self, rng):
        with pytest.raises(RLError):
            MLP(4, [8], 2, rng, output_activation="sigmoid")

    def test_copy_params(self, rng):
        a = MLP(4, [8], 2, rng)
        b = MLP(4, [8], 2, rng)
        b.copy_params_from(a)
        x = rng.normal(size=(3, 4))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_soft_update_interpolates(self, rng):
        a = MLP(2, [4], 1, rng)
        b = MLP(2, [4], 1, rng)
        before = [p.copy() for p in b.params()]
        b.soft_update_from(a, tau=0.25)
        for old, new, src in zip(before, b.params(), a.params()):
            assert np.allclose(new, 0.75 * old + 0.25 * src)

    def test_soft_update_tau_one_copies(self, rng):
        a = MLP(2, [4], 1, rng)
        b = MLP(2, [4], 1, rng)
        b.soft_update_from(a, tau=1.0)
        for mine, theirs in zip(b.params(), a.params()):
            assert np.allclose(mine, theirs)

    def test_soft_update_rejects_bad_tau(self, rng):
        a = MLP(2, [4], 1, rng)
        with pytest.raises(RLError):
            a.soft_update_from(a, tau=1.5)

    def test_zero_grad_clears(self, rng):
        net = MLP(2, [4], 1, rng)
        net.forward(np.ones((1, 2)))
        net.backward(np.ones((1, 1)))
        net.zero_grad()
        assert all((g == 0).all() for g in net.grads())

    def test_num_parameters(self, rng):
        net = MLP(2, [4], 1, rng)
        assert net.num_parameters() == (2 * 4 + 4) + (4 * 1 + 1)


class TestOptimizers:
    def _quadratic_problem(self):
        param = np.asarray([5.0, -3.0])
        grad = np.zeros_like(param)
        return param, grad

    def test_sgd_descends_quadratic(self):
        param, grad = self._quadratic_problem()
        opt = SGD([param], [grad], lr=0.1)
        for _ in range(200):
            grad[...] = 2 * param
            opt.step()
        assert np.abs(param).max() < 1e-3

    def test_adam_descends_quadratic(self):
        param, grad = self._quadratic_problem()
        opt = Adam([param], [grad], lr=0.1)
        for _ in range(300):
            grad[...] = 2 * param
            opt.step()
        assert np.abs(param).max() < 1e-3

    def test_adam_handles_sparse_gradients(self):
        param = np.asarray([1.0, 1.0])
        grad = np.zeros_like(param)
        opt = Adam([param], [grad], lr=0.05)
        for step in range(200):
            grad[...] = 0.0
            grad[step % 2] = 2 * param[step % 2]
            opt.step()
        assert np.abs(param).max() < 0.1

    def test_validation(self):
        param = np.zeros(2)
        with pytest.raises(RLError):
            Adam([param], [np.zeros(2)], lr=0.0)
        with pytest.raises(RLError):
            SGD([param], [], lr=0.1)
        with pytest.raises(RLError):
            Adam([param], [np.zeros(2)], beta1=1.0)
