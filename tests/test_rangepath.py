"""Equivalence suite for the vectorized batch range-scan path.

:meth:`LSMTree.range_scan_batch` must be **bit-identical** to the per-op
reference (:func:`repro.lsm.rangepath.reference_range_scan_batch`) in
every simulated observable, and per-range identical to
:meth:`LSMTree.range_lookup`. This module pins both contracts across the
engine layers that dispatch ranges (tree, sharded store, mission runner,
serve lane), plus the memtable sorted-view fast paths the pipeline rides
on (:meth:`MemTable.range_items`, :func:`repro.lsm.iterators.live_items`)
and the profiler's range stages.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_readpath import build_stacked_tree, sim_observables

from repro.config import SystemConfig
from repro.core.missions import MissionRunner
from repro.engine.sharded import ShardedStore
from repro.lsm.flsm import FLSMTree
from repro.lsm.iterators import live_items
from repro.lsm.memtable import MemTable
from repro.lsm.rangepath import (
    RANGE_STAGES,
    multi_arange,
    reference_range_scan_batch,
)
from repro.lsm.readpath import STAGES
from repro.serve.server import REQ_GET, REQ_PUT, REQ_RANGE, KVServer, Request
from repro.workload.spec import (
    OP_LOOKUP,
    OP_RANGE,
    OP_UPDATE,
    mission_from_mix,
)

POLICIES = ("leveling", "tiering", "lazy-leveling")


def make_ranges(rng, n, key_space=15000, max_span=80):
    """Mixed inclusive ranges: wide, degenerate (lo == hi via span 0) and
    out-of-domain (no overlap with any stored key)."""
    los = rng.integers(-key_space // 8, key_space, size=n)
    spans = rng.integers(0, max_span, size=n)
    spans[rng.random(n) < 0.15] = 0  # lo == hi
    los[rng.random(n) < 0.1] += 10 * key_space  # past every stored key
    return los.astype(np.int64), (los + spans).astype(np.int64)


def assert_batch_equal(a, b):
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


class TestBitIdenticalToReference:
    """New pipeline vs the verbatim per-op loop, on identical tree state."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("cache_pages", (0, 64))
    def test_range_scan_batch_matches_reference(self, policy, cache_pages):
        tree, rng = build_stacked_tree(policy, cache_pages=cache_pages)
        state = tree.state_dict()
        los, his = make_ranges(rng, 300)

        out_new = tree.range_scan_batch(los, his)
        after_new = sim_observables(tree)

        twin = FLSMTree(tree.config)
        twin.load_state_dict(state)
        out_ref = reference_range_scan_batch(twin, los, his)
        after_ref = sim_observables(twin)

        assert_batch_equal(out_new, out_ref)
        assert after_new == after_ref
        assert tree.stats.total_ranges == twin.stats.total_ranges == 300

    def test_repeated_batches_with_interleaved_writes(self):
        # Tombstones and fresh writes between batches must not break
        # equivalence (they invalidate the memtable sorted view and can
        # trigger flushes/compactions on both twins identically).
        tree, rng = build_stacked_tree("tiering")
        twin = FLSMTree(tree.config)
        twin.load_state_dict(tree.state_dict())
        for step in range(4):
            los, his = make_ranges(rng, 80)
            assert_batch_equal(
                tree.range_scan_batch(los, his),
                reference_range_scan_batch(twin, los, his),
            )
            assert sim_observables(tree) == sim_observables(twin)
            extra = rng.integers(0, 15000, size=30)
            tree.put_batch(extra, extra * 2)
            twin.put_batch(extra, extra * 2)
            for key in extra[:5].tolist():
                tree.delete(key)
                twin.delete(key)

    def test_memtable_only_tree(self):
        # No levels at all: the batch must still answer from the buffer.
        cfg = SystemConfig(write_buffer_bytes=64 * 1024, seed=1)
        tree = FLSMTree(cfg)
        twin = FLSMTree(cfg)
        for t in (tree, twin):
            t.put(5, 50)
            t.put(9, 90)
            t.delete(5)
        los = np.array([0, 5, 6, 100], dtype=np.int64)
        his = np.array([20, 5, 8, 200], dtype=np.int64)
        keys, values, offsets = tree.range_scan_batch(los, his)
        assert_batch_equal(
            (keys, values, offsets),
            reference_range_scan_batch(twin, los, his),
        )
        assert keys.tolist() == [9]
        assert values.tolist() == [90]
        assert offsets.tolist() == [0, 1, 1, 1, 1]
        assert sim_observables(tree) == sim_observables(twin)

    def test_empty_batch_is_noop(self):
        tree, _ = build_stacked_tree("leveling")
        before = sim_observables(tree)
        empty = np.zeros(0, dtype=np.int64)
        keys, values, offsets = tree.range_scan_batch(empty, empty)
        assert len(keys) == 0 and len(values) == 0
        assert offsets.tolist() == [0]
        assert sim_observables(tree) == before
        assert tree.stats.total_ranges == 0

    def test_inverted_range_rejected_without_charges(self):
        tree, _ = build_stacked_tree("leveling")
        before = sim_observables(tree)
        with pytest.raises(ValueError, match="empty range"):
            tree.range_scan_batch(
                np.array([1, 10], dtype=np.int64),
                np.array([5, 9], dtype=np.int64),
            )
        # Unlike the per-op loop, batch validation happens up front: a
        # rejected batch leaves the simulation untouched.
        assert sim_observables(tree) == before
        assert tree.stats.total_ranges == 0

    def test_mismatched_shapes_rejected(self):
        tree, _ = build_stacked_tree("leveling")
        with pytest.raises(ValueError, match="equal length"):
            tree.range_scan_batch(
                np.array([1, 2], dtype=np.int64),
                np.array([3], dtype=np.int64),
            )


class TestBatchMatchesPerOpRangeLookup:
    """range_scan_batch ≡ per-op range_lookup, exactly.

    The batch path replays charges in the reference order, so equality is
    exact under *any* cost model — no dyadic-cost crutch needed.
    """

    def _check(self, tree, los, his):
        twin = FLSMTree(tree.config)
        twin.load_state_dict(tree.state_dict())

        t0 = tree.clock.now
        keys, values, offsets = tree.range_scan_batch(los, his)
        batch_sim_s = tree.clock.now - t0

        t0 = twin.clock.now
        expected = [
            twin.range_lookup(int(lo), int(hi)) for lo, hi in zip(los, his)
        ]
        scalar_sim_s = twin.clock.now - t0

        bounds = offsets.tolist()
        for i, pairs in enumerate(expected):
            got = list(
                zip(
                    keys[bounds[i] : bounds[i + 1]].tolist(),
                    values[bounds[i] : bounds[i + 1]].tolist(),
                )
            )
            assert got == pairs
        assert batch_sim_s == scalar_sim_s
        assert dict(tree.stats.level_read_time) == dict(
            twin.stats.level_read_time
        )
        assert tree.stats.total_ranges == twin.stats.total_ranges
        assert (
            tree.disk.counters.state_dict()
            == twin.disk.counters.state_dict()
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policies(self, policy):
        tree, rng = build_stacked_tree(policy)
        los, his = make_ranges(rng, 200)
        self._check(tree, los, his)

    @pytest.mark.parametrize("policy", POLICIES)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_property(self, policy, data):
        n = data.draw(st.integers(min_value=0, max_value=400), label="n_writes")
        key_space = data.draw(
            st.integers(min_value=1, max_value=1200), label="key_space"
        )
        cfg = SystemConfig(
            write_buffer_bytes=4 * 1024,
            size_ratio=3,
            seed=11,
        )
        tree = FLSMTree(cfg)
        tree.set_named_policy(policy)
        rng = np.random.default_rng(
            data.draw(st.integers(min_value=0, max_value=2**31), label="seed")
        )
        if n:
            keys = rng.integers(0, key_space, size=n)
            tree.put_batch(keys, rng.integers(0, 10**6, size=n))
            # Tombstones over live keys, some still in the memtable, so
            # the merge must shadow disk-resident versions mid-batch.
            for key in keys[rng.random(n) < 0.1].tolist():
                tree.delete(key)
        n_ranges = data.draw(
            st.integers(min_value=0, max_value=60), label="n_ranges"
        )
        los, his = make_ranges(
            rng, n_ranges, key_space=key_space + 16, max_span=40
        )
        self._check(tree, los, his)


class TestShardedConformance:
    def _loaded(self, n_shards, seed=5):
        cfg = SystemConfig(write_buffer_bytes=8 * 1024, size_ratio=4, seed=seed)
        store = ShardedStore(cfg, n_shards)
        rng = np.random.default_rng(seed)
        keys = np.unique(rng.integers(0, 30000, size=6000))
        store.bulk_load(keys, rng.integers(0, 10**6, size=len(keys)))
        store.put_batch(
            rng.integers(0, 30000, size=400), rng.integers(0, 10**6, size=400)
        )
        for key in rng.integers(0, 30000, size=40).tolist():
            store.delete(key)
        return store, rng

    @pytest.mark.parametrize("n_shards", (1, 4))
    def test_batch_matches_per_op(self, n_shards):
        store, rng = self._loaded(n_shards)
        twin = ShardedStore(store.config, n_shards)
        twin.load_state_dict(store.state_dict())
        los, his = make_ranges(rng, 150, key_space=30000)

        keys, values, offsets = store.range_scan_batch(los, his)
        expected = [
            twin.range_lookup(int(lo), int(hi)) for lo, hi in zip(los, his)
        ]

        bounds = offsets.tolist()
        for i, pairs in enumerate(expected):
            got = list(
                zip(
                    keys[bounds[i] : bounds[i + 1]].tolist(),
                    values[bounds[i] : bounds[i + 1]].tolist(),
                )
            )
            assert got == pairs
        # Home-shard op counting and per-shard charges must agree shard
        # by shard, not just in aggregate.
        for a, b in zip(store.shards, twin.shards):
            assert a.clock.now == b.clock.now
            assert a.stats.total_ranges == b.stats.total_ranges
            assert dict(a.stats.level_read_time) == dict(
                b.stats.level_read_time
            )
        assert (
            store.stats.total_ranges == twin.stats.total_ranges == len(los)
        )

    def test_empty_and_invalid_batches(self):
        store, _ = self._loaded(2)
        empty = np.zeros(0, dtype=np.int64)
        keys, values, offsets = store.range_scan_batch(empty, empty)
        assert len(keys) == 0 and offsets.tolist() == [0]
        before = store.clock_now
        with pytest.raises(ValueError, match="empty range"):
            store.range_scan_batch(
                np.array([9], dtype=np.int64), np.array([1], dtype=np.int64)
            )
        with pytest.raises(ValueError, match="equal length"):
            store.range_scan_batch(
                np.array([1, 2], dtype=np.int64), np.array([3], dtype=np.int64)
            )
        assert store.clock_now == before
        assert store.stats.total_ranges == 0


class TestMissionRunnerBatchesRanges:
    def test_chunked_run_matches_per_op_replay(self):
        cfg = SystemConfig(write_buffer_bytes=8 * 1024, size_ratio=4, seed=3)
        rng = np.random.default_rng(9)
        size = 800
        mission = mission_from_mix(
            rng,
            size,
            0.6,
            rng.integers(0, 5000, size=size),
            rng.integers(0, 5000, size=size),
            rng.integers(0, 10**6, size=size),
            range_fraction=0.3,
            range_span=40,
        )
        load_keys = np.arange(5000, dtype=np.int64)
        load_values = rng.integers(0, 10**6, size=5000)
        chunked = FLSMTree(cfg)
        replay = FLSMTree(cfg)
        chunked.bulk_load(load_keys, load_values)
        replay.bulk_load(load_keys, load_values)

        chunk_size = 64
        got = MissionRunner(chunked, chunk_size=chunk_size).run(mission)

        # The pre-PR chunk body: per-op range_lookup in chunk order.
        replay.begin_mission()
        for start in range(0, size, chunk_size):
            stop = min(start + chunk_size, size)
            kinds = mission.kinds[start:stop]
            keys = mission.keys[start:stop]
            spans = mission.spans[start:stop]
            updates = kinds == OP_UPDATE
            if updates.any():
                replay.put_batch(
                    keys[updates], mission.values[start:stop][updates]
                )
            lookups = kinds == OP_LOOKUP
            if lookups.any():
                replay.get_batch(keys[lookups])
            for i in np.flatnonzero(kinds == OP_RANGE):
                lo = int(keys[i])
                replay.range_lookup(lo, lo + max(0, int(spans[i]) - 1))
        want = replay.end_mission()

        assert got.n_ranges == want.n_ranges > 0
        assert got.read_time == want.read_time
        assert got.write_time == want.write_time
        assert got.level_read_time == want.level_read_time
        assert got.io.state_dict() == want.io.state_dict()
        assert chunked.clock.now == replay.clock.now


class TestServeConformance:
    def _server(self, n_shards=2, seed=7):
        cfg = SystemConfig(
            write_buffer_bytes=64 * 1024, size_ratio=6, seed=seed
        )
        store = ShardedStore(cfg, n_shards)
        rng = np.random.default_rng(seed)
        keys = np.unique(rng.integers(0, 8000, size=4000))
        store.bulk_load(keys, rng.integers(0, 10**6, size=len(keys)))
        server = KVServer(store, max_batch=64)
        server._running = True  # enqueue without workers: one exact batch
        return server, store, rng

    def test_served_batch_matches_direct_engine(self):
        server, store, rng = self._server()
        direct = ShardedStore(store.config, store.n_shards)
        direct.load_state_dict(store.state_dict())
        lane = server.lanes[0]
        requests = [
            Request(REQ_PUT, 17, value=1),
            Request(REQ_GET, 17),
            Request(REQ_RANGE, 50, span=20),
            Request(REQ_RANGE, 50, span=0),  # degenerate: single key
            Request(REQ_RANGE, 10**7, span=5),  # no overlap
            Request(REQ_RANGE, 4000, span=64),
        ]
        for request in requests:
            request.t_submit = time.perf_counter()
        server._serve_batch(lane, requests)

        direct.put(17, 1)
        direct.get(17)
        ranges = [r for r in requests if r.kind == REQ_RANGE]
        los = np.array([r.key for r in ranges], dtype=np.int64)
        his = np.array(
            [r.key + max(0, r.span - 1) for r in ranges], dtype=np.int64
        )
        keys, values, offsets = direct.range_scan_batch(los, his)
        bounds = offsets.tolist()
        for i, request in enumerate(ranges):
            got_keys, got_values = request.result
            np.testing.assert_array_equal(
                got_keys, keys[bounds[i] : bounds[i + 1]]
            )
            np.testing.assert_array_equal(
                got_values, values[bounds[i] : bounds[i + 1]]
            )
        # Serving the coalesced batch charges the same simulated totals
        # as the offline batch path.
        for a, b in zip(store.shards, direct.shards):
            assert a.clock.now == b.clock.now
            assert a.stats.total_ranges == b.stats.total_ranges


class TestMemtableRangeItems:
    def _table(self, with_view):
        table = MemTable(256)
        rng = np.random.default_rng(2)
        for key in rng.integers(0, 500, size=120).tolist():
            table.put(key, key * 3)
        table.delete(7)
        table.put(13, 1)
        table.delete(13)  # tombstone over a live buffered key
        if with_view:
            table.sorted_view()
            assert table._sorted_view is not None
        else:
            assert table._sorted_view is None
        return table

    @pytest.mark.parametrize("with_view", (False, True), ids=["scan", "view"])
    @pytest.mark.parametrize(
        "bounds",
        [(0, 499), (100, 100), (7, 13), (600, 900), (-50, 20), (499, 10**6)],
    )
    def test_equivalence_with_dict_scan(self, with_view, bounds):
        table = self._table(with_view)
        lo, hi = bounds
        assert table.range_items(lo, hi) == table.range_items_scan(lo, hi)

    def test_view_path_includes_tombstones(self):
        table = self._table(with_view=True)
        from repro.lsm.entry import TOMBSTONE

        items = table.range_items(7, 13)
        assert items[7] == TOMBSTONE and items[13] == TOMBSTONE

    def test_stale_view_rebuild(self):
        table = self._table(with_view=True)
        table.put(10_000, 5)  # invalidates the view
        assert table._sorted_view is None
        # Stale view: the scan fallback answers (and must see the write).
        assert table.range_items(10_000, 10_000) == {10_000: 5}
        # A batch reader rebuilds the view; the fast path takes over.
        table.sorted_view()
        assert table._sorted_view is not None
        assert table.range_items(10_000, 10_000) == {10_000: 5}
        assert table.range_items(0, 10**6) == table.range_items_scan(0, 10**6)

    def test_sorted_view_is_cached_and_sorted(self):
        table = self._table(with_view=False)
        mk, mv = table.sorted_view()
        assert (np.diff(mk) > 0).all()
        again = table.sorted_view()
        assert again[0] is mk and again[1] is mv  # no rebuild
        assert len(mk) == len(table)

    def test_empty_table_view(self):
        table = MemTable(8)
        mk, mv = table.sorted_view()
        assert len(mk) == 0 and len(mv) == 0
        assert table.range_items(0, 100) == {}


class TestLiveItemsUsesSortedView:
    def test_matches_reference_merge_and_builds_view(self):
        tree, _ = build_stacked_tree("tiering")
        tree.put(10**6, 42)  # guarantee a buffered live entry
        assert tree.memtable._sorted_view is None
        keys, values = live_items(tree)
        assert tree.memtable._sorted_view is not None  # view reused
        # Against the ground truth: per-key gets see the same live set.
        assert (np.diff(keys) > 0).all()
        lookup = dict(zip(keys.tolist(), values.tolist()))
        assert lookup[10**6] == 42
        for key in list(lookup)[::97]:
            assert tree.get(key) == lookup[key]


class TestRangeProfiler:
    def test_range_stages_registered(self):
        assert set(RANGE_STAGES) < set(STAGES)

    def test_profiling_does_not_change_simulation(self):
        tree, rng = build_stacked_tree("tiering")
        profiled = FLSMTree(tree.config, profile=True)
        profiled.load_state_dict(tree.state_dict())
        los, his = make_ranges(rng, 120)
        assert_batch_equal(
            tree.range_scan_batch(los, his),
            profiled.range_scan_batch(los, his),
        )
        assert sim_observables(tree) == sim_observables(profiled)

    def test_stages_populated_and_reported(self):
        tree, rng = build_stacked_tree("tiering")
        profiled = FLSMTree(tree.config, profile=True)
        profiled.load_state_dict(tree.state_dict())
        los, his = make_ranges(rng, 50)
        profiled.range_scan_batch(los, his)
        prof = profiled.read_profiler
        assert prof.n_range_batches == 1 and prof.n_ranges == 50
        assert prof.n_batches == 0  # point counters untouched
        for stage in RANGE_STAGES:
            assert prof.calls[stage] == 1
        summary = prof.summary()
        assert summary["n_range_batches"] == 1
        assert summary["n_ranges"] == 50
        report = prof.format_report()
        for stage in RANGE_STAGES:
            assert stage in report
        prof.reset()
        assert prof.n_range_batches == 0 and prof.n_ranges == 0


class TestMultiArange:
    def test_matches_concatenated_aranges(self):
        rng = np.random.default_rng(4)
        starts = rng.integers(0, 100, size=30)
        lengths = rng.integers(0, 10, size=30)
        lengths[::5] = 0  # zero-length blocks vanish
        expected = np.concatenate(
            [np.arange(s, s + n) for s, n in zip(starts, lengths)]
            or [np.zeros(0, dtype=np.int64)]
        )
        np.testing.assert_array_equal(
            multi_arange(starts, lengths), expected
        )

    def test_empty(self):
        empty = np.zeros(0, dtype=np.int64)
        assert len(multi_arange(empty, empty)) == 0
