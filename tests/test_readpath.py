"""Equivalence suite for the vectorized level-at-a-time read path.

The stacked pipeline in :meth:`LSMTree.get_batch` must be **bit-identical**
to the run-at-a-time reference (:func:`repro.lsm.readpath.reference_get_batch`)
in every simulated observable, and semantically identical to per-key
:meth:`LSMTree.get`. This module pins both contracts, plus the batched
storage primitives the pipeline rides on (:meth:`LRUBlockCache.access_batch`,
:meth:`DiskModel.random_read_batch`, :meth:`SimClock.advance_repeated`) and
the memtable sorted-view cache.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import BloomMode, CostModelParams, SystemConfig
from repro.errors import StorageError
from repro.lsm.flsm import FLSMTree
from repro.lsm.level import LevelLookupIndex
from repro.lsm.memtable import MemTable
from repro.lsm.readpath import STAGES, ReadPathProfiler, reference_get_batch
from repro.lsm.tree import LSMTree
from repro.storage.cache import LRUBlockCache
from repro.storage.clock import SimClock
from repro.storage.pager import DiskModel

#: Power-of-two cost constants: every per-event charge is a dyadic float, so
#: per-key and batched accumulation orders produce bit-equal sums and the
#: get_batch ≡ per-key-get property can demand exact equality.
DYADIC_COSTS = CostModelParams(
    random_read_s=2.0**-15,
    random_write_s=2.0**-15,
    seq_read_s=2.0**-17,
    seq_write_s=2.0**-17,
    run_probe_cpu_s=2.0**-18,
    compaction_entry_cpu_s=2.0**-20,
)

POLICIES = ("leveling", "tiering", "lazy-leveling")


def build_stacked_tree(
    policy,
    *,
    cache_pages=0,
    bloom_mode=BloomMode.ANALYTICAL,
    costs=None,
    n=6000,
    seed=3,
):
    """A multi-level tree with deletes sprinkled in, pinned to ``policy``."""
    cfg = SystemConfig(
        write_buffer_bytes=8 * 1024,
        size_ratio=4,
        block_cache_pages=cache_pages,
        bloom_mode=bloom_mode,
        seed=seed,
        costs=costs if costs is not None else CostModelParams(),
    )
    tree = FLSMTree(cfg)
    if policy is not None:
        tree.set_named_policy(policy)
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n * 2, size=n)
    values = rng.integers(0, 10**6, size=n)
    tree.put_batch(keys, values)
    for key in keys[:50].tolist():
        tree.delete(key)
    return tree, rng


def sim_observables(tree):
    """Everything the simulation contract says a lookup may change."""
    return (
        tree.clock.now,
        tree.stats.total_read_time,
        dict(tree.stats.level_read_time),
        tree.cache.state_dict(),
        tree.disk.counters.state_dict(),
        tree._rng.bit_generator.state,
    )


class TestBitIdenticalToReference:
    """New pipeline vs the verbatim pre-PR loop, on identical tree state."""

    @pytest.mark.parametrize("policy", (None,) + POLICIES)
    @pytest.mark.parametrize("cache_pages", (0, 64))
    @pytest.mark.parametrize(
        "bloom_mode", (BloomMode.ANALYTICAL, BloomMode.BIT_ARRAY)
    )
    def test_get_batch_matches_reference(self, policy, cache_pages, bloom_mode):
        tree, rng = build_stacked_tree(
            policy, cache_pages=cache_pages, bloom_mode=bloom_mode
        )
        state = tree.state_dict()
        probes = rng.integers(0, 15000, size=4000).astype(np.int64)

        found_new, values_new = tree.get_batch(probes)
        after_new = sim_observables(tree)

        twin = FLSMTree(tree.config)
        twin.load_state_dict(state)
        found_ref, values_ref = reference_get_batch(twin, probes)
        after_ref = sim_observables(twin)

        np.testing.assert_array_equal(found_new, found_ref)
        np.testing.assert_array_equal(values_new, values_ref)
        assert after_new == after_ref

    def test_stacked_runs_actually_exercised(self):
        # Guard the fixture: tiering/lazy-leveling must produce a level with
        # >= 2 runs, or the stacked-index path silently goes untested.
        for policy in ("tiering", "lazy-leveling"):
            tree, _ = build_stacked_tree(policy)
            assert max(level.n_runs for level in tree.levels) >= 2, policy

    def test_repeated_batches_stay_identical(self):
        # Cache warm-up and memtable writes between batches must not break
        # equivalence (the cached level index is invalidated by compaction,
        # the sorted view by writes).
        tree, rng = build_stacked_tree("tiering", cache_pages=32)
        twin = FLSMTree(tree.config)
        twin.load_state_dict(tree.state_dict())
        for step in range(4):
            probes = rng.integers(0, 15000, size=1000).astype(np.int64)
            found_new, values_new = tree.get_batch(probes)
            found_ref, values_ref = reference_get_batch(twin, probes)
            np.testing.assert_array_equal(found_new, found_ref)
            np.testing.assert_array_equal(values_new, values_ref)
            assert sim_observables(tree) == sim_observables(twin)
            extra_keys = rng.integers(0, 15000, size=40)
            extra_values = rng.integers(0, 10**6, size=40)
            tree.put_batch(extra_keys, extra_values)
            twin.put_batch(extra_keys, extra_values)


class TestBatchMatchesPerKeyGet:
    """get_batch ≡ per-key get under dyadic costs + deterministic Blooms."""

    def _check(self, tree, probes):
        twin = FLSMTree(tree.config)
        twin.load_state_dict(tree.state_dict())

        t0 = tree.clock.now
        found, values = tree.get_batch(probes)
        batch_sim_s = tree.clock.now - t0

        t0 = twin.clock.now
        expected = [twin.get(key) for key in probes.tolist()]
        scalar_sim_s = twin.clock.now - t0

        for i, value in enumerate(expected):
            assert found[i] == (value is not None)
            if value is not None:
                assert values[i] == value
        assert batch_sim_s == scalar_sim_s
        assert dict(tree.stats.level_read_time) == dict(
            twin.stats.level_read_time
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policies(self, policy):
        tree, rng = build_stacked_tree(
            policy, bloom_mode=BloomMode.BIT_ARRAY, costs=DYADIC_COSTS
        )
        probes = rng.integers(0, 15000, size=2000).astype(np.int64)
        self._check(tree, probes)

    @pytest.mark.parametrize("policy", POLICIES)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_property(self, policy, data):
        n = data.draw(st.integers(min_value=0, max_value=400), label="n_writes")
        key_space = data.draw(
            st.integers(min_value=1, max_value=1200), label="key_space"
        )
        cfg = SystemConfig(
            write_buffer_bytes=4 * 1024,
            size_ratio=3,
            bloom_mode=BloomMode.BIT_ARRAY,
            seed=11,
            costs=DYADIC_COSTS,
        )
        tree = FLSMTree(cfg)
        tree.set_named_policy(policy)
        rng = np.random.default_rng(
            data.draw(st.integers(min_value=0, max_value=2**31), label="seed")
        )
        if n:
            keys = rng.integers(0, key_space, size=n)
            tree.put_batch(keys, rng.integers(0, 10**6, size=n))
            # Tombstones over live keys, some still in the memtable, so the
            # batch must shadow disk-resident versions mid-lookup.
            for key in keys[rng.random(n) < 0.1].tolist():
                tree.delete(key)
        probes = rng.integers(
            0, key_space + 16, size=data.draw(
                st.integers(min_value=0, max_value=300), label="n_probes"
            )
        ).astype(np.int64)
        self._check(tree, probes)


class TestLevelLookupIndex:
    def _runs(self, tree):
        for level in tree.levels:
            if level.n_runs >= 2:
                return level
        raise AssertionError("fixture produced no stacked level")

    def test_newest_rank_semantics(self):
        tree, _ = build_stacked_tree("tiering")
        level = self._runs(tree)
        index = level.lookup_index()
        probe = np.unique(
            np.concatenate([run.keys for run in level.runs])
        )
        rank, values, positions = index.newest_ranks(probe)
        n_runs = level.n_runs
        newest_first = list(reversed(level.runs))
        for i, key in enumerate(probe.tolist()):
            expected_rank = n_runs
            for j, run in enumerate(newest_first):
                hit, value, page = run.find(key)
                if hit:
                    expected_rank = j
                    assert values[i] == value
                    assert positions[i] == np.searchsorted(run.keys, key)
                    break
            assert rank[i] == expected_rank

    def test_absent_keys_get_sentinel(self):
        tree, _ = build_stacked_tree("tiering")
        level = self._runs(tree)
        index = level.lookup_index()
        all_keys = np.concatenate([run.keys for run in level.runs])
        absent = np.array(
            [all_keys.max() + 10, all_keys.min() - 10], dtype=np.int64
        )
        rank, _, _ = index.newest_ranks(absent)
        assert (rank == level.n_runs).all()

    def test_index_cached_until_runs_change(self):
        tree, _ = build_stacked_tree("tiering")
        level = self._runs(tree)
        assert level.lookup_index() is level.lookup_index()

    def test_empty_runs_skipped(self):
        index = LevelLookupIndex([])
        rank, values, positions = index.newest_ranks(
            np.array([1, 2, 3], dtype=np.int64)
        )
        assert (rank == 0).all()
        assert len(values) == 3


class TestCacheBatchAccess:
    @pytest.mark.parametrize("capacity", (0, 1, 3, 64))
    def test_access_batch_equals_per_page_loop(self, capacity):
        rng = np.random.default_rng(5)
        batches = [
            rng.integers(0, 12, size=rng.integers(0, 20)).tolist()
            for _ in range(30)
        ]
        batched = LRUBlockCache(capacity)
        looped = LRUBlockCache(capacity)
        for i, pages in enumerate(batches):
            run_id = i % 3
            hits = batched.access_batch(run_id, pages)
            expected_hits = sum(
                looped.access((run_id, page)) for page in pages
            )
            assert hits == expected_hits
            # Full state machine equality: resident pages in LRU order,
            # hit/miss counters.
            assert batched.state_dict() == looped.state_dict()

    def test_empty_batch_is_noop(self):
        cache = LRUBlockCache(4)
        assert cache.access_batch(1, []) == 0
        assert cache.state_dict() == LRUBlockCache(4).state_dict()

    def test_capacity_zero_counts_misses(self):
        cache = LRUBlockCache(0)
        assert cache.access_batch(1, [1, 2, 3]) == 0
        assert cache.misses == 3 and cache.hits == 0
        assert len(cache) == 0


class TestDiskBatchRead:
    def _disk(self, capacity):
        return DiskModel(CostModelParams(), SimClock(), LRUBlockCache(capacity))

    def test_no_cache_keeps_single_shot_pricing(self):
        # With caching disabled the whole batch is priced as one n*cost
        # advance — the seed's behavior, which bench baselines pin. (A
        # per-page loop would round differently; only the cache-enabled
        # branch promises loop-bitwise charging.)
        disk = self._disk(0)
        pages = np.array([3, 1, 3, 7])
        total = disk.random_read_batch(9, pages)
        assert total == len(pages) * CostModelParams().random_read_s
        assert disk.clock.now == total
        assert disk.counters.random_reads == len(pages)
        assert disk.cache.misses == len(pages)

    @pytest.mark.parametrize("capacity", (1, 4, 64))
    def test_random_read_batch_equals_loop(self, capacity):
        rng = np.random.default_rng(9)
        batched = self._disk(capacity)
        looped = self._disk(capacity)
        for i in range(25):
            pages = rng.integers(0, 10, size=rng.integers(0, 16))
            run_id = i % 2
            total = batched.random_read_batch(run_id, pages)
            expected = sum(
                looped.random_read(run_id, page) for page in pages.tolist()
            )
            assert total == expected
            # Clock must accumulate bit-identically, not just approximately.
            assert batched.clock.now == looped.clock.now
            assert batched.counters.state_dict() == looped.counters.state_dict()
            assert batched.cache.state_dict() == looped.cache.state_dict()

    def test_negative_page_rejected_when_cached(self):
        # Only the cache-enabled branch materializes the page array; the
        # no-cache branch prices the batch without inspecting pages (seed
        # behavior on the hot default path).
        disk = self._disk(8)
        with pytest.raises(StorageError):
            disk.random_read_batch(1, np.array([0, -1, 2]))

    def test_snapshot_page_keys_stay_json_clean(self):
        # access_batch receives .tolist()'d pages, so the snapshot must hold
        # plain ints (numpy ints would break JSON round-trips).
        disk = self._disk(8)
        disk.random_read_batch(3, np.array([1, 2, 1]))
        for run_id, page in disk.cache.state_dict()["pages"]:
            assert type(run_id) is int and type(page) is int


class TestAdvanceRepeated:
    def test_matches_loop_bitwise(self):
        step = 25e-6  # non-dyadic on purpose: rounding order must match
        batched, looped = SimClock(), SimClock()
        total = batched.advance_repeated(step, 1000)
        expected = 0.0
        for _ in range(1000):
            expected += step
            looped.advance(step)
        assert total == expected
        assert batched.now == looped.now
        # And differs from the single-shot product in general, which is why
        # advance_repeated exists at all.
        assert total != 1000 * step

    def test_zero_times(self):
        clock = SimClock()
        assert clock.advance_repeated(1.0, 0) == 0.0
        assert clock.now == 0.0

    def test_rejects_negative(self):
        clock = SimClock()
        with pytest.raises(StorageError):
            clock.advance_repeated(-1.0, 3)
        with pytest.raises(StorageError):
            clock.advance_repeated(1.0, -3)


class TestMemtableSortedView:
    def _probe(self, table, keys):
        return table.get_batch(np.asarray(keys, dtype=np.int64))

    def test_view_reused_across_batches(self):
        table = MemTable(64)
        for i in range(20):
            table.put(i * 3, i)
        self._probe(table, list(range(40)))
        view = table._sorted_view
        assert view is not None
        self._probe(table, list(range(40)))
        assert table._sorted_view is view  # no rebuild for read-only batches

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda t: t.put(999, 1),
            lambda t: t.delete(3),
            lambda t: t.put_batch(
                np.array([7, 8], dtype=np.int64),
                np.array([1, 2], dtype=np.int64),
            ),
            lambda t: t.clear(),
        ],
        ids=["put", "delete", "put_batch", "clear"],
    )
    def test_any_write_invalidates_view(self, mutate):
        table = MemTable(64)
        for i in range(20):
            table.put(i * 3, i)
        self._probe(table, list(range(40)))
        assert table._sorted_view is not None
        mutate(table)
        assert table._sorted_view is None

    def test_load_state_dict_invalidates_view(self):
        table = MemTable(64)
        table.put(1, 10)
        state = table.state_dict()
        self._probe(table, [1])
        table.load_state_dict(state)
        assert table._sorted_view is None

    def test_stale_view_small_batch_still_correct(self):
        # Small batches against a stale view take the dict-probe fallback;
        # results must match regardless of which path answered.
        table = MemTable(64)
        for i in range(30):
            table.put(i * 2, i)
        table.delete(4)
        assert table._sorted_view is None
        buffered, values = self._probe(table, [0, 1, 4, 58])
        assert buffered.tolist() == [True, False, True, True]
        assert values[0] == 0 and values[3] == 29

    def test_drain_reuses_valid_view(self):
        table = MemTable(64)
        for key, value in ((5, 50), (1, 10), (3, 30)):
            table.put(key, value)
        self._probe(table, [1, 2, 3, 4, 5] * 13)  # batch >= len builds view
        view = table._sorted_view
        assert view is not None
        keys, values = table.drain_sorted()
        assert keys is view[0] and values is view[1]  # ownership transfer
        assert keys.tolist() == [1, 3, 5]
        assert values.tolist() == [10, 30, 50]
        assert len(table) == 0 and table._sorted_view is None

    def test_drain_without_view_sorts(self):
        table = MemTable(8)
        for key in (9, 2, 7):
            table.put(key, key * 10)
        keys, values = table.drain_sorted()
        assert keys.tolist() == [2, 7, 9]
        assert values.tolist() == [20, 70, 90]


class TestReadPathProfiler:
    def test_disabled_by_default(self, tiny_config):
        assert LSMTree(tiny_config).read_profiler is None

    def test_profiling_does_not_change_simulation(self):
        tree, rng = build_stacked_tree("tiering", cache_pages=16)
        profiled = FLSMTree(tree.config, profile=True)
        profiled.load_state_dict(tree.state_dict())
        probes = rng.integers(0, 15000, size=2000).astype(np.int64)
        found_plain, values_plain = tree.get_batch(probes)
        found_prof, values_prof = profiled.get_batch(probes)
        np.testing.assert_array_equal(found_plain, found_prof)
        np.testing.assert_array_equal(values_plain, values_prof)
        assert sim_observables(tree) == sim_observables(profiled)

    def test_stages_populated(self):
        tree, rng = build_stacked_tree("tiering", cache_pages=16)
        profiled = FLSMTree(tree.config, profile=True)
        profiled.load_state_dict(tree.state_dict())
        probes = rng.integers(0, 15000, size=2000).astype(np.int64)
        profiled.get_batch(probes)
        prof = profiled.read_profiler
        assert prof.n_batches == 1 and prof.n_keys == 2000
        summary = prof.summary()
        assert set(summary["stages"]) == set(STAGES)
        assert prof.seconds["memtable"] >= 0.0
        assert prof.calls["bloom"] > 0  # disk levels were probed
        assert prof.total_seconds == sum(prof.seconds.values())

    def test_summary_fractions_sum_to_one(self):
        prof = ReadPathProfiler()
        prof.add("memtable", 0.25)
        prof.add("bloom", 0.75)
        fractions = [
            stage["fraction"] for stage in prof.summary()["stages"].values()
        ]
        assert sum(fractions) == pytest.approx(1.0)

    def test_format_report_and_reset(self):
        prof = ReadPathProfiler()
        prof.note_batch(10)
        prof.add("cache", 0.001)
        report = prof.format_report()
        for stage in STAGES:
            assert stage in report
        prof.reset()
        assert prof.n_batches == 0 and prof.total_seconds == 0.0
