"""Durable store: WAL framing, SSTable codec, manifest, recovery.

The crash-matrix (kill -9 at every injection point) lives in
``tests/test_crash_recovery.py``; this module covers the crash-free
contracts: byte-level codecs survive arbitrary truncation, files round-trip
bit-exactly, a reopened store equals the store that closed, and the durable
engine composes with the persist/obs/engine layers.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BloomMode, TransitionKind
from repro.durable import (
    DurableStore,
    WalReader,
    WalWriter,
    read_manifest,
    read_sstable,
    replay_wal_bytes,
    write_sstable,
)
from repro.durable.manifest import ManifestState, decode_edits, encode_edit
from repro.durable.sstable import sstable_path
from repro.durable.wal import (
    OP_DELETE,
    OP_PUT,
    OP_SYNC,
    encode_record,
    segment_path,
)
from repro.engine.base import KVEngine
from repro.errors import DurabilityError


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


def fill(store, n_batches=12, batch=120, keyspace=2_000, seed=11):
    """Deterministic put/delete mix; returns the expected dict model."""
    rng = np.random.default_rng(seed)
    model = {}
    for i in range(n_batches):
        keys = rng.integers(0, keyspace, size=batch)
        values = rng.integers(0, 10**6, size=batch)
        store.put_batch(keys, values)
        for k, v in zip(keys.tolist(), values.tolist()):
            model[k] = v
        if i % 3 == 2:
            dels = rng.integers(0, keyspace, size=4)
            for k in dels.tolist():
                store.delete(int(k))
                model.pop(int(k), None)
    return model


def assert_contents(store, model):
    keys = np.array(sorted(model), dtype=np.int64)
    found, values = store.get_batch(keys)
    assert found.all()
    expected = np.array([model[int(k)] for k in keys], dtype=np.int64)
    np.testing.assert_array_equal(values, expected)


# ----------------------------------------------------------------------
# WAL record framing
# ----------------------------------------------------------------------
record_strategy = st.lists(
    st.tuples(
        st.sampled_from([OP_PUT, OP_DELETE, OP_SYNC]),
        st.integers(min_value=0, max_value=2**40),
        st.lists(
            st.integers(min_value=-(2**62), max_value=2**62), max_size=4
        ),
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(record_strategy)
def test_wal_truncation_recovers_exact_prefix(specs):
    """Cutting a WAL at *every* byte offset yields exactly the records
    whose frames fit entirely before the cut — never garbage, never a
    record beyond the cut."""
    frames = []
    records = []
    for op, seqno, key_list in specs:
        keys = np.array(key_list, dtype=np.int64)
        values = keys + 1
        if op == OP_SYNC:
            frames.append(encode_record(OP_SYNC, seqno))
            records.append((op, seqno, 0))
        elif op == OP_PUT:
            frames.append(encode_record(OP_PUT, seqno, keys, values))
            records.append((op, seqno, len(keys)))
        else:
            frames.append(encode_record(OP_DELETE, seqno, keys))
            records.append((op, seqno, len(keys)))
    data = b"".join(frames)
    boundaries = []
    offset = 0
    for frame in frames:
        offset += len(frame)
        boundaries.append(offset)
    for cut in range(len(data) + 1):
        decoded, valid_bytes, torn = replay_wal_bytes(data[:cut])
        n_whole = sum(1 for b in boundaries if b <= cut)
        assert len(decoded) == n_whole
        assert valid_bytes == (boundaries[n_whole - 1] if n_whole else 0)
        assert torn == (cut != valid_bytes)
        for rec, (op, seqno, n) in zip(decoded, records):
            assert (rec.op, rec.seqno, len(rec.keys)) == (op, seqno, n)


@settings(max_examples=40, deadline=None)
@given(record_strategy, st.data())
def test_wal_corruption_yields_clean_prefix(specs, data_strategy):
    """Flipping any byte never raises and never invents records — replay
    returns some prefix of what was written."""
    frames = []
    for op, seqno, key_list in specs:
        keys = np.array(key_list, dtype=np.int64)
        if op == OP_SYNC:
            frames.append(encode_record(OP_SYNC, seqno))
        elif op == OP_PUT:
            frames.append(encode_record(OP_PUT, seqno, keys, keys))
        else:
            frames.append(encode_record(OP_DELETE, seqno, keys))
    data = bytearray(b"".join(frames))
    clean, _, _ = replay_wal_bytes(bytes(data))
    pos = data_strategy.draw(
        st.integers(min_value=0, max_value=len(data) - 1)
    )
    data[pos] ^= 0xFF
    decoded, valid_bytes, _ = replay_wal_bytes(bytes(data))
    assert len(decoded) <= len(clean)
    assert valid_bytes <= len(data)
    for rec, ref in zip(decoded, clean):
        if rec.seqno != ref.seqno or rec.op != ref.op:
            # The flipped byte landed in this record yet its CRC passed —
            # impossible; anything before the flip must match exactly.
            raise AssertionError("corruption produced a non-prefix record")


def test_wal_writer_reader_roundtrip(tmp_path):
    path = segment_path(str(tmp_path), 1)
    writer = WalWriter(path)
    writer.append_put(1, np.array([5, 7]), np.array([50, 70]))
    writer.append_delete(3, np.array([5]))
    writer.sync(3)
    writer.close()
    reader = WalReader(path)
    assert not reader.torn
    assert [r.op for r in reader.records] == [OP_PUT, OP_DELETE, OP_SYNC]
    assert reader.last_synced_seqno == 3
    assert reader.max_seqno == 3
    np.testing.assert_array_equal(reader.records[0].values, [50, 70])


def test_wal_sync_marker_rejects_payload():
    assert replay_wal_bytes(encode_record(OP_SYNC, 9))[0][0].seqno == 9
    bad = encode_record(OP_DELETE, 9, np.array([1]))
    # Rewrite the op byte to SYNC: structurally invalid (n != 0), but the
    # CRC was computed over the original payload, so the frame is simply
    # rejected as torn.
    records, _, torn = replay_wal_bytes(bad[:8] + b"\x03" + bad[9:])
    assert records == [] and torn


# ----------------------------------------------------------------------
# SSTable codec
# ----------------------------------------------------------------------
def make_run(config, n=500, seed=3):
    """A sealed run via a real tree flush (so bloom/pages are canonical)."""
    from repro.lsm.tree import LSMTree

    tree = LSMTree(config)
    rng = np.random.default_rng(seed)
    while not tree.levels or tree.level(1).n_runs == 0:
        tree.put_batch(
            rng.integers(0, 10 * n, size=64), rng.integers(0, 10**6, size=64)
        )
    return tree, tree.level(1).runs[-1]


@pytest.mark.parametrize(
    "mode", [BloomMode.ANALYTICAL, BloomMode.BIT_ARRAY]
)
def test_sstable_roundtrip(tmp_path, tiny_config, mode):
    config = tiny_config.with_updates(bloom_mode=mode)
    tree, run = make_run(config)
    path = sstable_path(str(tmp_path), run.run_id, run.level_no)
    write_sstable(path, run)
    restored, info = read_sstable(path, mode, tree._rng)
    np.testing.assert_array_equal(restored.keys, run.keys)
    np.testing.assert_array_equal(restored.values, run.values)
    assert restored.run_id == run.run_id
    assert restored.level_no == run.level_no
    assert restored.sealed == run.sealed
    assert restored.capacity_entries == run.capacity_entries
    assert info.n_entries == run.n_entries
    assert info.file_bytes == os.path.getsize(path)


def test_sstable_rejects_any_corrupt_byte(tmp_path, bitarray_config):
    tree, run = make_run(bitarray_config)
    path = sstable_path(str(tmp_path), run.run_id, run.level_no)
    write_sstable(path, run)
    data = bytearray(open(path, "rb").read())
    rng = np.random.default_rng(0)
    for pos in rng.integers(0, len(data), size=24).tolist():
        corrupt = bytearray(data)
        corrupt[pos] ^= 0xFF
        open(path, "wb").write(corrupt)
        with pytest.raises(DurabilityError):
            read_sstable(path, bitarray_config.bloom_mode, tree._rng)
    open(path, "wb").write(data)  # pristine bytes still parse
    read_sstable(path, bitarray_config.bloom_mode, tree._rng)


def test_sstable_truncation_detected(tmp_path, tiny_config):
    tree, run = make_run(tiny_config)
    path = sstable_path(str(tmp_path), run.run_id, run.level_no)
    size = write_sstable(path, run)
    data = open(path, "rb").read()
    assert size == len(data)
    open(path, "wb").write(data[: size // 2])
    with pytest.raises(DurabilityError):
        read_sstable(path, tiny_config.bloom_mode, tree._rng)


# ----------------------------------------------------------------------
# Manifest edit log
# ----------------------------------------------------------------------
def test_manifest_edits_apply_and_snapshot_roundtrip():
    state = ManifestState()
    state.apply_edit(
        {
            "snapshot": True,
            "files": [[1, 7, "sst-00000007-L01.sst"]],
            "checkpoint_seqno": 40,
            "wal_head": 2,
            "n_levels": 2,
            "policies": [[1, None], [5, 3]],
            "named_policy": "tiering",
            "next_run_id": 8,
        }
    )
    state.apply_edit(
        {
            "ops": [
                ["add", 1, 8, "sst-00000008-L01.sst"],
                ["drop", 1, 7],
            ],
            "checkpoint_seqno": 90,
        }
    )
    assert state.files[1] == [(8, "sst-00000008-L01.sst")]
    assert state.checkpoint_seqno == 90
    replayed = ManifestState()
    replayed.apply_edit(state.snapshot_edit())
    assert replayed.files == state.files
    assert replayed.policies == state.policies
    assert replayed.named_policy == state.named_policy
    assert replayed.checkpoint_seqno == state.checkpoint_seqno


def test_manifest_drop_of_unknown_run_raises():
    state = ManifestState()
    with pytest.raises(DurabilityError):
        state.apply_edit({"ops": [["drop", 1, 42]]})


def test_manifest_torn_tail_discarded():
    good = encode_edit({"checkpoint_seqno": 7}) + encode_edit(
        {"checkpoint_seqno": 9}
    )
    for cut in range(len(good) + 1):
        edits, torn = decode_edits(good[:cut])
        assert len(edits) <= 2
        assert torn == (
            cut not in (0, len(encode_edit({"checkpoint_seqno": 7})), len(good))
        )
    edits, torn = decode_edits(good)
    assert [e["checkpoint_seqno"] for e in edits] == [7, 9] and not torn


# ----------------------------------------------------------------------
# DurableStore end to end (crash-free)
# ----------------------------------------------------------------------
def test_store_reopen_roundtrip(store_dir, tiny_config):
    store = DurableStore(store_dir, tiny_config)
    model = fill(store)
    clock = store.clock_now
    store.close()

    reopened = DurableStore(store_dir)
    assert not reopened.last_recovery.created
    assert_contents(reopened, model)
    assert reopened.total_entries >= len(model)
    reopened.check_invariants()
    # Replayed work re-charges the simulated clock deterministically.
    assert reopened.clock_now > 0 and clock > 0
    reopened.close()


def test_store_is_kvengine(store_dir, tiny_config):
    store = DurableStore(store_dir, tiny_config)
    assert isinstance(store, KVEngine)
    assert store.tuning_targets() == [store]
    store.close()


def test_store_refuses_config_mismatch(store_dir, tiny_config):
    DurableStore(store_dir, tiny_config).close()
    with pytest.raises(DurabilityError):
        DurableStore(store_dir, tiny_config.with_updates(size_ratio=6))


def test_store_refuses_tombstone_value(store_dir, tiny_config):
    from repro.lsm.entry import TOMBSTONE

    store = DurableStore(store_dir, tiny_config)
    with pytest.raises(ValueError):
        store.put(1, int(TOMBSTONE))
    # The rejected write never reached the WAL: reopen sees nothing.
    store.close()
    reopened = DurableStore(store_dir)
    assert reopened.total_entries == 0
    reopened.close()


def test_store_policy_changes_survive_reopen(store_dir, tiny_config):
    store = DurableStore(store_dir, tiny_config)
    fill(store, n_batches=6)
    store.set_policy(1, 4, TransitionKind.FLEXIBLE)
    store.set_bits_per_key(6.0)
    policies = store.policies()
    store.close()
    reopened = DurableStore(store_dir)
    assert reopened.policies() == policies
    assert reopened.bits_per_key == 6.0
    reopened.check_invariants()
    reopened.close()


def test_store_named_policy_survives_reopen(store_dir, tiny_config):
    store = DurableStore(store_dir, tiny_config)
    fill(store, n_batches=6)
    store.apply_named_policy("tiering")
    assert store.named_policy() == "tiering"
    store.close()
    reopened = DurableStore(store_dir)
    assert reopened.named_policy() == "tiering"
    reopened.close()


def test_store_wal_rotation_and_gc(store_dir, tiny_config):
    store = DurableStore(store_dir, tiny_config)
    fill(store, n_batches=20)
    telemetry = store.telemetry
    assert telemetry["wal_rotations"] > 0
    assert telemetry["sstables_written"] > 0
    assert telemetry["commits"] > 0
    # Covered WAL segments must actually be deleted from disk.
    segments = [
        name
        for name in os.listdir(store_dir)
        if name.startswith("wal-") and name.endswith(".log")
    ]
    assert len(segments) <= 2
    store.close()


def test_store_double_reopen_preserves_contents(store_dir, tiny_config):
    """Reopening twice replays the same WAL tail both times (the
    checkpoint only certifies *fully applied* ops, so a tail record that
    straddled a flush is conservatively re-applied — newest-wins makes
    that idempotent on contents, though flush boundaries may differ)."""
    store = DurableStore(store_dir, tiny_config)
    model = fill(store, n_batches=8)
    store.close()
    first = DurableStore(store_dir)
    first_report = first.last_recovery
    assert_contents(first, model)
    first.check_invariants()
    first.close()
    second = DurableStore(store_dir)
    assert second.last_recovery.recovered_seqno == first_report.recovered_seqno
    assert second.last_recovery.checkpoint_seqno <= first_report.recovered_seqno
    assert_contents(second, model)
    second.check_invariants()
    second.close()


def test_store_empty_reopen(store_dir, tiny_config):
    DurableStore(store_dir, tiny_config).close()
    reopened = DurableStore(store_dir)
    assert reopened.total_entries == 0
    assert reopened.get(123) is None
    reopened.close()


def test_bulk_load_lands_as_sstables(store_dir, tiny_config):
    store = DurableStore(store_dir, tiny_config)
    keys = np.arange(0, 4_000, dtype=np.int64)
    values = keys * 3
    store.bulk_load(keys, values)
    assert store.telemetry["wal_records"] == 0
    store.close()
    reopened = DurableStore(store_dir)
    assert reopened.last_recovery.wal_records_replayed == 0
    found, got = reopened.get_batch(keys[::7])
    assert found.all()
    np.testing.assert_array_equal(got, values[::7])
    reopened.close()


def test_manifest_state_matches_disk(store_dir, tiny_config):
    store = DurableStore(store_dir, tiny_config)
    fill(store, n_batches=10)
    store.close()
    state, _, torn = read_manifest(store_dir)
    assert not torn
    for filename in state.live_filenames():
        assert os.path.exists(os.path.join(store_dir, filename))


# ----------------------------------------------------------------------
# Persist + obs integration
# ----------------------------------------------------------------------
def test_persist_roundtrip(store_dir, tiny_config, tmp_path):
    from repro.persist.snapshot import load_engine, save_engine

    store = DurableStore(store_dir, tiny_config)
    model = fill(store)
    snap = str(tmp_path / "engine.snap")
    save_engine(store, snap)
    store.close()

    restored = load_engine(snap)
    assert isinstance(restored, DurableStore)
    assert restored.data_dir == store_dir
    assert_contents(restored, model)
    restored.check_invariants()
    restored.close()
    # The re-materialized directory must itself recover.
    reopened = DurableStore(store_dir)
    assert_contents(reopened, model)
    reopened.check_invariants()
    reopened.close()


def test_persist_memtable_rejournaled(store_dir, tiny_config, tmp_path):
    """After load_state_dict, memtable-resident entries live in the fresh
    WAL — a crash right after restore must not lose them."""
    from repro.persist.snapshot import load_engine, save_engine

    store = DurableStore(store_dir, tiny_config)
    store.put(999_983, 41)  # stays in the memtable: single entry
    snap = str(tmp_path / "engine.snap")
    save_engine(store, snap)
    store.close()
    restored = load_engine(snap)
    restored.close()
    reader = WalReader(
        segment_path(store_dir, restored._wal_head_id)
    )
    assert any(
        r.op == OP_PUT and 999_983 in r.keys.tolist() for r in reader.records
    )
    reopened = DurableStore(store_dir)
    assert reopened.get(999_983) == 41
    reopened.close()


def test_collect_durable_metrics(store_dir, tiny_config):
    from repro.obs import collect_durable_metrics

    store = DurableStore(store_dir, tiny_config)
    fill(store, n_batches=6)
    store.close()
    reopened = DurableStore(store_dir)
    registry = collect_durable_metrics(reopened)
    text = registry.render("prometheus")
    assert "repro_durable_events" in text
    assert "repro_durable_bytes" in text
    assert "repro_durable_recovery" in text
    assert "repro_sim_clock_seconds" in text
    reopened.close()
