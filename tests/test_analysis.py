"""Tests for the invariant linter (:mod:`repro.analysis`).

Each rule gets a *bad* fixture that must fire and a *good* fixture that
must stay silent, written into a throwaway package tree so the rules run
against exactly the code under test. The pragma and baseline suppression
layers are round-tripped, the CLI's exit-code contract is exercised, and
a final self-check asserts the real repo is clean under the committed
baseline — the same gate CI runs.
"""

import json
import os
import textwrap

import pytest

from repro.analysis import Analyzer, Baseline, get_rules
from repro.analysis.__main__ import default_package_root, main
from repro.analysis.core import PRAGMA_FORMAT, fingerprint_of
from repro.analysis.report import render_json, render_text
from repro.errors import ConfigError


def make_pkg(tmp_path, files):
    """Write ``files`` (rel-posix-path -> source) under a package root."""
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


def run_rules(tmp_path, files, rules=None, baseline=None):
    root = make_pkg(tmp_path, files)
    analyzer = Analyzer(root, get_rules(rules), baseline=baseline)
    return analyzer.run()


def rules_fired(report):
    return sorted({f.rule for f in report.unsuppressed})


# ----------------------------------------------------------------------
# SIM-PURITY
# ----------------------------------------------------------------------

SIM_BAD = """\
    import random
    import time
    from datetime import datetime

    import numpy as np


    def stamp():
        return time.time()


    def when():
        return datetime.now()


    def roll():
        rng = np.random.default_rng()
        return rng.random() + random.random()
    """


def test_sim_purity_flags_wall_clock_injected_into_lsm(tmp_path):
    report = run_rules(tmp_path, {"lsm/hot.py": SIM_BAD}, rules=["SIM-PURITY"])
    findings = report.unsuppressed
    assert rules_fired(report) == ["SIM-PURITY"]
    messages = "\n".join(f.message for f in findings)
    assert "time.time" in messages
    assert "datetime.datetime.now" in messages
    lines = {f.line for f in findings}
    assert len(findings) >= 4  # time, datetime, unseeded rng, stdlib random
    assert all(f.module == "lsm/hot.py" for f in findings)
    assert len(lines) >= 4


def test_sim_purity_good_fixture_is_silent(tmp_path):
    good = """\
        import numpy as np

        from repro.lsm.readpath import perf_counter


        def timed():
            return perf_counter()


        def roll(seed):
            return np.random.default_rng(seed).random()
        """
    report = run_rules(tmp_path, {"lsm/cool.py": good}, rules=["SIM-PURITY"])
    assert report.clean
    assert report.findings == []


def test_sim_purity_ignores_out_of_scope_modules(tmp_path):
    report = run_rules(tmp_path, {"bench/wall.py": SIM_BAD}, rules=["SIM-PURITY"])
    assert report.clean


def test_sim_purity_allowlists_the_wall_timer_module(tmp_path):
    source = """\
        import time


        def perf_counter():
            return time.perf_counter()
        """
    report = run_rules(
        tmp_path, {"lsm/readpath.py": source}, rules=["SIM-PURITY"]
    )
    assert report.clean


# ----------------------------------------------------------------------
# OBS-ZERO-IMPACT
# ----------------------------------------------------------------------


def test_obs_rule_flags_sim_mutation_and_rng(tmp_path):
    bad = """\
        import numpy as np


        def poke(clock, engine):
            clock.advance(3.0)
            engine.put(1, 2)
            engine.total_gets += 1


        def jitter():
            return np.random.default_rng(7)
        """
    report = run_rules(tmp_path, {"obs/spy.py": bad}, rules=["OBS-ZERO-IMPACT"])
    assert rules_fired(report) == ["OBS-ZERO-IMPACT"]
    # advance, put, counter mutation, rng — one bad construct per line
    assert len({f.line for f in report.unsuppressed}) == 4


def test_obs_rule_good_fixture_is_silent(tmp_path):
    good = """\
        def snapshot(engine):
            stats = engine.stats_snapshot()
            return {"n": len(stats), "hits": engine.cache_hits}
        """
    report = run_rules(tmp_path, {"obs/view.py": good}, rules=["OBS-ZERO-IMPACT"])
    assert report.clean


def test_obs_rule_allows_local_mutation(tmp_path):
    source = """\
        def tally(engine):
            acc = {}
            acc["gets"] = engine.gets
            acc["gets"] += 0
            return acc
        """
    report = run_rules(tmp_path, {"obs/acc.py": source}, rules=["OBS-ZERO-IMPACT"])
    assert report.clean


# ----------------------------------------------------------------------
# LOCK-ORDER
# ----------------------------------------------------------------------

LOCK_BAD = """\
    def double(a, b):
        with a.lock:
            with b.lock:
                return 1


    def manual(lane):
        lane.lock.acquire()
        try:
            return 2
        finally:
            lane.lock.release()
    """


def test_lock_order_flags_unordered_double_lane_lock(tmp_path):
    report = run_rules(tmp_path, {"serve/bad.py": LOCK_BAD}, rules=["LOCK-ORDER"])
    assert rules_fired(report) == ["LOCK-ORDER"]
    # nested second lock + explicit acquire + explicit release
    assert len(report.unsuppressed) == 3


def test_lock_order_good_fixture_is_silent(tmp_path):
    good = """\
        from repro.serve.locks import ordered_lane_locks


        def serve(lanes):
            with ordered_lane_locks(lanes) as ordered:
                return len(ordered)


        def single(lane):
            with lane.lock:
                return 1
        """
    report = run_rules(tmp_path, {"serve/good.py": good}, rules=["LOCK-ORDER"])
    assert report.clean


def test_lock_order_ignores_reacquiring_the_same_lock_name(tmp_path):
    source = """\
        def twice(lane, other):
            with lane.lock:
                pass
            with other.lock:
                pass
        """
    report = run_rules(tmp_path, {"serve/seq.py": source}, rules=["LOCK-ORDER"])
    assert report.clean


# ----------------------------------------------------------------------
# SNAPSHOT-COMPLETENESS
# ----------------------------------------------------------------------


def test_snapshot_rule_flags_uncovered_attribute(tmp_path):
    bad = """\
        class Box:
            def __init__(self):
                self.a = 1
                self.b = 2

            def state_dict(self):
                return {"a": self.a}
        """
    report = run_rules(
        tmp_path, {"lsm/box.py": bad}, rules=["SNAPSHOT-COMPLETENESS"]
    )
    assert len(report.unsuppressed) == 1
    assert "self.b" in report.unsuppressed[0].message


def test_snapshot_rule_good_fixture_is_silent(tmp_path):
    good = """\
        class Box:
            # caches are derived, never serialized
            _snapshot_exempt = frozenset({"_cache"})

            def __init__(self):
                self.a = 1
                self._count = 0
                self._cache = None

            def state_dict(self):
                return {"a": self.a, "count": self._count}
        """
    report = run_rules(
        tmp_path, {"lsm/box.py": good}, rules=["SNAPSHOT-COMPLETENESS"]
    )
    assert report.clean


def test_snapshot_rule_accepts_load_side_coverage(tmp_path):
    source = """\
        class Box:
            def __init__(self):
                self.a = 1
                self.b = 2

            def state_dict(self):
                return {"a": self.a, "b": 0}

            def load_state_dict(self, state):
                self.a = state["a"]
                self.b = state["b"]
        """
    report = run_rules(
        tmp_path, {"lsm/box.py": source}, rules=["SNAPSHOT-COMPLETENESS"]
    )
    assert report.clean


def test_snapshot_rule_skips_classes_without_state_dict(tmp_path):
    source = """\
        class Plain:
            def __init__(self):
                self.anything = 1
        """
    report = run_rules(
        tmp_path, {"lsm/plain.py": source}, rules=["SNAPSHOT-COMPLETENESS"]
    )
    assert report.clean


# ----------------------------------------------------------------------
# DURABLE-FSYNC
# ----------------------------------------------------------------------


def test_durable_rule_flags_unsynced_publishes(tmp_path):
    bad = """\
        import os


        def rename(a, b):
            os.rename(a, b)


        def replace_without_fsync(tmp, live):
            os.replace(tmp, live)


        def write_without_fsync(path, data):
            with open(path, "wb") as fh:
                fh.write(data)
        """
    report = run_rules(tmp_path, {"durable/pub.py": bad}, rules=["DURABLE-FSYNC"])
    assert rules_fired(report) == ["DURABLE-FSYNC"]
    assert len(report.unsuppressed) == 3


def test_durable_rule_good_fixture_is_silent(tmp_path):
    good = """\
        import os


        def publish(path, data):
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        """
    report = run_rules(tmp_path, {"durable/ok.py": good}, rules=["DURABLE-FSYNC"])
    assert report.clean


def test_durable_rule_allowlists_atomio(tmp_path):
    source = """\
        import os


        def helper(tmp, path):
            os.replace(tmp, path)
        """
    report = run_rules(
        tmp_path, {"durable/atomio.py": source}, rules=["DURABLE-FSYNC"]
    )
    assert report.clean


# ----------------------------------------------------------------------
# Pragma suppression
# ----------------------------------------------------------------------


def test_justified_inline_pragma_suppresses(tmp_path):
    source = """\
        import time


        def stamp():
            return time.time()  # repro: allow[SIM-PURITY] wall telemetry only
        """
    report = run_rules(tmp_path, {"lsm/t.py": source}, rules=["SIM-PURITY"])
    assert report.clean
    assert len(report.suppressed) == 1
    finding = report.suppressed[0]
    assert finding.suppressed_by == "pragma"
    assert "wall telemetry" in finding.justification


def test_standalone_pragma_line_covers_next_statement(tmp_path):
    source = """\
        import time


        def stamp():
            # repro: allow[SIM-PURITY] wall telemetry only
            return time.time()
        """
    report = run_rules(tmp_path, {"lsm/t.py": source}, rules=["SIM-PURITY"])
    assert report.clean
    assert report.suppressed[0].suppressed_by == "pragma"


def test_unjustified_pragma_does_not_suppress(tmp_path):
    source = """\
        import time


        def stamp():
            return time.time()  # repro: allow[SIM-PURITY]
        """
    report = run_rules(tmp_path, {"lsm/t.py": source}, rules=["SIM-PURITY"])
    assert not report.clean
    fired = rules_fired(report)
    assert "SIM-PURITY" in fired  # the violation is still live
    assert PRAGMA_FORMAT in fired  # and the bare pragma is itself flagged


def test_pragma_for_a_different_rule_does_not_suppress(tmp_path):
    source = """\
        import time


        def stamp():
            return time.time()  # repro: allow[LOCK-ORDER] wrong rule entirely
        """
    report = run_rules(tmp_path, {"lsm/t.py": source}, rules=["SIM-PURITY"])
    assert not report.clean
    assert rules_fired(report) == ["SIM-PURITY"]


# ----------------------------------------------------------------------
# Baseline suppression
# ----------------------------------------------------------------------


def test_baseline_round_trip_suppresses_and_survives_line_shifts(tmp_path):
    files = {"lsm/legacy.py": SIM_BAD}
    first = run_rules(tmp_path, files)
    assert not first.clean

    baseline_path = tmp_path / "baseline.json"
    baseline = Baseline.from_findings(
        first.unsuppressed, path=str(baseline_path)
    )
    baseline.save()
    loaded = Baseline.load(str(baseline_path))
    assert len(loaded) == len(first.unsuppressed)

    again = run_rules(tmp_path, files, baseline=loaded)
    assert again.clean
    assert all(f.suppressed_by == "baseline" for f in again.suppressed)

    # Fingerprints key on (rule, module, snippet, occurrence), not line
    # numbers: prepending comment lines must not invalidate the baseline.
    shifted = {"lsm/legacy.py": "# header\n# more header\n" + textwrap.dedent(SIM_BAD)}
    moved = run_rules(tmp_path, shifted, baseline=loaded)
    assert moved.clean


def test_baseline_does_not_cover_new_findings(tmp_path):
    first = run_rules(tmp_path, {"lsm/legacy.py": SIM_BAD})
    baseline = Baseline.from_findings(first.unsuppressed)

    grown = dict({"lsm/legacy.py": SIM_BAD})
    grown["lsm/fresh.py"] = "import time\n\n\ndef t():\n    return time.time()\n"
    report = run_rules(tmp_path, grown, baseline=baseline)
    assert not report.clean
    live = {f.module for f in report.unsuppressed}
    assert live == {"lsm/fresh.py"}


def test_fingerprint_occurrence_disambiguates_identical_snippets():
    a = fingerprint_of("SIM-PURITY", "lsm/x.py", "t = time.time()", 0)
    b = fingerprint_of("SIM-PURITY", "lsm/x.py", "t = time.time()", 1)
    assert a != b
    assert a == fingerprint_of("SIM-PURITY", "lsm/x.py", "t = time.time()", 0)


# ----------------------------------------------------------------------
# Reporters + CLI
# ----------------------------------------------------------------------


def test_render_text_and_json_agree(tmp_path):
    report = run_rules(tmp_path, {"lsm/hot.py": SIM_BAD})
    text = render_text(report)
    payload = json.loads(render_json(report))
    assert "SIM-PURITY" in text
    assert payload["clean"] is False
    assert payload["counts"]["unsuppressed"] == len(report.unsuppressed)
    assert {f["rule"] for f in payload["findings"]} == {"SIM-PURITY"}


def test_unknown_rule_name_raises():
    with pytest.raises(ConfigError):
        get_rules(["NO-SUCH-RULE"])


def test_cli_exit_codes_and_artifact(tmp_path, capsys):
    dirty = make_pkg(tmp_path, {"lsm/hot.py": SIM_BAD})
    artifact = tmp_path / "findings.json"
    code = main(
        [
            "--package-root",
            dirty,
            "--no-baseline",
            "--json",
            str(artifact),
        ]
    )
    assert code == 1
    payload = json.loads(artifact.read_text())
    assert payload["counts"]["unsuppressed"] >= 4
    capsys.readouterr()

    clean = make_pkg(tmp_path / "ok", {"lsm/fine.py": "X = 1\n"})
    assert main(["--package-root", clean, "--no-baseline"]) == 0
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SIM-PURITY" in out


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    root = make_pkg(tmp_path, {"lsm/hot.py": SIM_BAD})
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "--package-root",
                root,
                "--baseline",
                str(baseline),
                "--write-baseline",
            ]
        )
        == 0
    )
    assert baseline.exists()
    assert (
        main(["--package-root", root, "--baseline", str(baseline)]) == 0
    )
    capsys.readouterr()


# ----------------------------------------------------------------------
# Repo self-check — the gate CI runs
# ----------------------------------------------------------------------


def test_repo_is_clean_under_committed_baseline():
    package_root = default_package_root()
    repo_root = os.path.dirname(os.path.dirname(package_root))
    baseline = Baseline.load_or_empty(
        os.path.join(repo_root, "analysis_baseline.json")
    )
    report = Analyzer(package_root, get_rules(None), baseline=baseline).run()
    assert report.clean, render_text(report)
    # The four sanctioned wall-clock sites carry justified pragmas.
    assert len(report.suppressed) == 4
    assert all(f.suppressed_by == "pragma" for f in report.suppressed)
