"""Tests for repro.storage: clock, cache, disk model."""

import pytest

from repro.config import CostModelParams
from repro.errors import StorageError
from repro.storage import DiskModel, IOCounters, LRUBlockCache, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(StorageError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(StorageError):
            SimClock().advance(-0.1)

    def test_elapsed_since(self):
        clock = SimClock()
        t0 = clock.now
        clock.advance(3.0)
        assert clock.elapsed_since(t0) == pytest.approx(3.0)

    def test_repr_mentions_time(self):
        assert "now=" in repr(SimClock())


class TestLRUBlockCache:
    def test_zero_capacity_never_hits(self):
        cache = LRUBlockCache(0)
        assert cache.access((1, 0)) is False
        assert cache.access((1, 0)) is False
        assert cache.hits == 0
        assert cache.misses == 2

    def test_hit_after_admission(self):
        cache = LRUBlockCache(2)
        assert cache.access((1, 0)) is False
        assert cache.access((1, 0)) is True
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = LRUBlockCache(2)
        cache.access((1, 0))
        cache.access((1, 1))
        cache.access((1, 0))  # refresh (1,0); (1,1) is now LRU
        cache.access((1, 2))  # evicts (1,1)
        assert (1, 1) not in cache
        assert (1, 0) in cache
        assert (1, 2) in cache

    def test_capacity_bound(self):
        cache = LRUBlockCache(3)
        for i in range(10):
            cache.access((0, i))
        assert len(cache) == 3

    def test_invalidate_run_drops_only_that_run(self):
        cache = LRUBlockCache(8)
        cache.access((1, 0))
        cache.access((1, 1))
        cache.access((2, 0))
        dropped = cache.invalidate_run(1)
        assert dropped == 2
        assert (2, 0) in cache
        assert len(cache) == 1

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            LRUBlockCache(-1)

    def test_clear_keeps_counters(self):
        cache = LRUBlockCache(2)
        cache.access((1, 0))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1


class TestIOCounters:
    def test_totals(self):
        io = IOCounters(random_reads=2, random_writes=3, seq_reads=5, seq_writes=7)
        assert io.total_reads == 7
        assert io.total_writes == 10
        assert io.total == 17

    def test_snapshot_is_independent(self):
        io = IOCounters(random_reads=1)
        snap = io.snapshot()
        io.random_reads += 5
        assert snap.random_reads == 1

    def test_diff(self):
        io = IOCounters(random_reads=10, seq_writes=4)
        earlier = IOCounters(random_reads=3, seq_writes=1)
        diff = io.diff(earlier)
        assert diff.random_reads == 7
        assert diff.seq_writes == 3


class TestDiskModel:
    def _make(self, cache_pages: int = 0):
        clock = SimClock()
        cache = LRUBlockCache(cache_pages)
        costs = CostModelParams(
            random_read_s=10e-6,
            random_write_s=20e-6,
            seq_read_s=1e-6,
            seq_write_s=2e-6,
            run_probe_cpu_s=0.5e-6,
            compaction_entry_cpu_s=0.25e-6,
        )
        return DiskModel(costs, clock, cache), clock

    def test_random_read_charges_and_counts(self):
        disk, clock = self._make()
        cost = disk.random_read(1, 0)
        assert cost == pytest.approx(10e-6)
        assert clock.now == pytest.approx(10e-6)
        assert disk.counters.random_reads == 1

    def test_random_read_cached_is_free(self):
        disk, clock = self._make(cache_pages=4)
        disk.random_read(1, 0)
        cost = disk.random_read(1, 0)
        assert cost == 0.0
        assert disk.counters.random_reads == 1

    def test_random_read_batch_no_cache_prices_everything(self):
        disk, clock = self._make()
        cost = disk.random_read_batch(1, [0, 1, 2])
        assert cost == pytest.approx(30e-6)
        assert disk.counters.random_reads == 3

    def test_random_read_batch_with_cache_dedups(self):
        disk, _ = self._make(cache_pages=8)
        disk.random_read_batch(1, [0, 0, 1])
        assert disk.counters.random_reads == 2  # second 0 hit the cache

    def test_sequential_costs(self):
        disk, clock = self._make()
        disk.sequential_read(3)
        disk.sequential_write(2)
        assert disk.counters.seq_reads == 3
        assert disk.counters.seq_writes == 2
        assert clock.now == pytest.approx(3e-6 + 4e-6)

    def test_cpu_costs_advance_clock(self):
        disk, clock = self._make()
        disk.probe_cpu(4)
        disk.compaction_cpu(8)
        assert clock.now == pytest.approx(4 * 0.5e-6 + 8 * 0.25e-6)

    def test_negative_amounts_rejected(self):
        disk, _ = self._make()
        with pytest.raises(StorageError):
            disk.sequential_read(-1)
        with pytest.raises(StorageError):
            disk.sequential_write(-1)
        with pytest.raises(StorageError):
            disk.probe_cpu(-1)
        with pytest.raises(StorageError):
            disk.compaction_cpu(-1)
        with pytest.raises(StorageError):
            disk.random_read(1, -1)
        with pytest.raises(StorageError):
            disk.random_write(-1)

    def test_drop_run_invalidates_cache(self):
        disk, _ = self._make(cache_pages=4)
        disk.random_read(7, 0)
        disk.drop_run(7)
        assert disk.random_read(7, 0) > 0  # miss again after invalidation

    def test_zero_page_operations_are_free(self):
        disk, clock = self._make()
        assert disk.sequential_read(0) == 0.0
        assert disk.sequential_write(0) == 0.0
        assert disk.random_read_batch(1, []) == 0.0
        assert clock.now == 0.0
