"""Physics tests: the simulated engine's measured behaviour matches the
paper's analytical models (amplifications, policy trade-offs, Monkey)."""


from repro.config import BloomScheme, SystemConfig
from repro.core.missions import MissionRunner
from repro.core.ruskey import RusKey
from repro.core.tuners import StaticTuner
from repro.cost import (
    measured_read_amplification,
    measured_write_amplification,
)
from repro.lsm.tree import LSMTree
from repro.workload.uniform import UniformWorkload


def run_static(policy, gamma, n_missions=40, mission_size=600, seed=3,
               scheme=BloomScheme.UNIFORM, bits=8.0):
    config = SystemConfig(
        write_buffer_bytes=32 * 1024,
        initial_policy=policy,
        bloom_scheme=scheme,
        bits_per_key=bits,
        seed=seed,
    )
    store = RusKey(config, tuner=StaticTuner(policy), chunk_size=64)
    workload = UniformWorkload(8000, lookup_fraction=gamma, seed=seed)
    keys, values = workload.load_records()
    store.bulk_load(keys, values, distribute=True)
    store.run_missions(workload.missions(n_missions, mission_size))
    return store


class TestAmplificationPhysics:
    def test_write_amplification_decreases_with_policy(self):
        """Paper: write amplification of a level is T/K."""
        amps = []
        for policy in (1, 5, 10):
            store = run_static(policy, gamma=0.0)
            io = store.tree.disk.counters
            amps.append(
                measured_write_amplification(
                    io, store.stats.total_updates, store.config.entries_per_page
                )
            )
        assert amps[0] > amps[1] > amps[2]
        # Leveling rewrites entries many times; tiering only a handful.
        assert amps[0] / amps[2] > 2.0

    def test_read_cost_increases_with_policy(self):
        """More runs per level => more probes and false-positive reads."""
        times = []
        for policy in (1, 10):
            store = run_static(policy, gamma=1.0, n_missions=20)
            times.append(store.stats.total_read_time / store.stats.total_lookups)
        assert times[1] > times[0]

    def test_zero_result_lookups_cost_less_with_stricter_blooms(self):
        """Lower FPR => fewer wasted page reads on absent keys."""
        reads = []
        for bits in (2.0, 12.0):
            config = SystemConfig(
                write_buffer_bytes=32 * 1024, bits_per_key=bits, seed=3
            )
            store = RusKey(config, tuner=StaticTuner(1), chunk_size=64)
            workload = UniformWorkload(
                8000, lookup_fraction=1.0, zero_result_fraction=1.0, seed=3
            )
            keys, values = workload.load_records()
            store.bulk_load(keys, values, distribute=True)
            store.run_missions(workload.missions(10, 600))
            reads.append(
                measured_read_amplification(
                    store.tree.disk.counters, store.stats.total_lookups
                )
            )
        assert reads[1] < reads[0]

    def test_policy_crossover_matches_paper_shape(self):
        """K=1 wins read-heavy, K=10 wins write-heavy (Figure 6's core)."""
        read_heavy = {
            policy: run_static(policy, gamma=0.9).mean_latency(last_n=15)
            for policy in (1, 10)
        }
        write_heavy = {
            policy: run_static(policy, gamma=0.1).mean_latency(last_n=15)
            for policy in (1, 10)
        }
        assert read_heavy[1] < read_heavy[10]
        assert write_heavy[10] < write_heavy[1]


class TestMonkeyPhysics:
    def test_monkey_beats_uniform_on_zero_result_reads(self):
        """Monkey's FPR allocation reduces wasted reads for the same memory
        budget (its design goal)."""
        reads = {}
        for scheme in (BloomScheme.UNIFORM, BloomScheme.MONKEY):
            config = SystemConfig(
                write_buffer_bytes=32 * 1024,
                bloom_scheme=scheme,
                bits_per_key=4.0,
                seed=3,
            )
            store = RusKey(config, tuner=StaticTuner(5), chunk_size=64)
            workload = UniformWorkload(
                8000, lookup_fraction=1.0, zero_result_fraction=1.0, seed=3
            )
            keys, values = workload.load_records()
            store.bulk_load(keys, values, distribute=True)
            store.run_missions(workload.missions(12, 600))
            reads[scheme] = measured_read_amplification(
                store.tree.disk.counters, store.stats.total_lookups
            )
        assert reads[BloomScheme.MONKEY] < reads[BloomScheme.UNIFORM]

    def test_monkey_fprs_assigned_per_level(self):
        config = SystemConfig(
            write_buffer_bytes=32 * 1024,
            bloom_scheme=BloomScheme.MONKEY,
            bits_per_key=4.0,
            seed=3,
        )
        tree = LSMTree(config)
        for i in range(3000):
            tree.put(i, i)
        fprs = [level.fpr for level in tree.levels]
        assert fprs == sorted(fprs)
        assert fprs[0] < fprs[-1]


class TestCacheAndChunkingPhysics:
    def test_hot_keys_benefit_from_cache(self):
        config = SystemConfig(
            write_buffer_bytes=32 * 1024, block_cache_pages=2048, seed=3
        )
        store = RusKey(config, tuner=StaticTuner(1), chunk_size=1)
        workload = UniformWorkload(8000, lookup_fraction=0.5, seed=3)
        keys, values = workload.load_records()
        store.bulk_load(keys, values, distribute=True)
        for _ in range(40):
            for key in range(20):  # hot set far smaller than the cache
                store.get(key)
        assert store.tree.cache.hit_rate > 0.5

    def test_chunk_sizes_agree_on_write_path(self, tiny_config):
        """Chunked execution reorders reads only; the write path (flushes,
        compactions) is byte-identical across chunk sizes."""
        totals = []
        for chunk_size in (1, 16, 256):
            tree = LSMTree(tiny_config)
            runner = MissionRunner(tree, chunk_size=chunk_size)
            workload = UniformWorkload(2000, lookup_fraction=0.5, seed=5)
            for mission in workload.missions(3, 500):
                runner.run(mission)
            totals.append(
                (tree.disk.counters.seq_writes, tree.disk.counters.seq_reads)
            )
        assert totals[0] == totals[1] == totals[2]
