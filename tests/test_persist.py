"""Tests for the checkpoint/restore subsystem (repro.persist and the
state_dict hooks threaded through every layer).

The central property is **bit-exact resume** (DESIGN.md §6): running N
missions straight vs. checkpointing at N/2, restoring into a fresh object
graph (forced through real serialization) and finishing must yield
identical mission statistics, simulated clock and tree structure. The one
exempt field is ``MissionStats.model_update_time``, which measures host
wall-clock by design.
"""

import os
import pickle

import numpy as np
import pytest

from repro.bench.harness import (
    Experiment,
    SystemSpec,
    checkpoint_path,
    run_system,
)
from repro.config import BloomMode, SystemConfig
from repro.core.lerp import Lerp, LerpConfig
from repro.core.ruskey import RusKey
from repro.core.tuners import StaticTuner
from repro.engine.sharded import ShardedStore
from repro.errors import SnapshotError
from repro.lsm.flsm import FLSMTree
from repro.lsm.memtable import MemTable
from repro.lsm.tree import LSMTree
from repro.persist import (
    FORMAT_VERSION,
    load_engine,
    load_snapshot,
    load_store,
    load_tuner,
    save_engine,
    save_snapshot,
    save_store,
    save_tuner,
)
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.workload.uniform import UniformWorkload


def roundtrip(state):
    """Force a state dict through real serialization."""
    return pickle.loads(pickle.dumps(state, protocol=4))


def mission_fields(mission):
    """A mission record minus the wall-clock-derived field."""
    state = mission.state_dict()
    state.pop("model_update_time")
    return state


def drive_engine(engine, first, last, seed=3, n_keys=3000, ops=400):
    """Run deterministic missions [first, last) against a bare engine."""
    rng = np.random.default_rng(seed)
    missions = []
    for index in range(last):
        keys = rng.integers(0, n_keys, size=ops)
        values = rng.integers(0, 10**6, size=ops)
        probes = rng.integers(0, n_keys, size=ops)
        if index < first:
            continue
        engine.begin_mission()
        engine.put_batch(keys, values)
        engine.get_batch(probes)
        engine.range_lookup(10, 200)
        missions.append(engine.end_mission())
    return missions


class TestEngineBitExactResume:
    CONFIGS = {
        "lsm": lambda: LSMTree(
            SystemConfig(size_ratio=4, write_buffer_bytes=16 * 1024, seed=7)
        ),
        "flsm-cache": lambda: FLSMTree(
            SystemConfig(
                size_ratio=4,
                write_buffer_bytes=16 * 1024,
                seed=7,
                block_cache_pages=32,
            )
        ),
        "flsm-bitarray": lambda: FLSMTree(
            SystemConfig(
                size_ratio=4,
                write_buffer_bytes=16 * 1024,
                seed=7,
                bloom_mode=BloomMode.BIT_ARRAY,
            )
        ),
        "sharded": lambda: ShardedStore(
            SystemConfig(
                size_ratio=4,
                write_buffer_bytes=16 * 1024,
                seed=7,
                block_cache_pages=16,
            ),
            3,
        ),
    }

    @pytest.mark.parametrize("kind", sorted(CONFIGS))
    def test_resume_is_bit_exact(self, kind):
        make = self.CONFIGS[kind]
        straight = make()
        drive_engine(straight, 0, 6)
        tail_straight = drive_engine(straight, 6, 12, seed=4)

        checkpointed = make()
        drive_engine(checkpointed, 0, 6)
        state = roundtrip(checkpointed.state_dict())
        restored = make()
        restored.load_state_dict(state)
        tail_restored = drive_engine(restored, 6, 12, seed=4)

        for a, b in zip(tail_straight, tail_restored):
            assert a.state_dict() == b.state_dict()
        assert straight.clock_now == restored.clock_now
        assert straight.io_counters.state_dict() == restored.io_counters.state_dict()
        assert straight.describe() == restored.describe()
        assert straight.total_entries == restored.total_entries
        restored.check_invariants()

    def test_mid_mission_snapshot_rejected(self, tiny_config):
        tree = LSMTree(tiny_config)
        tree.begin_mission()
        with pytest.raises(SnapshotError):
            tree.state_dict()
        tree.end_mission()
        tree.state_dict()  # fine between missions

    def test_shard_count_mismatch_rejected(self):
        config = SystemConfig(size_ratio=4, write_buffer_bytes=16 * 1024)
        store = ShardedStore(config, 2)
        state = store.state_dict()
        other = ShardedStore(config, 3)
        with pytest.raises(Exception):
            other.load_state_dict(state)

    def test_memtable_capacity_mismatch_rejected(self):
        table = MemTable(8)
        table.put(1, 1)
        state = table.state_dict()
        with pytest.raises(Exception):
            MemTable(16).load_state_dict(state)


class TestAgentStateDict:
    def test_ddpg_roundtrip_continues_identically(self):
        config = DDPGConfig(state_dim=4, action_dim=1, hidden=(8,), warmup=4)

        def train(agent, rng, steps):
            out = []
            for _ in range(steps):
                s = rng.random(4)
                a = agent.act(s)
                agent.observe(s, a, -float(s.sum()), rng.random(4))
                agent.update()
                out.append(a)
            return out

        rng_a = np.random.default_rng(0)
        a = DDPGAgent(config, rng_a)
        train(a, np.random.default_rng(9), 12)

        rng_b = np.random.default_rng(0)
        b = DDPGAgent(config, rng_b)
        train(b, np.random.default_rng(9), 6)
        state = roundtrip(b.state_dict())
        rng_state = rng_b.bit_generator.state

        rng_c = np.random.default_rng(123)  # different construction draws
        c = DDPGAgent(config, rng_c)
        c.load_state_dict(state)
        rng_c.bit_generator.state = rng_state

        # Finish both; with identical restored state + RNG the trajectories
        # must coincide. (Sessions a and b diverged at step 6: a's driver
        # rng had advanced differently, so compare b/c only.)
        tail_b = train(b, np.random.default_rng(5), 6)
        tail_c = train(c, np.random.default_rng(5), 6)
        for x, y in zip(tail_b, tail_c):
            np.testing.assert_array_equal(x, y)

    def test_dqn_roundtrip_continues_identically(self):
        config = DQNConfig(state_dim=4, n_actions=3, hidden=(8,), warmup=4)
        rng_b = np.random.default_rng(0)
        b = DQNAgent(config, rng_b)
        driver = np.random.default_rng(9)
        for _ in range(8):
            s = driver.random(4)
            action = b.act(s)
            b.observe(s, action, -1.0, driver.random(4))
            b.update()
        state = roundtrip(b.state_dict())
        rng_state = rng_b.bit_generator.state

        c = DQNAgent(config, np.random.default_rng(77))
        c.load_state_dict(state)
        c._rng.bit_generator.state = rng_state
        # Same b — continue both with identical drivers.
        d1 = np.random.default_rng(5)
        d2 = np.random.default_rng(5)
        for _ in range(6):
            s = d1.random(4)
            assert b.act(s) == c.act(d2.random(4))

    def test_network_shape_mismatch_rejected(self):
        small = DDPGAgent(
            DDPGConfig(state_dim=4, action_dim=1, hidden=(8,)),
            np.random.default_rng(0),
        )
        big = DDPGAgent(
            DDPGConfig(state_dim=4, action_dim=1, hidden=(16,)),
            np.random.default_rng(0),
        )
        with pytest.raises(Exception):
            big.load_state_dict(small.state_dict())


def lerp_test_config(seed=3):
    return LerpConfig(
        burn_in_missions=2, stable_window=4, max_stage_missions=20, seed=seed
    )


def build_store(config, n_shards=1):
    return RusKey(
        config,
        lerp_config=lerp_test_config(),
        n_shards=n_shards,
        chunk_size=32,
    )


@pytest.fixture
def workload():
    return UniformWorkload(n_records=4000, lookup_fraction=0.5, seed=11)


@pytest.fixture
def store_config():
    return SystemConfig(size_ratio=4, write_buffer_bytes=16 * 1024, seed=7)


class TestStoreBitExactResume:
    N = 24

    def _missions(self, workload):
        return list(workload.missions(self.N, 300))

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_lerp_tuned_resume_is_bit_exact(
        self, store_config, workload, tmp_path, n_shards
    ):
        missions = self._missions(workload)
        keys, values = workload.load_records()

        straight = build_store(store_config, n_shards)
        straight.bulk_load(keys, values)
        for mission in missions:
            straight.run_mission(mission)

        half = build_store(store_config, n_shards)
        half.bulk_load(keys, values)
        for mission in missions[: self.N // 2]:
            half.run_mission(mission)
        path = os.fspath(tmp_path / "store.ckpt")
        save_store(half, path)

        resumed = load_store(path)
        assert resumed.missions_run == self.N // 2
        for mission in missions[self.N // 2 :]:
            resumed.run_mission(mission)

        assert len(resumed.mission_log) == self.N
        for a, b in zip(straight.mission_log, resumed.mission_log):
            assert mission_fields(a) == mission_fields(b)
        assert straight.engine.clock_now == resumed.engine.clock_now
        assert straight.engine.describe() == resumed.engine.describe()
        assert straight.policy_history == resumed.policy_history
        assert straight.tuner.converged == resumed.tuner.converged
        assert straight.tuner.restarts == resumed.tuner.restarts

    def test_shared_tuner_restores_as_one_instance(
        self, store_config, workload, tmp_path
    ):
        keys, values = workload.load_records()
        store = RusKey(
            store_config, tuner=StaticTuner(3), n_shards=2, chunk_size=32
        )
        store.bulk_load(keys, values)
        for mission in self._missions(workload)[:4]:
            store.run_mission(mission)
        path = os.fspath(tmp_path / "shared.ckpt")
        save_store(store, path)

        resumed = load_store(path)
        assert resumed.tuners[0] is resumed.tuners[1]

        # A caller-supplied factory must preserve the shared topology too,
        # so the single saved tuner state reaches every slot.
        rebuilt = load_store(path, tuner_factory=lambda c: StaticTuner(3))
        assert rebuilt.tuners[0] is rebuilt.tuners[1]

    def test_tuner_topology_mismatch_rejected(self, store_config, workload):
        keys, values = workload.load_records()
        shared = RusKey(
            store_config, tuner=StaticTuner(3), n_shards=2, chunk_size=32
        )
        shared.bulk_load(keys, values)
        for mission in self._missions(workload)[:2]:
            shared.run_mission(mission)
        state = shared.state_dict()
        independent = RusKey(
            store_config,
            tuner_factory=lambda c: StaticTuner(3),
            n_shards=2,
            chunk_size=32,
        )
        with pytest.raises(SnapshotError):
            independent.load_state_dict(state)

    def test_static_tuner_store_roundtrip(self, store_config, workload, tmp_path):
        missions = self._missions(workload)
        keys, values = workload.load_records()
        store = RusKey(store_config, tuner=StaticTuner(3), chunk_size=32)
        store.bulk_load(keys, values)
        for mission in missions[:8]:
            store.run_mission(mission)
        path = os.fspath(tmp_path / "static.ckpt")
        save_store(store, path)
        resumed = load_store(path)
        assert isinstance(resumed.tuner, StaticTuner)
        assert resumed.tuner.policy == 3
        for mission in missions[8:12]:
            store.run_mission(mission)
            resumed.run_mission(mission)
        for a, b in zip(store.mission_log, resumed.mission_log):
            assert mission_fields(a) == mission_fields(b)


class TestSnapshotFiles:
    def test_engine_roundtrip(self, store_config, tmp_path):
        tree = FLSMTree(store_config)
        tree.put_batch(np.arange(500), np.arange(500))
        path = os.fspath(tmp_path / "tree.snap")
        save_engine(tree, path)
        restored = load_engine(path)
        assert isinstance(restored, FLSMTree)
        assert restored.describe() == tree.describe()
        assert restored.clock_now == tree.clock_now
        assert restored.config == tree.config

    def test_tuner_roundtrip(self, store_config, workload, tmp_path):
        store = build_store(store_config)
        keys, values = workload.load_records()
        store.bulk_load(keys, values)
        for mission in workload.missions(6, 300):
            store.run_mission(mission)
        path = os.fspath(tmp_path / "lerp.snap")
        save_tuner(store.tuner, store_config, path)
        restored = load_tuner(path)
        assert isinstance(restored, Lerp)
        assert restored.config == store.tuner.config
        assert restored.converged == store.tuner.converged

    def test_kind_validation(self, store_config, tmp_path):
        tree = FLSMTree(store_config)
        path = os.fspath(tmp_path / "tree.snap")
        save_engine(tree, path)
        with pytest.raises(SnapshotError):
            load_snapshot(path, expected_kind="store")
        with pytest.raises(SnapshotError):
            load_store(path)

    def test_not_a_snapshot(self, tmp_path):
        path = os.fspath(tmp_path / "junk")
        with open(path, "wb") as fh:
            fh.write(b"not a snapshot at all")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(os.fspath(tmp_path / "missing"))

    def test_version_mismatch(self, tmp_path):
        path = os.fspath(tmp_path / "future")
        save_snapshot(path, "engine", {})
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["format_version"] = FORMAT_VERSION + 1
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_pickle_rejects_foreign_payload(self, tmp_path):
        path = os.fspath(tmp_path / "dictfile")
        with open(path, "wb") as fh:
            pickle.dump({"hello": "world"}, fh)
        with pytest.raises(SnapshotError):
            load_snapshot(path)


class TestLerpWarmStart:
    def test_warm_start_keeps_networks_resets_episode(
        self, store_config, workload
    ):
        store = build_store(store_config)
        keys, values = workload.load_records()
        store.bulk_load(keys, values)
        for mission in workload.missions(16, 300):
            store.run_mission(mission)
        tuner = store.tuner
        assert isinstance(tuner, Lerp)
        state = roundtrip(tuner.state_dict())

        fresh = Lerp(store_config, lerp_test_config())
        fresh.load_state_dict(state)
        trained_params = [
            layer.copy() for layer in fresh._agents[1].actor.state_dict()
        ]
        fresh.warm_start(exploration_scale=0.5)
        assert not fresh.converged
        assert fresh.restarts == 0
        assert fresh._stage_idx == 0
        assert len(fresh._k_history) == 0
        # Networks retained...
        for kept, trained in zip(
            fresh._agents[1].actor.state_dict(), trained_params
        ):
            np.testing.assert_array_equal(kept, trained)
        # ...replay retained, exploration reduced.
        assert len(fresh._agents[1].replay) > 0
        agent = fresh._agents[1]
        assert agent.noise.sigma == pytest.approx(
            agent.config.noise_sigma * 0.5
        )

    def test_warm_start_validation(self, store_config):
        tuner = Lerp(store_config, lerp_test_config())
        with pytest.raises(Exception):
            tuner.warm_start(exploration_scale=0.0)


class TestHarnessCheckpointResume:
    def test_interrupted_experiment_finishes_bit_exactly(
        self, store_config, workload, tmp_path
    ):
        lerp = lerp_test_config()

        def make_experiment(**overrides):
            return Experiment(
                name="ckpt-test",
                workload=workload,
                n_missions=20,
                mission_size=300,
                base_config=store_config,
                chunk_size=32,
                systems=[
                    SystemSpec("RusKey", lambda c: None, 1, lerp_config=lerp)
                ],
                **overrides,
            )

        straight = run_system(make_experiment(), make_experiment().systems[0])

        interrupted = make_experiment(
            checkpoint_every=5, checkpoint_dir=os.fspath(tmp_path)
        )
        interrupted.n_missions = 10  # "crash" after 10 missions
        run_system(interrupted, interrupted.systems[0])
        assert os.path.exists(
            checkpoint_path(interrupted, interrupted.systems[0])
        )

        finished = make_experiment(
            checkpoint_every=5,
            checkpoint_dir=os.fspath(tmp_path),
            resume=True,
        )
        resumed = run_system(finished, finished.systems[0])
        assert len(resumed.missions) == 20
        for a, b in zip(straight.missions, resumed.missions):
            assert mission_fields(a) == mission_fields(b)
        assert straight.policy_history == resumed.policy_history

    def test_checkpoint_validation(self, store_config, workload):
        with pytest.raises(Exception):
            Experiment(
                name="bad",
                workload=workload,
                n_missions=5,
                mission_size=10,
                base_config=store_config,
                checkpoint_every=-1,
            )


class TestCacheStatsSurfaced:
    def test_mission_stats_carry_cache_counters(self):
        config = SystemConfig(
            size_ratio=4,
            write_buffer_bytes=16 * 1024,
            seed=7,
            block_cache_pages=64,
        )
        tree = FLSMTree(config)
        drive_engine(tree, 0, 4)
        totals = (
            sum(m.cache_hits for m in tree.stats.completed),
            sum(m.cache_misses for m in tree.stats.completed),
        )
        assert totals == (tree.cache_hits, tree.cache_misses)
        assert tree.cache_misses > 0
        assert tree.cache_hits > 0  # repeated probes of a hot range
        assert 0.0 < tree.cache_hit_rate < 1.0

    def test_sharded_cache_counters_aggregate(self):
        config = SystemConfig(
            size_ratio=4,
            write_buffer_bytes=16 * 1024,
            seed=7,
            block_cache_pages=32,
        )
        store = ShardedStore(config, 3)
        missions = drive_engine(store, 0, 4)
        per_shard = sum(s.cache.hits for s in store.shards)
        assert store.cache_hits == per_shard
        assert sum(m.cache_hits for m in missions) == per_shard
