"""Tests for repro.lsm.run and repro.lsm.level."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BloomMode
from repro.errors import PolicyError, TreeStateError
from repro.lsm.level import Level
from repro.lsm.run import SortedRun


def make_run(keys, values=None, run_id=0, fpr=0.01, capacity=1000,
             entries_per_page=4, sealed=False, bloom=BloomMode.ANALYTICAL):
    keys = np.asarray(keys, dtype=np.int64)
    if values is None:
        values = keys * 10
    values = np.asarray(values, dtype=np.int64)
    return SortedRun(
        run_id=run_id,
        level_no=1,
        keys=keys,
        values=values,
        fpr=fpr,
        capacity_entries=capacity,
        entries_per_page=entries_per_page,
        bloom_mode=bloom,
        rng=np.random.default_rng(0),
        sealed=sealed,
    )


class TestSortedRunConstruction:
    def test_rejects_unsorted_keys(self):
        with pytest.raises(TreeStateError):
            make_run([3, 1, 2])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(TreeStateError):
            make_run([1, 1, 2])

    def test_rejects_length_mismatch(self):
        with pytest.raises(TreeStateError):
            make_run([1, 2], values=[1])

    def test_rejects_bad_entries_per_page(self):
        with pytest.raises(TreeStateError):
            make_run([1], entries_per_page=0)

    def test_size_accounting(self):
        run = make_run(range(0, 20, 2), entries_per_page=4)
        assert run.n_entries == 10
        assert run.n_pages == 3  # ceil(10/4)
        assert run.min_key == 0
        assert run.max_key == 18
        assert not run.is_empty

    def test_empty_run(self):
        run = make_run([])
        assert run.is_empty
        assert run.n_pages == 0
        assert run.min_key is None
        assert run.max_key is None

    def test_capacity_flag(self):
        run = make_run([1, 2, 3], capacity=3)
        assert run.is_at_capacity
        assert not make_run([1, 2], capacity=3).is_at_capacity

    def test_seal(self):
        run = make_run([1])
        assert not run.sealed
        run.seal()
        assert run.sealed

    def test_repr_shows_state(self):
        assert "active" in repr(make_run([1]))
        assert "sealed" in repr(make_run([1], sealed=True))


class TestSortedRunLookups:
    def test_find_present(self):
        run = make_run([10, 20, 30])
        found, value, page = run.find(20)
        assert found and value == 200

    def test_find_absent_gives_probe_page(self):
        run = make_run(range(0, 40, 2), entries_per_page=4)
        found, _, page = run.find(33)
        assert not found
        assert 0 <= page < run.n_pages

    def test_page_of_position_layout(self):
        run = make_run(range(10), entries_per_page=4)
        assert run.page_of_position(0) == 0
        assert run.page_of_position(3) == 0
        assert run.page_of_position(4) == 1
        assert run.page_of_position(9) == 2

    def test_find_batch_matches_single(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.choice(1000, size=100, replace=False))
        run = make_run(keys)
        probes = rng.integers(0, 1200, size=200).astype(np.int64)
        found, values, pages = run.find_batch(probes)
        for i, probe in enumerate(probes):
            f, v, p = run.find(int(probe))
            assert found[i] == f
            assert pages[i] == p
            if f:
                assert values[i] == v

    def test_find_batch_empty_run(self):
        run = make_run([])
        found, values, pages = run.find_batch(np.asarray([1, 2], dtype=np.int64))
        assert not found.any()

    def test_bloom_negative_only_for_absent(self):
        run = make_run([1, 2, 3], fpr=0.5)
        for key in (1, 2, 3):
            assert run.bloom_positive(key)

    def test_bitarray_mode_works(self):
        run = make_run(range(100), bloom=BloomMode.BIT_ARRAY, fpr=0.01)
        assert run.bloom_positive(50)
        batch = run.bloom_positive_batch(np.arange(100, dtype=np.int64))
        assert batch.all()


class TestSortedRunRange:
    def test_range_slice_inclusive(self):
        run = make_run(range(0, 100, 10))
        keys, values, pages = run.range_slice(20, 50)
        assert keys.tolist() == [20, 30, 40, 50]
        assert pages >= 1

    def test_range_slice_empty_overlap_costs_nothing(self):
        run = make_run(range(0, 100, 10))
        keys, _, pages = run.range_slice(101, 200)
        assert len(keys) == 0
        assert pages == 0

    def test_range_slice_page_count(self):
        run = make_run(range(16), entries_per_page=4)
        _, _, pages = run.range_slice(0, 15)
        assert pages == 4
        _, _, pages = run.range_slice(0, 3)
        assert pages == 1

    @given(
        st.lists(st.integers(0, 500), min_size=1, max_size=80, unique=True),
        st.integers(0, 500),
        st.integers(0, 500),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        run = make_run(sorted(keys))
        got, _, _ = run.range_slice(lo, hi)
        assert got.tolist() == sorted(k for k in keys if lo <= k <= hi)


class TestLevel:
    def _level(self, policy=2, capacity=100, max_policy=10):
        return Level(
            level_no=1, capacity_entries=capacity, policy=policy,
            fpr=0.01, max_policy=max_policy,
        )

    def test_validation(self):
        with pytest.raises(TreeStateError):
            Level(0, 100, 1, 0.01, 10)
        with pytest.raises(TreeStateError):
            Level(1, 0, 1, 0.01, 10)
        with pytest.raises(PolicyError):
            self._level(policy=0)
        with pytest.raises(PolicyError):
            self._level(policy=11)

    def test_active_run_capacity(self):
        level = self._level(policy=4, capacity=100)
        assert level.active_run_capacity() == 25

    def test_fill_and_counts(self):
        level = self._level(capacity=100)
        level.runs.append(make_run(range(30), sealed=True))
        level.runs.append(make_run(range(100, 120)))
        assert level.data_entries == 50
        assert level.fill_ratio == pytest.approx(0.5)
        assert level.n_runs == 2
        assert level.active_run is not None
        assert len(level.sealed_runs) == 1

    def test_active_run_none_when_tail_sealed(self):
        level = self._level()
        level.runs.append(make_run(range(10), sealed=True))
        assert level.active_run is None

    def test_replace_active_returns_old(self):
        level = self._level(capacity=100)
        old = make_run(range(5))
        level.runs.append(old)
        new = make_run(range(10), run_id=1)
        replaced = level.replace_active(new)
        assert replaced is old
        assert level.runs[-1] is new

    def test_replace_active_seals_at_capacity(self):
        level = self._level(policy=2, capacity=20)
        full = make_run(range(10), capacity=10)
        level.replace_active(full)
        assert full.sealed

    def test_flexible_shrink_seals_oversized_active(self):
        level = self._level(policy=1, capacity=100)
        active = make_run(range(60), capacity=100)
        level.runs.append(active)
        level.set_policy_flexible(10)  # new active capacity = 10 < 60
        assert active.sealed
        assert active.capacity_entries == 10
        assert level.policy == 10

    def test_flexible_grow_keeps_active_open(self):
        level = self._level(policy=10, capacity=100)
        active = make_run(range(5), capacity=10)
        level.runs.append(active)
        level.set_policy_flexible(2)
        assert not active.sealed
        assert active.capacity_entries == 50

    def test_flexible_never_touches_sealed_runs(self):
        level = self._level(policy=5, capacity=100)
        sealed = make_run(range(20), capacity=20, sealed=True)
        level.runs.append(sealed)
        level.set_policy_flexible(1)
        assert sealed.capacity_entries == 20  # untouched

    def test_lazy_policy_applies_on_empty(self):
        level = self._level(policy=2)
        level.set_policy_lazy(7)
        assert level.policy == 2
        assert level.pending_policy == 7
        level.drop_all_runs()
        assert level.policy == 7
        assert level.pending_policy is None

    def test_lazy_same_policy_clears_pending(self):
        level = self._level(policy=2)
        level.set_policy_lazy(7)
        level.set_policy_lazy(2)
        assert level.pending_policy is None

    def test_immediate_policy_clears_pending(self):
        level = self._level(policy=2)
        level.set_policy_lazy(7)
        level.set_policy_immediate(3)
        assert level.policy == 3
        assert level.pending_policy is None

    def test_invariants_detect_unsealed_middle_run(self):
        level = self._level()
        level.runs.append(make_run(range(5)))  # unsealed, not tail
        level.runs.append(make_run(range(10, 15)))
        with pytest.raises(TreeStateError):
            level.check_invariants()
