"""Kill -9 the durable store at every fault-injection point; recover.

Each case re-runs ``scripts/crash_smoke.py``'s child workload in a
subprocess with ``REPRO_CRASH=<point>:<n>`` armed, asserts the process
actually died at the injected I/O boundary (exit code 137), then reopens
the directory and checks the durability contract: the recovered store's
contents equal a dict model of exactly the operations the recovered
watermark covers, the watermark covers every acknowledged write, and
``check_invariants`` (tree structure + manifest/disk agreement) passes.

The CI ``crash-recovery`` job runs the same matrix standalone (with a
report artifact) via ``scripts/crash_smoke.py``; keeping the suite in
tier-1 as well means a broken recovery path can never land even when the
benchmark jobs are skipped.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent / "scripts" / "crash_smoke.py"
)
_spec = importlib.util.spec_from_file_location("crash_smoke", _SCRIPT)
crash_smoke = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("crash_smoke", crash_smoke)
_spec.loader.exec_module(crash_smoke)


@pytest.fixture(scope="module")
def op_stream():
    return crash_smoke.op_stream()


@pytest.mark.parametrize("spec", crash_smoke.SCENARIOS)
def test_crash_point_recovers(spec, op_stream, tmp_path):
    row = crash_smoke.run_scenario(spec, op_stream, str(tmp_path))
    # run_scenario raises ScenarioFailure on any broken contract; the row
    # is the evidence that the child died *after* acknowledging work.
    assert row["recovered_ops"] >= row["acked_seqno"]
    assert row["recovered_keys"] > 0


def test_injection_spec_parsing(monkeypatch):
    from repro.durable import faults

    monkeypatch.setenv("REPRO_CRASH", "wal.append:3, manifest.swap:1")
    faults.reset_counts()
    armed = faults._armed()
    assert armed == {"wal.append": 3, "manifest.swap": 1}
    monkeypatch.delenv("REPRO_CRASH")
    faults.reset_counts()
    assert faults._armed() == {}
    # Unarmed points never fire.
    assert not faults.crash_hit("wal.append")


def test_crash_exit_code_is_distinct():
    # 137 mirrors SIGKILL's shell convention — distinguishable from both
    # clean exits and Python tracebacks (exit 1) in CI logs.
    assert crash_smoke.CRASH_EXIT_CODE == 137
