"""Tests for replay buffer, noise processes, DDPG and DQN agents."""

import numpy as np
import pytest

from repro.errors import RLError
from repro.rl import (
    DDPGAgent,
    DDPGConfig,
    DQNAgent,
    DQNConfig,
    GaussianNoise,
    OrnsteinUhlenbeckNoise,
    ReplayBuffer,
)


class TestReplayBuffer:
    def _buffer(self, capacity=8, rng=None):
        rng = rng or np.random.default_rng(0)
        return ReplayBuffer(capacity, state_dim=2, action_dim=1, rng=rng)

    def test_push_and_len(self):
        buffer = self._buffer()
        buffer.push(np.zeros(2), np.zeros(1), 1.0, np.zeros(2))
        assert len(buffer) == 1
        assert not buffer.is_full

    def test_wraps_at_capacity(self):
        buffer = self._buffer(capacity=4)
        for i in range(10):
            buffer.push(np.full(2, i), np.zeros(1), float(i), np.zeros(2))
        assert len(buffer) == 4
        assert buffer.is_full
        states, _, rewards, _, _ = buffer.sample(32)
        assert rewards.min() >= 6.0  # only the newest four survive

    def test_sample_shapes(self):
        buffer = self._buffer()
        for i in range(5):
            buffer.push(np.zeros(2), np.zeros(1), 0.0, np.zeros(2), done=True)
        states, actions, rewards, next_states, dones = buffer.sample(3)
        assert states.shape == (3, 2)
        assert actions.shape == (3, 1)
        assert rewards.shape == (3,)
        assert dones.tolist() == [1.0, 1.0, 1.0]

    def test_sample_empty_raises(self):
        with pytest.raises(RLError):
            self._buffer().sample(1)

    def test_invalid_construction(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RLError):
            ReplayBuffer(0, 2, 1, rng)
        with pytest.raises(RLError):
            ReplayBuffer(4, 0, 1, rng)

    def test_clear(self):
        buffer = self._buffer()
        buffer.push(np.zeros(2), np.zeros(1), 0.0, np.zeros(2))
        buffer.clear()
        assert len(buffer) == 0


class TestNoise:
    def test_ou_mean_reversion(self):
        rng = np.random.default_rng(0)
        noise = OrnsteinUhlenbeckNoise(1, rng, mu=0.0, theta=0.5, sigma=0.05)
        samples = np.asarray([noise.sample()[0] for _ in range(2000)])
        assert abs(samples.mean()) < 0.1

    def test_ou_reset(self):
        rng = np.random.default_rng(0)
        noise = OrnsteinUhlenbeckNoise(2, rng, mu=0.5)
        noise.sample()
        noise.reset()
        assert (noise._state == 0.5).all()

    def test_scale_sigma_floor(self):
        rng = np.random.default_rng(0)
        noise = OrnsteinUhlenbeckNoise(1, rng, sigma=0.1)
        noise.scale_sigma(0.0)
        assert noise.sigma == 0.0
        assert noise.sample().shape == (1,)

    def test_gaussian_magnitude(self):
        rng = np.random.default_rng(0)
        noise = GaussianNoise(1, rng, sigma=0.2)
        samples = np.asarray([noise.sample()[0] for _ in range(4000)])
        assert samples.std() == pytest.approx(0.2, abs=0.02)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RLError):
            OrnsteinUhlenbeckNoise(0, rng)
        with pytest.raises(RLError):
            GaussianNoise(1, rng, sigma=-1.0)


class TestDDPG:
    def _agent(self, **overrides):
        rng = np.random.default_rng(3)
        params = dict(
            state_dim=2, action_dim=1, hidden=(16, 16), gamma=0.0,
            noise_sigma=0.5, warmup=4,
        )
        params.update(overrides)
        return DDPGAgent(DDPGConfig(**params), rng)

    def test_action_in_range(self):
        agent = self._agent()
        action = agent.act(np.zeros(2))
        assert action.shape == (1,)
        assert -1.0 <= action[0] <= 1.0

    def test_update_before_warmup_returns_none(self):
        agent = self._agent()
        assert agent.update() is None

    def test_solves_continuous_bandit(self):
        """Reward -(a - 0.5)^2 should pull actions toward 0.5."""
        agent = self._agent()
        state = np.asarray([0.3, -0.2])
        for _ in range(400):
            action = agent.act(state, explore=True)
            reward = -((action[0] - 0.5) ** 2)
            agent.observe(state, action, reward, state, done=True)
            agent.update()
            agent.decay_noise()
        final = agent.act(state, explore=False)
        assert final[0] == pytest.approx(0.5, abs=0.2)

    def test_noise_decay_and_reset(self):
        agent = self._agent(noise_decay=0.5)
        initial = agent.noise.sigma
        agent.decay_noise()
        assert agent.noise.sigma == pytest.approx(initial * 0.5)
        agent.reset_exploration()
        assert agent.noise.sigma == pytest.approx(initial)

    def test_target_networks_track(self):
        agent = self._agent(tau=0.5)
        for _ in range(20):
            state = np.random.default_rng(0).normal(size=2)
            action = agent.act(state)
            agent.observe(state, action, 1.0, state, done=True)
        before = [p.copy() for p in agent.target_critic.params()]
        agent.update()
        after = agent.target_critic.params()
        assert any(not np.allclose(b, a) for b, a in zip(before, after))

    def test_config_validation(self):
        with pytest.raises(RLError):
            DDPGConfig(gamma=1.0).validate()
        with pytest.raises(RLError):
            DDPGConfig(tau=0.0).validate()
        with pytest.raises(RLError):
            DDPGConfig(buffer_capacity=4, batch_size=8).validate()


class TestDQN:
    def _agent(self, **overrides):
        rng = np.random.default_rng(3)
        params = dict(
            state_dim=2, n_actions=3, hidden=(16, 16), gamma=0.0,
            warmup=4, epsilon_decay=0.9,
        )
        params.update(overrides)
        return DQNAgent(DQNConfig(**params), rng)

    def test_action_is_valid_index(self):
        agent = self._agent()
        action = agent.act(np.zeros(2))
        assert action in (0, 1, 2)

    def test_greedy_when_not_exploring(self):
        agent = self._agent()
        actions = {agent.act(np.zeros(2), explore=False) for _ in range(10)}
        assert len(actions) == 1

    def test_solves_discrete_bandit(self):
        """Action 2 always pays 1.0, others 0 — the agent should find it."""
        agent = self._agent()
        state = np.asarray([0.1, 0.9])
        for _ in range(300):
            action = agent.act(state, explore=True)
            reward = 1.0 if action == 2 else 0.0
            agent.observe(state, action, reward, state, done=True)
            agent.update()
            agent.decay_epsilon()
        assert agent.act(state, explore=False) == 2

    def test_epsilon_decay_floor(self):
        agent = self._agent(epsilon_min=0.1)
        for _ in range(100):
            agent.decay_epsilon()
        assert agent.epsilon == pytest.approx(0.1)

    def test_reset_exploration(self):
        agent = self._agent()
        for _ in range(10):
            agent.decay_epsilon()
        agent.reset_exploration()
        assert agent.epsilon == pytest.approx(1.0)

    def test_target_sync(self):
        agent = self._agent(target_sync_every=1)
        state = np.zeros(2)
        for _ in range(10):
            agent.observe(state, 0, 0.5, state, done=True)
        agent.update()
        for mine, theirs in zip(agent.target_net.params(), agent.q_net.params()):
            assert np.allclose(mine, theirs)

    def test_config_validation(self):
        with pytest.raises(RLError):
            DQNConfig(n_actions=1).validate()
        with pytest.raises(RLError):
            DQNConfig(epsilon_min=0.5, epsilon_start=0.1).validate()
