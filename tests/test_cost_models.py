"""Tests for repro.cost: Table 2 transition formulas, Eq. 5 operation
costs, Eq. 4 propagation and amplification estimators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BloomScheme, CostModelParams, SystemConfig
from repro.cost import (
    TransitionScenario,
    amortized_greedy_immediate_ios,
    amortized_lazy_delay_seconds,
    clamp_policy,
    flexible_costs,
    greedy_costs,
    lazy_costs,
    lemma_next_policy,
    level_operation_cost,
    level_read_amplification,
    level_write_amplification,
    measured_read_amplification,
    measured_write_amplification,
    optimal_policies_whitebox,
    optimal_policy_continuous,
    paper_case_study,
    propagate_policies,
    tree_operation_cost,
    tree_write_amplification,
)
from repro.errors import ConfigError
from repro.storage.pager import IOCounters


def paper_scenario(**overrides):
    params = dict(
        size_ratio=10,
        level_capacity_bytes=1_024_000,
        page_bytes=4096,
        entry_bytes=1024,
        fpr=0.01,
        old_policy=5,
        new_policy=4,
        fill_ratio=0.5,
        lookup_fraction=0.5,
    )
    params.update(overrides)
    return TransitionScenario(**params)


class TestTable2CaseStudy:
    """The paper's worked example: greedy 125, lazy 3.75, flexible 2.5."""

    def test_greedy_additional_cost(self):
        assert greedy_costs(paper_scenario()).additional_ios == pytest.approx(125.0)

    def test_lazy_additional_cost(self):
        assert lazy_costs(paper_scenario()).additional_ios == pytest.approx(3.75)

    def test_flexible_additional_cost(self):
        assert flexible_costs(paper_scenario()).additional_ios == pytest.approx(2.5)

    def test_paper_case_study_helper(self):
        results = paper_case_study()
        assert results["greedy"].additional_ios == pytest.approx(125.0)
        assert results["lazy"].additional_ios == pytest.approx(3.75)
        assert results["flexible"].additional_ios == pytest.approx(2.5)

    def test_zero_cost_and_delay_structure(self):
        scenario = paper_scenario()
        assert greedy_costs(scenario).delay_seconds == 0.0
        assert lazy_costs(scenario).immediate_ios == 0.0
        flexible = flexible_costs(scenario)
        assert flexible.immediate_ios == 0.0
        assert flexible.delay_seconds == 0.0

    def test_amortized_forms(self):
        scenario = paper_scenario()
        assert amortized_greedy_immediate_ios(scenario) == pytest.approx(
            1_024_000 / (2 * 4096)
        )
        assert amortized_lazy_delay_seconds(scenario) == pytest.approx(
            1_024_000 / (2 * scenario.updates_per_second * 1024)
        )


class TestTransitionCostOrdering:
    @given(
        k=st.integers(2, 10),
        k_new=st.integers(1, 10),
        x=st.floats(0.05, 0.95),
        gamma=st.floats(0.05, 0.9),
    )
    @settings(max_examples=80, deadline=None)
    def test_flexible_never_worse_than_lazy(self, k, k_new, x, gamma):
        scenario = paper_scenario(
            old_policy=k, new_policy=k_new, fill_ratio=x, lookup_fraction=gamma
        )
        assert (
            flexible_costs(scenario).additional_ios
            <= lazy_costs(scenario).additional_ios + 1e-12
        )

    @given(k_new=st.integers(6, 10), x=st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_flexible_free_when_relaxing(self, k_new, x):
        scenario = paper_scenario(old_policy=5, new_policy=k_new, fill_ratio=x)
        assert flexible_costs(scenario).additional_ios == 0.0

    def test_lazy_aggressive_change_pays_reads(self):
        scenario = paper_scenario(old_policy=8, new_policy=2)
        assert lazy_costs(scenario).additional_ios > 0

    def test_lazy_relaxing_change_pays_writes(self):
        scenario = paper_scenario(old_policy=2, new_policy=8)
        assert lazy_costs(scenario).additional_ios > 0

    def test_same_policy_costs_nothing_extra(self):
        scenario = paper_scenario(old_policy=5, new_policy=5)
        assert lazy_costs(scenario).additional_ios == 0.0
        assert flexible_costs(scenario).additional_ios == 0.0

    def test_scenario_validation(self):
        with pytest.raises(ConfigError):
            paper_scenario(lookup_fraction=1.0)  # divides by (1 - gamma)
        with pytest.raises(ConfigError):
            paper_scenario(fill_ratio=1.5)
        with pytest.raises(ConfigError):
            paper_scenario(old_policy=0)


class TestOperationCost:
    costs = CostModelParams()

    def _cost(self, policy, gamma, fpr=0.02):
        return level_operation_cost(
            policy, fpr, gamma, self.costs, size_ratio=10,
            entry_bytes=1024, page_bytes=4096,
        )

    def test_read_cost_grows_with_policy(self):
        assert self._cost(10, 1.0) > self._cost(1, 1.0)

    def test_write_cost_shrinks_with_policy(self):
        assert self._cost(10, 0.0) < self._cost(1, 0.0)

    def test_pure_read_has_no_update_term(self):
        pure_read = self._cost(5, 1.0)
        expected = 0.02 * self.costs.random_read_s * 5 + self.costs.run_probe_cpu_s * 5
        assert pure_read == pytest.approx(expected)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ConfigError):
            self._cost(0, 0.5)
        with pytest.raises(ConfigError):
            level_operation_cost(
                1, 0.02, 1.5, self.costs, 10, 1024, 4096
            )

    def test_tree_cost_sums_levels(self):
        config = SystemConfig()
        single = tree_operation_cost([5], [0.02], 0.5, config)
        double = tree_operation_cost([5, 5], [0.02, 0.02], 0.5, config)
        assert double == pytest.approx(2 * single)

    def test_tree_cost_validates_lengths(self):
        with pytest.raises(ConfigError):
            tree_operation_cost([5], [0.02, 0.02], 0.5, SystemConfig())


class TestOptimalPolicy:
    def test_read_heavy_wants_aggressive(self):
        config = SystemConfig()
        assert optimal_policies_whitebox(0.9, 3, config) == [1, 1, 1]

    def test_write_heavy_wants_lazy(self):
        config = SystemConfig()
        assert optimal_policies_whitebox(0.1, 3, config) == [10, 10, 10]

    def test_balanced_is_intermediate(self):
        config = SystemConfig()
        policies = optimal_policies_whitebox(0.5, 3, config)
        assert all(1 < k < 10 for k in policies)

    def test_optimum_decreases_with_lookup_fraction(self):
        config = SystemConfig()
        previous = config.size_ratio
        for gamma in (0.1, 0.3, 0.5, 0.7, 0.9):
            k = optimal_policies_whitebox(gamma, 1, config)[0]
            assert k <= previous
            previous = k

    def test_monkey_deeper_levels_more_aggressive(self):
        config = SystemConfig(bloom_scheme=BloomScheme.MONKEY, bits_per_key=4.0)
        policies = optimal_policies_whitebox(0.5, 4, config)
        assert policies == sorted(policies, reverse=True)

    def test_continuous_optimum_degenerate_cases(self):
        costs = CostModelParams()
        assert math.isinf(
            optimal_policy_continuous(1, 0.02, 0.0, costs, 10, 1024, 4096)
        )
        assert optimal_policy_continuous(1, 0.02, 1.0, costs, 10, 1024, 4096) == 0.0

    def test_clamp_policy(self):
        assert clamp_policy(0.4, 10) == 1
        assert clamp_policy(4.4, 10) == 4
        assert clamp_policy(40.0, 10) == 10
        assert clamp_policy(math.inf, 10) == 10


class TestPropagation:
    def test_paper_example(self):
        """Section 5.2.2: K1=9, K2=7 propagates to K3≈3, K4≈1 at T=10."""
        assert propagate_policies(9, 7, 4, 10) == [9, 7, 3, 1]

    def test_equal_policies_propagate_unchanged(self):
        assert propagate_policies(5, 5, 5, 10) == [5, 5, 5, 5, 5]

    def test_single_level(self):
        assert propagate_policies(5, 3, 1, 10) == [5]

    def test_non_monkey_profile_saturates_at_t(self):
        # K2 > K1 gives a non-physical Eq. 4 RHS; we saturate to T.
        assert lemma_next_policy(3, 9, 10) == 10.0

    def test_lemma_monotone(self):
        # A steeper drop from K1 to K2 forces a more aggressive K3.
        k3_steep = lemma_next_policy(9, 5, 10)
        k3_shallow = lemma_next_policy(9, 8, 10)
        assert k3_steep < k3_shallow

    @given(
        k1=st.integers(2, 10),
        k2=st.integers(1, 10),
        n=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_propagation_always_valid(self, k1, k2, n):
        policies = propagate_policies(k1, k2, n, 10)
        assert len(policies) == n
        assert all(1 <= k <= 10 for k in policies)

    @given(k1=st.integers(2, 10), k2=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_propagation_monotone_when_decreasing(self, k1, k2):
        if k2 <= k1:
            policies = propagate_policies(k1, k2, 6, 10)
            assert policies == sorted(policies, reverse=True)

    def test_lemma_rejects_invalid(self):
        with pytest.raises(ConfigError):
            lemma_next_policy(0, 5, 10)


class TestAmplification:
    def test_read_amplification_formula(self):
        assert level_read_amplification(0.02, 5, 0.5) == pytest.approx(0.05)

    def test_write_amplification_formula(self):
        assert level_write_amplification(10, 2) == pytest.approx(5.0)

    def test_tree_write_amplification(self):
        assert tree_write_amplification(10, [1, 2, 5]) == pytest.approx(
            10.0 + 5.0 + 2.0
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            level_read_amplification(0.02, 0, 0.5)
        with pytest.raises(ConfigError):
            level_read_amplification(0.02, 1, 1.5)
        with pytest.raises(ConfigError):
            level_write_amplification(1, 1)

    def test_measured_amplifications(self):
        io = IOCounters(random_reads=50, seq_writes=100)
        assert measured_read_amplification(io, 25) == pytest.approx(2.0)
        assert measured_write_amplification(io, 100, 4) == pytest.approx(4.0)
        assert measured_read_amplification(io, 0) == 0.0
        assert measured_write_amplification(io, 0, 4) == 0.0
