"""Tests for repro.lsm.iterators."""

from repro.lsm.iterators import iter_live_items, live_items
from repro.lsm.tree import LSMTree


class TestLiveItems:
    def test_empty_tree(self, tiny_config):
        keys, values = live_items(LSMTree(tiny_config))
        assert len(keys) == 0
        assert len(values) == 0

    def test_reflects_all_layers(self, tiny_config):
        tree = LSMTree(tiny_config)
        model = {}
        for i in range(500):
            key = int(i * 17 % 800)
            tree.put(key, i)
            model[key] = i
        keys, values = live_items(tree)
        assert dict(zip(keys.tolist(), values.tolist())) == model

    def test_memtable_overrides_disk(self, tiny_config):
        tree = LSMTree(tiny_config)
        tree.put(1, 10)
        for i in range(100, 200):
            tree.put(i, i)  # flush the old version of key 1 to disk
        tree.put(1, 99)  # newer version still in the memtable
        keys, values = live_items(tree)
        assert dict(zip(keys.tolist(), values.tolist()))[1] == 99

    def test_excludes_tombstones(self, tiny_config):
        tree = LSMTree(tiny_config)
        tree.put(1, 10)
        tree.put(2, 20)
        tree.delete(1)
        keys, _ = live_items(tree)
        assert keys.tolist() == [2]

    def test_charges_no_simulated_time(self, tiny_config):
        tree = LSMTree(tiny_config)
        for i in range(300):
            tree.put(i, i)
        before = tree.clock.now
        live_items(tree)
        assert tree.clock.now == before

    def test_iterator_ordered(self, tiny_config, rng):
        tree = LSMTree(tiny_config)
        keys = rng.choice(10_000, size=300, replace=False)
        for key in keys:
            tree.put(int(key), int(key) * 2)
        items = list(iter_live_items(tree))
        assert items == sorted(items)
        assert len(items) == 300
        assert all(v == k * 2 for k, v in items)
