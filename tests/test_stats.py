"""Tests for repro.lsm.stats."""

import pytest

from repro.lsm.stats import BUFFER_LEVEL, MissionStats, StatsCollector
from repro.storage.pager import IOCounters


class TestMissionStats:
    def test_operation_counts(self):
        mission = MissionStats(index=0, n_lookups=3, n_updates=1, n_ranges=1)
        assert mission.n_operations == 5
        assert mission.lookup_fraction == pytest.approx(0.8)

    def test_empty_mission_fractions(self):
        mission = MissionStats(index=0)
        assert mission.lookup_fraction == 0.0
        assert mission.latency_per_op == 0.0

    def test_latency_per_op(self):
        mission = MissionStats(
            index=0, n_lookups=5, n_updates=5, read_time=1.0, write_time=1.0
        )
        assert mission.latency_per_op == pytest.approx(0.2)

    def test_level_time_sums_read_and_write(self):
        mission = MissionStats(index=0)
        mission.level_read_time[2] = 1.5
        mission.level_write_time[2] = 0.5
        assert mission.level_time(2) == pytest.approx(2.0)
        assert mission.level_time(3) == 0.0

    def test_ops_per_second_uses_wall_duration(self):
        mission = MissionStats(
            index=0, n_lookups=300, n_updates=200, wall_duration=0.25
        )
        assert mission.ops_per_second == pytest.approx(2000.0)
        assert MissionStats(index=0, n_lookups=5).ops_per_second == 0.0

    def test_sim_ops_per_second_uses_sim_duration(self):
        mission = MissionStats(
            index=0, n_lookups=100, sim_duration=0.5
        )
        assert mission.sim_ops_per_second == pytest.approx(200.0)

    def test_wall_duration_excluded_from_snapshots(self):
        """Wall time is a host measurement — like model_update_time it
        cannot survive a bit-exact save/restore, so it is not serialized
        and restores as 0.0."""
        mission = MissionStats(index=0, n_lookups=1, wall_duration=1.5)
        state = mission.state_dict()
        assert "wall_duration" not in state
        restored = MissionStats.from_state_dict(state)
        assert restored.wall_duration == 0.0
        assert restored.n_lookups == 1


class TestStatsCollector:
    def test_attribution_accumulates(self):
        stats = StatsCollector()
        stats.add_read(1, 0.5)
        stats.add_read(2, 0.25)
        stats.add_write(1, 1.0)
        assert stats.total_read_time == pytest.approx(0.75)
        assert stats.total_write_time == pytest.approx(1.0)
        assert stats.level_time(1) == pytest.approx(1.5)
        assert stats.total_time == pytest.approx(1.75)

    def test_mission_window_isolates_costs(self):
        stats = StatsCollector()
        io = IOCounters()
        stats.add_read(1, 9.0)  # outside any mission
        stats.begin_mission(io, clock_now=0.0)
        stats.add_read(1, 1.0)
        stats.count_lookup()
        io.random_reads += 3
        mission = stats.end_mission(io, clock_now=1.0)
        assert mission.read_time == pytest.approx(1.0)
        assert mission.n_lookups == 1
        assert mission.io.random_reads == 3
        assert mission.sim_duration == pytest.approx(1.0)

    def test_mission_indices_increment(self):
        stats = StatsCollector()
        io = IOCounters()
        for expected in range(3):
            stats.begin_mission(io, 0.0)
            mission = stats.end_mission(io, 0.0)
            assert mission.index == expected
        assert len(stats.completed) == 3

    def test_double_begin_rejected(self):
        stats = StatsCollector()
        stats.begin_mission(IOCounters(), 0.0)
        with pytest.raises(RuntimeError):
            stats.begin_mission(IOCounters(), 0.0)

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            StatsCollector().end_mission(IOCounters(), 0.0)

    def test_io_diff_only_counts_window(self):
        stats = StatsCollector()
        io = IOCounters(random_reads=100)
        stats.begin_mission(io, 0.0)
        io.random_reads += 7
        mission = stats.end_mission(io, 0.0)
        assert mission.io.random_reads == 7

    def test_counts_by_kind(self):
        stats = StatsCollector()
        stats.begin_mission(IOCounters(), 0.0)
        stats.count_lookup(2)
        stats.count_update(3)
        stats.count_range(1)
        mission = stats.end_mission(IOCounters(), 0.0)
        assert (mission.n_lookups, mission.n_updates, mission.n_ranges) == (2, 3, 1)
        assert stats.total_operations == 6

    def test_model_update_time_recorded(self):
        stats = StatsCollector()
        stats.begin_mission(IOCounters(), 0.0)
        stats.add_model_update_time(0.01)
        mission = stats.end_mission(IOCounters(), 0.0)
        assert mission.model_update_time == pytest.approx(0.01)

    def test_recent_missions(self):
        stats = StatsCollector()
        io = IOCounters()
        for _ in range(5):
            stats.begin_mission(io, 0.0)
            stats.end_mission(io, 0.0)
        assert [m.index for m in stats.recent_missions(2)] == [3, 4]
        assert stats.recent_missions(0) == []
        assert len(stats.recent_missions(99)) == 5

    def test_buffer_level_constant(self):
        assert BUFFER_LEVEL == 0
