"""Tests for the RusKey facade (repro.core.ruskey)."""

import numpy as np
import pytest

from repro.core.lerp import Lerp, LerpConfig
from repro.core.ruskey import RusKey
from repro.core.tuners import StaticTuner
from repro.errors import WorkloadError
from repro.workload.uniform import UniformWorkload


@pytest.fixture
def store(small_config):
    return RusKey(small_config, tuner=StaticTuner(1))


class TestDataPath:
    def test_put_get_delete(self, store):
        store.put(1, 10)
        assert store.get(1) == 10
        store.delete(1)
        assert store.get(1) is None

    def test_range_lookup(self, store):
        for i in range(10):
            store.put(i, i * 2)
        assert store.range_lookup(2, 4) == [(2, 4), (3, 6), (4, 8)]

    def test_bulk_load(self, store, rng):
        keys = rng.choice(10**5, size=300, replace=False).astype(np.int64)
        store.bulk_load(keys, keys)
        assert store.get(int(keys[0])) == int(keys[0])

    def test_default_tuner_is_lerp(self, small_config):
        assert isinstance(RusKey(small_config).tuner, Lerp)

    def test_default_config(self):
        store = RusKey()
        assert store.config.size_ratio == 10


class TestMissionLoop:
    def test_run_mission_logs_stats_and_policies(self, store):
        workload = UniformWorkload(500, lookup_fraction=0.5, seed=1)
        mission = next(iter(workload.missions(1, 200)))
        stats = store.run_mission(mission)
        assert stats.n_operations == 200
        assert store.mission_log == [stats]
        assert len(store.policy_history) == 1

    def test_run_workload_loads_and_runs(self, small_config):
        store = RusKey(small_config, tuner=StaticTuner(1))
        workload = UniformWorkload(500, lookup_fraction=0.5, seed=1)
        stats = store.run_workload(workload, n_missions=4, mission_size=100)
        assert len(stats) == 4
        assert store.tree.total_entries >= 500

    def test_run_workload_rejects_double_load(self, small_config):
        store = RusKey(small_config, tuner=StaticTuner(1))
        workload = UniformWorkload(500, lookup_fraction=0.5, seed=1)
        store.run_workload(workload, n_missions=1, mission_size=50)
        with pytest.raises(WorkloadError):
            store.run_workload(workload, n_missions=1, mission_size=50)

    def test_run_workload_load_false_continues(self, small_config):
        store = RusKey(small_config, tuner=StaticTuner(1))
        workload = UniformWorkload(500, lookup_fraction=0.5, seed=1)
        store.run_workload(workload, n_missions=1, mission_size=50)
        store.run_workload(
            workload, n_missions=1, mission_size=50, load=False
        )
        assert len(store.mission_log) == 2

    def test_run_workload_validates_shape(self, store):
        workload = UniformWorkload(500, lookup_fraction=0.5, seed=1)
        with pytest.raises(WorkloadError):
            store.run_workload(workload, n_missions=0, mission_size=50)

    def test_latency_series_and_mean(self, small_config):
        store = RusKey(small_config, tuner=StaticTuner(1))
        workload = UniformWorkload(500, lookup_fraction=0.5, seed=1)
        store.run_workload(workload, n_missions=5, mission_size=100)
        series = store.latency_series()
        assert series.shape == (5,)
        assert (series > 0).all()
        assert store.mean_latency() == pytest.approx(float(series.mean()))
        assert store.mean_latency(last_n=2) == pytest.approx(
            float(series[-2:].mean())
        )

    def test_mean_latency_empty(self, store):
        assert store.mean_latency() == 0.0


class TestEndToEndTuning:
    def test_ruskey_beats_worst_baseline_on_read_heavy(self, small_config):
        """After tuning, RusKey should clearly beat the read-hostile K=10
        baseline on a read-heavy workload (paper Figure 6a shape)."""
        lerp_config = LerpConfig(
            stable_window=8, max_stage_missions=40, seed=1,
        )
        workload = UniformWorkload(4000, lookup_fraction=0.9, seed=7)

        def run(tuner, policy):
            config = small_config.with_updates(initial_policy=policy)
            store = RusKey(config, tuner=tuner, chunk_size=64)
            keys, values = workload.load_records()
            store.bulk_load(keys, values, distribute=True)
            store.run_missions(workload.missions(80, 400))
            return store

        ruskey = run(None if False else Lerp(
            small_config, lerp_config), 1)
        lazy = run(StaticTuner(10), 10)
        assert ruskey.mean_latency(last_n=20) < lazy.mean_latency(last_n=20)

    def test_policies_move_toward_aggressive_on_reads(self, small_config):
        # Note: γ must stay below 1.0 — with zero updates flexible
        # transitions never take effect (the degenerate case the paper's
        # Section 7 "Limitations" discusses), so the reward would be flat.
        lerp_config = LerpConfig(stable_window=8, max_stage_missions=60, seed=1)
        config = small_config.with_updates(initial_policy=5)
        store = RusKey(config, tuner=Lerp(config, lerp_config), chunk_size=64)
        workload = UniformWorkload(4000, lookup_fraction=0.9, seed=7)
        keys, values = workload.load_records()
        store.bulk_load(keys, values, distribute=True)
        store.run_missions(workload.missions(100, 400))
        assert store.policies()[0] <= 5
