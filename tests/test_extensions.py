"""Tests for repro.core.extensions and runtime Bloom budget changes."""

import pytest

from repro.config import SystemConfig
from repro.core.extensions import BloomBudgetExtension
from repro.core.ruskey import RusKey
from repro.core.tuners import NoOpTuner, StaticTuner
from repro.errors import ConfigError, TreeStateError
from repro.lsm.tree import LSMTree
from repro.workload.uniform import UniformWorkload


class TestSetBitsPerKey:
    def test_updates_level_fprs(self, tiny_config):
        tree = LSMTree(tiny_config)
        for i in range(300):
            tree.put(i, i)
        old_fprs = [level.fpr for level in tree.levels]
        tree.set_bits_per_key(tiny_config.bits_per_key * 2)
        new_fprs = [level.fpr for level in tree.levels]
        assert all(new < old for new, old in zip(new_fprs, old_fprs))

    def test_existing_runs_keep_filters(self, tiny_config):
        tree = LSMTree(tiny_config)
        for i in range(300):
            tree.put(i, i)
        run = next(r for level in tree.levels for r in level.runs)
        fpr_before = run.fpr
        tree.set_bits_per_key(16.0)
        assert run.fpr == fpr_before

    def test_new_runs_use_new_budget(self, tiny_config):
        tree = LSMTree(tiny_config)
        for i in range(300):
            tree.put(i, i)
        tree.set_bits_per_key(16.0)
        for i in range(300, 600):
            tree.put(i, i)
        newest = tree.levels[0].runs[-1]
        assert newest.fpr == pytest.approx(tree.levels[0].fpr)

    def test_rejects_nonpositive(self, tiny_config):
        tree = LSMTree(tiny_config)
        with pytest.raises(TreeStateError):
            tree.set_bits_per_key(0.0)

    def test_lookups_still_correct_after_change(self, tiny_config):
        tree = LSMTree(tiny_config)
        for i in range(400):
            tree.put(i, i * 3)
        tree.set_bits_per_key(2.0)
        for i in range(400, 800):
            tree.put(i, i * 3)
        for key in (0, 200, 500, 799):
            assert tree.get(key) == key * 3


class TestBloomBudgetExtension:
    def _run(self, window=5, n_missions=30):
        config = SystemConfig(write_buffer_bytes=16 * 1024, seed=3)
        extension = BloomBudgetExtension(
            StaticTuner(1), window=window, step=1.0, min_bits=2.0, max_bits=16.0
        )
        store = RusKey(config, tuner=extension, chunk_size=32)
        workload = UniformWorkload(2000, lookup_fraction=0.8, seed=3)
        keys, values = workload.load_records()
        store.bulk_load(keys, values, distribute=True)
        store.run_missions(workload.missions(n_missions, 200))
        return store, extension

    def test_adjusts_budget_over_time(self):
        store, extension = self._run()
        assert len(extension.budget_history) >= 2
        assert any(b != 8.0 for b in extension.budget_history)

    def test_budget_respects_bounds(self):
        store, extension = self._run(window=2, n_missions=60)
        assert all(2.0 <= b <= 16.0 for b in extension.budget_history)

    def test_base_tuner_still_applies(self):
        store, _ = self._run()
        assert all(k == 1 for k in store.policies())

    def test_name_composition(self):
        extension = BloomBudgetExtension(NoOpTuner())
        assert extension.name == "noop+bloom-budget"

    def test_reset_clears_state(self):
        _, extension = self._run()
        extension.reset()
        assert extension.budget_history == []
        assert extension._previous_window is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            BloomBudgetExtension(NoOpTuner(), window=1)
        with pytest.raises(ConfigError):
            BloomBudgetExtension(NoOpTuner(), step=0.0)
        with pytest.raises(ConfigError):
            BloomBudgetExtension(NoOpTuner(), min_bits=8.0, max_bits=4.0)
