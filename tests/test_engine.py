"""Tests for repro.engine: the KVEngine protocol, the sharded store and the
vectorized batch write path."""

import dataclasses

import numpy as np
import pytest

from repro.config import SystemConfig, TransitionKind
from repro.core.lerp import Lerp
from repro.core.missions import MissionRunner
from repro.core.ruskey import RusKey
from repro.core.tuners import StaticTuner
from repro.engine import (
    KVEngine,
    ShardedStore,
    merge_io_counters,
    merge_mission_stats,
    shard_of,
    shard_of_key,
)
from repro.errors import ConfigError, TreeStateError
from repro.lsm.entry import TOMBSTONE
from repro.lsm.flsm import FLSMTree
from repro.lsm.memtable import MemTable
from repro.lsm.tree import LSMTree
from repro.workload.uniform import UniformWorkload
from repro.workload.ycsb import YCSBWorkload


@pytest.fixture
def records(rng):
    keys = rng.choice(10**6, size=4000, replace=False).astype(np.int64)
    values = rng.integers(0, 2**31, size=4000).astype(np.int64)
    return keys, values


def assert_mission_stats_equal(a, b, exact_times=True):
    assert a.n_lookups == b.n_lookups
    assert a.n_updates == b.n_updates
    assert a.n_ranges == b.n_ranges
    if exact_times:
        assert a.io == b.io
        assert a.read_time == pytest.approx(b.read_time, abs=0.0)
        assert a.write_time == pytest.approx(b.write_time, abs=0.0)
        assert a.sim_duration == pytest.approx(b.sim_duration, abs=0.0)
        assert a.level_read_time == b.level_read_time
        assert a.level_write_time == b.level_write_time
    else:
        assert a.io.total == pytest.approx(b.io.total, rel=0.05)
        assert a.total_time == pytest.approx(b.total_time, rel=0.05)


class TestProtocol:
    def test_trees_conform(self, tiny_config):
        assert isinstance(LSMTree(tiny_config), KVEngine)
        assert isinstance(FLSMTree(tiny_config), KVEngine)

    def test_sharded_store_conforms(self, tiny_config):
        assert isinstance(ShardedStore(tiny_config, 4), KVEngine)

    def test_non_engine_rejected(self):
        assert not isinstance(object(), KVEngine)

    def test_tree_engine_surface(self, tiny_config):
        tree = LSMTree(tiny_config)
        assert tree.tuning_targets() == [tree]
        assert tree.io_counters is tree.disk.counters
        assert tree.clock_now == tree.clock.now
        tree.begin_mission()
        tree.put(1, 2)
        stats = tree.end_mission()
        assert stats.n_updates == 1
        assert tree.last_mission_breakdown() == [stats]

    def test_apply_transition_matches_set_policies(self, tiny_config):
        a, b = LSMTree(tiny_config), LSMTree(tiny_config)
        for i in range(200):
            a.put(i, i)
            b.put(i, i)
        a.apply_transition([3, 2], TransitionKind.FLEXIBLE)
        b.set_policies([3, 2], TransitionKind.FLEXIBLE)
        assert a.policies() == b.policies()


class TestShardRouting:
    def test_scalar_matches_vector(self, rng):
        keys = rng.integers(-(2**62), 2**62, size=1000).astype(np.int64)
        for n_shards in (1, 2, 4, 7):
            vec = shard_of(keys, n_shards)
            assert vec.min() >= 0 and vec.max() < n_shards
            scalars = [shard_of_key(int(k), n_shards) for k in keys]
            assert vec.tolist() == scalars

    def test_spread_is_even_for_sequential_keys(self):
        ids = shard_of(np.arange(100_000, dtype=np.int64), 4)
        counts = np.bincount(ids, minlength=4)
        assert counts.min() > 20_000  # ~25k each

    def test_bad_shard_count(self, tiny_config):
        with pytest.raises(ConfigError):
            ShardedStore(tiny_config, 0)
        with pytest.raises(ConfigError):
            RusKey(tiny_config, n_shards=0)


class TestPutBatch:
    def test_memtable_batch_stops_at_capacity(self):
        table = MemTable(4)
        keys = np.arange(10, dtype=np.int64)
        consumed = 0
        while consumed < len(keys) and not table.is_full:
            consumed += table.put_batch(keys[consumed:], keys[consumed:])
        assert consumed == 4  # stops exactly where per-key puts would flush
        assert table.is_full
        table.clear()
        assert table.put_batch(keys[:3], keys[:3]) == 3
        assert not table.is_full

    def test_memtable_batch_duplicates_do_not_consume_capacity(self):
        table = MemTable(4)
        keys = np.array([1, 1, 2, 2, 3, 3], dtype=np.int64)
        values = np.arange(6, dtype=np.int64)
        consumed = 0
        while consumed < len(keys) and not table.is_full:
            consumed += table.put_batch(keys[consumed:], values[consumed:])
        assert consumed == 6
        assert len(table) == 3
        assert not table.is_full
        # Newest value of each duplicate wins, as with per-key puts.
        assert table.get(1) == 1 and table.get(2) == 3 and table.get(3) == 5

    def test_tree_batch_exact_at_fill_boundary_with_duplicates(self, tiny_config):
        """A batch that exactly fills the buffer and then keeps overwriting
        must flush at the same point a per-key loop would."""
        capacity = tiny_config.buffer_capacity_entries
        fill = np.arange(capacity, dtype=np.int64)
        # Fill to capacity, then overwrite some of the same keys.
        keys = np.concatenate([fill, fill[: capacity // 2]])
        values = np.arange(len(keys), dtype=np.int64)
        serial, batched = LSMTree(tiny_config), LSMTree(tiny_config)
        for k, v in zip(keys.tolist(), values.tolist()):
            serial.put(k, v)
        batched.put_batch(keys, values)
        assert serial.clock_now == batched.clock_now
        assert serial.io_counters == batched.io_counters
        assert len(serial.memtable) == len(batched.memtable)
        probe = np.arange(capacity, dtype=np.int64)
        _, sv = serial.get_batch(probe)
        _, bv = batched.get_batch(probe)
        assert (sv == bv).all()

    def test_exactly_matches_per_key_puts(self, tiny_config, records):
        keys, values = records
        serial, batched = LSMTree(tiny_config), LSMTree(tiny_config)
        for k, v in zip(keys.tolist(), values.tolist()):
            serial.put(k, v)
        for start in range(0, len(keys), 97):  # odd batch size crosses flushes
            batched.put_batch(keys[start : start + 97], values[start : start + 97])
        assert serial.clock_now == batched.clock_now
        assert serial.io_counters == batched.io_counters
        assert serial.describe() == batched.describe()
        assert serial.stats.total_updates == batched.stats.total_updates

    def test_duplicate_heavy_stream_matches_per_key_puts(self, tiny_config, rng):
        """Skewed update streams (many overwrites) must keep exact flush
        boundaries through the batch path, across many flush cycles."""
        keys = rng.integers(0, 120, size=6000).astype(np.int64)  # heavy dups
        values = rng.integers(0, 2**31, size=6000).astype(np.int64)
        serial, batched = LSMTree(tiny_config), LSMTree(tiny_config)
        for k, v in zip(keys.tolist(), values.tolist()):
            serial.put(k, v)
        for start in range(0, len(keys), 113):
            batched.put_batch(keys[start : start + 113], values[start : start + 113])
        assert serial.clock_now == batched.clock_now
        assert serial.io_counters == batched.io_counters
        assert serial.describe() == batched.describe()
        probe = np.arange(120, dtype=np.int64)
        _, sv = serial.get_batch(probe)
        _, bv = batched.get_batch(probe)
        assert (sv == bv).all()

    def test_batch_with_duplicate_keys(self, tiny_config):
        tree = LSMTree(tiny_config)
        keys = np.array([5, 5, 5], dtype=np.int64)
        values = np.array([1, 2, 3], dtype=np.int64)
        tree.put_batch(keys, values)
        assert tree.get(5) == 3

    def test_rejects_tombstone_values(self, tiny_config):
        tree = LSMTree(tiny_config)
        with pytest.raises(ValueError):
            tree.put_batch(
                np.array([1], dtype=np.int64),
                np.array([TOMBSTONE], dtype=np.int64),
            )
        with pytest.raises(ValueError):
            tree.put_batch(np.arange(3, dtype=np.int64), np.arange(2, dtype=np.int64))

    def test_empty_batch_is_noop(self, tiny_config):
        tree = LSMTree(tiny_config)
        tree.put_batch(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert tree.total_entries == 0
        assert tree.stats.total_updates == 0

    def test_sharded_batch_matches_per_key_routing(self, tiny_config, records):
        keys, values = records
        serial = ShardedStore(tiny_config, 4)
        batched = ShardedStore(tiny_config, 4)
        for k, v in zip(keys.tolist(), values.tolist()):
            serial.put(k, v)
        batched.put_batch(keys, values)
        assert serial.clock_now == batched.clock_now
        assert serial.io_counters == batched.io_counters

    def test_sharded_get_batch_matches_per_key_routing(
        self, tiny_config, records, rng
    ):
        """The grouped (one argsort, one batch call per shard) lookup path
        is bit-exact against per-key routed gets: same results, same
        simulated cost charging, same probe order within each shard."""
        keys, values = records
        grouped = ShardedStore(tiny_config, 4)
        serial = ShardedStore(tiny_config, 4)
        grouped.bulk_load(keys, values)
        serial.bulk_load(keys, values)
        probe = np.concatenate(
            [
                rng.choice(keys, size=400),
                rng.integers(10**6, 2 * 10**6, size=100).astype(np.int64),
            ]
        )
        found_grouped, values_grouped = grouped.get_batch(probe)
        found_serial = np.zeros(len(probe), dtype=bool)
        values_serial = np.zeros(len(probe), dtype=np.int64)
        for i, key in enumerate(probe.tolist()):
            got = serial.get(key)
            if got is not None:
                found_serial[i] = True
                values_serial[i] = got
        assert (found_grouped == found_serial).all()
        assert (values_grouped[found_grouped] == values_serial[found_serial]).all()
        # Cost parity: identical page I/O and op counts; the clock agrees
        # to float summation order (the batch path charges one fused CPU
        # probe per run instead of one per key).
        assert grouped.clock_now == pytest.approx(serial.clock_now, rel=1e-12)
        assert grouped.io_counters == serial.io_counters
        assert grouped.stats.total_lookups == serial.stats.total_lookups

    def test_sharded_bulk_load_grouping_matches_mask_routing(
        self, tiny_config, records
    ):
        """Grouped bulk_load partitions records identically to per-shard
        mask selection (same per-shard record order, same structure)."""
        keys, values = records
        grouped = ShardedStore(tiny_config, 4)
        grouped.bulk_load(keys, values)
        masked = ShardedStore(tiny_config, 4)
        shard_ids = shard_of(keys, 4)
        for s in range(4):
            idx = np.flatnonzero(shard_ids == s)
            if len(idx):
                masked.shards[s].bulk_load(keys[idx], values[idx])
        assert grouped.describe() == masked.describe()
        assert grouped.total_entries == masked.total_entries


class TestCrossShardCorrectness:
    """The sharded equivalence suite: a 4-shard store must behave exactly
    like one tree for results, and its stats must aggregate consistently."""

    def _loaded_pair(self, config, records):
        keys, values = records
        single = FLSMTree(config)
        sharded = ShardedStore(config, 4)
        single.bulk_load(keys, values)
        sharded.bulk_load(keys, values)
        return single, sharded

    def test_bulk_load_and_gets_match(self, tiny_config, records, rng):
        keys, values = records
        single, sharded = self._loaded_pair(tiny_config, records)
        assert single.total_entries == sharded.total_entries == len(keys)
        probe = rng.choice(keys, size=300)
        misses = rng.integers(2 * 10**6, 3 * 10**6, size=100).astype(np.int64)
        probe = np.concatenate([probe, misses])
        f1, v1 = single.get_batch(probe)
        f2, v2 = sharded.get_batch(probe)
        assert (f1 == f2).all()
        assert (v1[f1] == v2[f2]).all()

    def test_range_lookup_spans_shard_boundaries(self, tiny_config, records):
        keys, values = records
        single, sharded = self._loaded_pair(tiny_config, records)
        lo, hi = int(np.percentile(keys, 10)), int(np.percentile(keys, 60))
        span = shard_of(np.arange(lo, min(lo + 200, hi), dtype=np.int64), 4)
        assert len(set(span.tolist())) > 1  # the range truly crosses shards
        expected = single.range_lookup(lo, hi)
        assert sharded.range_lookup(lo, hi) == expected
        assert len(expected) > 0

    def test_tombstones_visible_through_get_batch(self, tiny_config, records):
        keys, values = records
        _, sharded = self._loaded_pair(tiny_config, records)
        doomed = keys[::5]
        for k in doomed.tolist():
            sharded.delete(k)
        found, _ = sharded.get_batch(keys)
        assert not found[::5].any()
        mask = np.ones(len(keys), dtype=bool)
        mask[::5] = False
        assert found[mask].all()
        # Deleted keys also vanish from cross-shard range scans.
        lo, hi = int(keys.min()), int(keys.max())
        alive = {k for k in keys.tolist()} - {k for k in doomed.tolist()}
        assert {k for k, _ in sharded.range_lookup(lo, hi)} == alive

    def test_operation_counts_match_unsharded(self, tiny_config, records):
        single, sharded = self._loaded_pair(tiny_config, records)
        keys, _ = records
        for engine in (single, sharded):
            engine.get_batch(keys[:123])
            for k in keys[:7].tolist():
                engine.get(k)
            engine.range_lookup(0, 10**6)
            engine.put_batch(keys[:50], np.arange(50, dtype=np.int64))
        for field in ("total_lookups", "total_updates", "total_ranges"):
            assert getattr(single.stats, field) == getattr(sharded.stats, field)

    def test_stats_aggregation_sums_to_per_shard(self, tiny_config, records):
        keys, values = records
        sharded = ShardedStore(tiny_config, 4)
        sharded.begin_mission()
        sharded.put_batch(keys, values)
        sharded.get_batch(keys[:500])
        sharded.range_lookup(int(keys.min()), int(keys.min()) + 10_000)
        mission = sharded.end_mission()
        collectors = sharded.stats.per_shard
        assert len(collectors) == 4
        # Totals are exact sums of the per-shard collectors.
        assert sharded.stats.total_lookups == sum(c.total_lookups for c in collectors)
        assert sharded.stats.total_updates == sum(c.total_updates for c in collectors)
        assert sharded.stats.total_ranges == sum(c.total_ranges for c in collectors)
        assert sharded.stats.total_read_time == sum(
            c.total_read_time for c in collectors
        )
        assert sharded.stats.total_write_time == sum(
            c.total_write_time for c in collectors
        )
        for level_no, seconds in sharded.stats.level_write_time.items():
            assert seconds == sum(
                c.level_write_time.get(level_no, 0.0) for c in collectors
            )
        # The aggregated mission record is the field-wise sum of the windows.
        parts = sharded.last_mission_breakdown()
        assert len(parts) == 4
        rebuilt = merge_mission_stats(mission.index, parts)
        for field in dataclasses.fields(rebuilt):
            assert getattr(rebuilt, field.name) == getattr(mission, field.name)
        assert mission.n_updates == len(keys)
        assert mission.n_ranges == 1
        # Aggregated I/O and clock views sum the shards too.
        assert sharded.io_counters == merge_io_counters(
            [s.io_counters for s in sharded.shards]
        )
        assert sharded.clock_now == sum(s.clock_now for s in sharded.shards)

    def test_mission_totals_match_unsharded(self, tiny_config, records):
        """Same mission stream on 1 tree and 4 shards: identical op counts,
        and total simulated time in the same ballpark (flush timing shifts
        because each shard fills its own memtable)."""
        keys, values = records
        workload = UniformWorkload(4000, lookup_fraction=0.5, seed=3)
        missions = list(workload.missions(4, 400))
        results = []
        for engine in (FLSMTree(self_config := SystemConfig(
            size_ratio=4, write_buffer_bytes=16 * 1024, seed=7
        )), ShardedStore(self_config, 4)):
            engine.bulk_load(*workload.load_records())
            runner = MissionRunner(engine, chunk_size=64)
            results.append([runner.run(m) for m in missions])
        for single_m, sharded_m in zip(*results):
            assert single_m.n_lookups == sharded_m.n_lookups
            assert single_m.n_updates == sharded_m.n_updates
            assert single_m.n_ranges == sharded_m.n_ranges
        total_single = sum(m.total_time for m in results[0])
        total_sharded = sum(m.total_time for m in results[1])
        assert total_sharded == pytest.approx(total_single, rel=0.35)

    def test_invariants_and_policy_fanout(self, tiny_config, records):
        _, sharded = self._loaded_pair(tiny_config, records)
        sharded.apply_transition([3, 2], TransitionKind.FLEXIBLE)
        for shard in sharded.shards:
            assert shard.policies()[: 2] == [3, 2][: shard.n_levels]
        sharded.set_policy(1, 4, TransitionKind.FLEXIBLE)
        assert all(s.policies()[0] == 4 for s in sharded.shards)
        sharded.check_invariants()
        assert sharded.policies() == sharded.shards[0].policies()
        assert len(sharded.policies_per_shard()) == 4

    def test_bulk_load_requires_empty(self, tiny_config, records):
        keys, values = records
        sharded = ShardedStore(tiny_config, 2)
        sharded.bulk_load(keys, values)
        with pytest.raises(TreeStateError):
            sharded.bulk_load(keys, values)


class TestChunkedExecutionRegression:
    """Satellite: chunk_size=1 serial execution vs chunked batch execution
    on a sharded store."""

    def _run(self, config, chunk_size, mission, workload=None):
        engine = ShardedStore(config, 4)
        if workload is not None:
            engine.bulk_load(*workload.load_records())
        runner = MissionRunner(engine, chunk_size=chunk_size)
        return runner.run(mission)

    def test_write_only_mission_identical(self, tiny_config, rng):
        workload = UniformWorkload(3000, lookup_fraction=0.0, seed=11)
        mission = next(iter(workload.missions(1, 1500)))
        serial = self._run(tiny_config, 1, mission)
        chunked = self._run(tiny_config, 128, mission)
        # Updates keep their original order through the batch path, so the
        # two executions are bit-identical, not just statistically close.
        assert_mission_stats_equal(serial, chunked, exact_times=True)

    def test_mixed_mission_counts_identical_costs_close(self, tiny_config):
        workload = YCSBWorkload(
            3000, lookup_fraction=0.5, seed=11, range_fraction=0.1
        )
        mission = next(iter(workload.missions(1, 1500)))
        serial = self._run(tiny_config, 1, mission, workload)
        chunked = self._run(tiny_config, 128, mission, workload)
        assert_mission_stats_equal(serial, chunked, exact_times=False)


class TestRusKeyEngineFacade:
    def test_default_sharded_builds_one_lerp_per_shard(self, tiny_config):
        store = RusKey(tiny_config, n_shards=3)
        assert isinstance(store.engine, ShardedStore)
        assert len(store.tuners) == 3
        assert all(isinstance(t, Lerp) for t in store.tuners)
        assert len({id(t) for t in store.tuners}) == 3
        # Independent tuners must not share an exploration RNG stream.
        assert len({t.config.seed for t in store.tuners}) == 3

    def test_engine_and_n_shards_conflict_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            RusKey(
                tiny_config,
                engine=FLSMTree(tiny_config),
                n_shards=4,
            )

    def test_explicit_tuner_is_shared_across_shards(self, tiny_config):
        tuner = StaticTuner(2)
        store = RusKey(tiny_config, tuner=tuner, n_shards=3)
        assert store.tuners == [tuner, tuner, tuner]

    def test_tuner_factory_builds_independent_tuners(self, tiny_config):
        store = RusKey(
            tiny_config, n_shards=2, tuner_factory=lambda cfg: StaticTuner(3)
        )
        assert len({id(t) for t in store.tuners}) == 2

    def test_sharded_mission_loop_tunes_every_shard(self, tiny_config):
        store = RusKey(tiny_config, tuner=StaticTuner(2), n_shards=4)
        workload = UniformWorkload(2000, lookup_fraction=0.5, seed=1)
        store.run_workload(workload, n_missions=3, mission_size=300)
        assert len(store.mission_log) == 3
        for shard in store.engine.shards:
            assert all(p == 2 for p in shard.policies())

    def test_sharded_model_update_time_folded_into_log(self, tiny_config):
        store = RusKey(tiny_config, n_shards=2)
        workload = UniformWorkload(2000, lookup_fraction=0.5, seed=1)
        store.run_workload(workload, n_missions=2, mission_size=300)
        parts = store.engine.last_mission_breakdown()
        assert store.mission_log[-1].model_update_time == pytest.approx(
            sum(p.model_update_time for p in parts)
        )
        assert store.mission_log[-1].model_update_time > 0.0

    def test_custom_engine_injection(self, tiny_config):
        engine = ShardedStore(tiny_config, 2)
        store = RusKey(tiny_config, tuner=StaticTuner(1), engine=engine)
        assert store.engine is engine
        store.put(1, 5)
        assert store.get(1) == 5
        f, v = store.get_batch(np.array([1, 2], dtype=np.int64))
        assert f.tolist() == [True, False] and v[0] == 5


class TestHarnessShardingKnob:
    def test_system_spec_runs_sharded(self, tiny_config):
        from repro.bench.harness import Experiment, SystemSpec, run_system

        experiment = Experiment(
            name="sharded-smoke",
            workload=YCSBWorkload(3000, lookup_fraction=0.3, seed=2),
            n_missions=3,
            mission_size=200,
            base_config=tiny_config,
            chunk_size=64,
            systems=[
                SystemSpec("K=1x4", lambda config: StaticTuner(1), 1, n_shards=4),
            ],
        )
        result = run_system(experiment, experiment.systems[0])
        assert len(result.missions) == 3
        assert all(m.n_operations == 200 for m in result.missions)
        assert (result.latencies > 0).all()
