"""Tests for repro.lsm.entry and repro.lsm.memtable."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.lsm.entry import TOMBSTONE, Entry, merge_sorted_sources, validate_value
from repro.lsm.memtable import MemTable


class TestEntry:
    def test_tombstone_flag(self):
        assert Entry(1, TOMBSTONE).is_tombstone
        assert not Entry(1, 5).is_tombstone

    def test_validate_value_rejects_tombstone(self):
        with pytest.raises(ValueError):
            validate_value(TOMBSTONE)

    def test_validate_value_passes_normal(self):
        assert validate_value(42) == 42
        assert validate_value(-1) == -1


class TestMergeSortedSources:
    def _merge(self, *sources, drop=False):
        keys = [np.asarray(k, dtype=np.int64) for k, _ in sources]
        vals = [np.asarray(v, dtype=np.int64) for _, v in sources]
        return merge_sorted_sources(keys, vals, drop_tombstones=drop)

    def test_empty_input(self):
        keys, values = merge_sorted_sources([], [])
        assert len(keys) == 0
        assert len(values) == 0

    def test_single_source_passthrough(self):
        keys, values = self._merge(([1, 2, 3], [10, 20, 30]))
        assert keys.tolist() == [1, 2, 3]
        assert values.tolist() == [10, 20, 30]

    def test_newest_wins(self):
        keys, values = self._merge(
            ([1, 2], [10, 20]),  # oldest
            ([2, 3], [99, 30]),  # newest
        )
        assert keys.tolist() == [1, 2, 3]
        assert values.tolist() == [10, 99, 30]

    def test_three_way_priority(self):
        keys, values = self._merge(
            ([5], [1]),
            ([5], [2]),
            ([5], [3]),
        )
        assert keys.tolist() == [5]
        assert values.tolist() == [3]

    def test_tombstones_kept_by_default(self):
        keys, values = self._merge(([1, 2], [10, TOMBSTONE]))
        assert values.tolist() == [10, TOMBSTONE]

    def test_tombstones_dropped_on_request(self):
        keys, values = self._merge(
            ([1, 2], [10, 20]),
            ([2], [TOMBSTONE]),
            drop=True,
        )
        assert keys.tolist() == [1]
        assert values.tolist() == [10]

    def test_tombstone_overridden_by_newer_put(self):
        keys, values = self._merge(
            ([2], [TOMBSTONE]),
            ([2], [77]),
            drop=True,
        )
        assert keys.tolist() == [2]
        assert values.tolist() == [77]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            merge_sorted_sources([np.zeros(1, dtype=np.int64)], [])

    @given(
        st.lists(
            st.dictionaries(
                st.integers(-1000, 1000), st.integers(-100, 100), max_size=30
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_semantics(self, layers):
        """Merging layers oldest→newest equals stacking dict updates."""
        expected = {}
        key_arrays, value_arrays = [], []
        for layer in layers:
            expected.update(layer)
            items = sorted(layer.items())
            key_arrays.append(np.asarray([k for k, _ in items], dtype=np.int64))
            value_arrays.append(np.asarray([v for _, v in items], dtype=np.int64))
        keys, values = merge_sorted_sources(key_arrays, value_arrays)
        assert dict(zip(keys.tolist(), values.tolist())) == expected
        assert keys.tolist() == sorted(expected)


class TestMemTable:
    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            MemTable(0)

    def test_put_get(self):
        table = MemTable(4)
        table.put(1, 100)
        assert table.get(1) == 100
        assert table.get(2) is None

    def test_overwrite_keeps_size(self):
        table = MemTable(4)
        table.put(1, 100)
        table.put(1, 200)
        assert len(table) == 1
        assert table.get(1) == 200

    def test_is_full(self):
        table = MemTable(2)
        table.put(1, 1)
        assert not table.is_full
        table.put(2, 2)
        assert table.is_full

    def test_delete_buffers_tombstone(self):
        table = MemTable(4)
        table.delete(9)
        assert table.get(9) == TOMBSTONE
        assert 9 in table

    def test_put_rejects_tombstone_value(self):
        table = MemTable(4)
        with pytest.raises(ValueError):
            table.put(1, TOMBSTONE)

    def test_drain_sorted_returns_sorted_and_clears(self):
        table = MemTable(8)
        for key in (5, 1, 3):
            table.put(key, key * 10)
        keys, values = table.drain_sorted()
        assert keys.tolist() == [1, 3, 5]
        assert values.tolist() == [10, 30, 50]
        assert len(table) == 0

    def test_drain_empty(self):
        keys, values = MemTable(4).drain_sorted()
        assert len(keys) == 0
        assert len(values) == 0

    def test_drain_keeps_tombstones(self):
        table = MemTable(4)
        table.put(1, 10)
        table.delete(2)
        keys, values = table.drain_sorted()
        assert keys.tolist() == [1, 2]
        assert values.tolist() == [10, TOMBSTONE]

    def test_range_items(self):
        table = MemTable(8)
        for key in range(6):
            table.put(key, key)
        assert table.range_items(2, 4) == {2: 2, 3: 3, 4: 4}

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 100)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_model(self, operations):
        table = MemTable(1000)
        model = {}
        for key, value in operations:
            table.put(key, value)
            model[key] = value
        for key in model:
            assert table.get(key) == model[key]
        keys, values = table.drain_sorted()
        assert dict(zip(keys.tolist(), values.tolist())) == model

    def test_get_batch_matches_serial_get(self):
        table = MemTable(64)
        rng = np.random.default_rng(5)
        for key in rng.integers(0, 40, size=50):
            table.put(int(key), int(key) * 7)
        table.delete(3)
        probes = rng.integers(-5, 60, size=200)
        buffered, values = table.get_batch(probes)
        for i, key in enumerate(probes.tolist()):
            expected = table.get(key)
            if expected is None:
                assert not buffered[i]
            else:
                assert buffered[i]
                assert values[i] == expected

    def test_get_batch_surfaces_tombstones(self):
        table = MemTable(8)
        table.put(1, 10)
        table.delete(2)
        buffered, values = table.get_batch(np.asarray([1, 2, 3]))
        assert buffered.tolist() == [True, True, False]
        assert values[0] == 10
        assert values[1] == TOMBSTONE

    def test_get_batch_empty_cases(self):
        table = MemTable(4)
        buffered, values = table.get_batch(np.zeros(0, dtype=np.int64))
        assert len(buffered) == 0 and len(values) == 0
        buffered, values = table.get_batch(np.asarray([1, 2]))
        assert not buffered.any()
