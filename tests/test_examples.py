"""Smoke tests for the examples/ scripts.

Every example must be importable without side effects (all work behind a
``main()`` guarded by ``__main__``) and must run end-to-end under a tiny
configuration: the test shrinks each module's scale constants before
calling ``main()``.
"""

import importlib.util
import io
import pathlib
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Tiny scale applied to any example that defines these module constants.
TINY = {
    "N_RECORDS": 2_400,
    "N_MISSIONS": 12,
    "MISSION_SIZE": 200,
    "MISSIONS_PER_SESSION": 6,
    "TRANSITION_AT": 6,
}


def _import_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 5


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_imports_without_side_effects(path):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module = _import_example(path)
    assert buffer.getvalue() == "", f"{path.name} prints on import"
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_runs_under_tiny_config(path):
    module = _import_example(path)
    for name, value in TINY.items():
        if hasattr(module, name):
            setattr(module, name, value)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    assert buffer.getvalue().strip(), f"{path.name} produced no output"
