"""Tests for the concurrent serving subsystem (repro.serve).

Covers: correctness of served results against direct engine access, lane
routing vs shard hashing, admission control (bounded queues, drops and
blocking), open/closed-loop clients and tenant mixes, the window-boundary
tuning loop (live policy changes, model updates while traffic flows),
live checkpointing, and the SimClock/wall-clock split — serving must not
perturb the engine's simulated accounting contract.
"""

import os
import threading
import time

import pytest

from repro.config import SystemConfig
from repro.core.lerp import Lerp, LerpConfig
from repro.core.tuners import StaticTuner
from repro.engine.sharded import ShardedStore, shard_of_key
from repro.errors import ConfigError, ServeError
from repro.lsm.flsm import FLSMTree
from repro.persist import load_engine
from repro.serve import (
    REQ_DELETE,
    REQ_GET,
    REQ_PUT,
    REQ_RANGE,
    KVServer,
    Request,
    TenantSpec,
    request_stream,
    run_load,
)
from repro.workload.uniform import UniformWorkload


def serve_config(seed=7, buffer_kib=32):
    return SystemConfig(
        size_ratio=10,
        entry_bytes=1024,
        page_bytes=4096,
        write_buffer_bytes=buffer_kib * 1024,
        bits_per_key=8.0,
        seed=seed,
    )


def loaded_store(n_shards=2, n_records=4_000, seed=7):
    store = ShardedStore(serve_config(seed), n_shards)
    workload = UniformWorkload(n_records, lookup_fraction=0.5, seed=seed)
    store.bulk_load(*workload.load_records())
    return store, workload


def await_result(server, request, timeout=10.0):
    assert server.submit(request, timeout=timeout)
    assert request.done.wait(timeout=timeout)
    return request.result


class TestRequestRouting:
    def test_served_results_match_direct_engine(self):
        """GET/PUT/DELETE/RANGE through the server agree with an identical
        engine driven directly."""
        store, workload = loaded_store(n_shards=2)
        direct, _ = loaded_store(n_shards=2)
        keys, values = workload.load_records()
        with KVServer(store, max_batch=32) as server:
            for key in (0, 17, 103, 3_999):
                got = await_result(server, Request(REQ_GET, key, wait=True))
                assert got == direct.get(key)
            await_result(server, Request(REQ_PUT, 17, value=123456, wait=True))
            direct.put(17, 123456)
            assert (
                await_result(server, Request(REQ_GET, 17, wait=True))
                == direct.get(17)
                == 123456
            )
            await_result(server, Request(REQ_DELETE, 103, wait=True))
            direct.delete(103)
            assert await_result(server, Request(REQ_GET, 103, wait=True)) is None
            got = await_result(
                server, Request(REQ_RANGE, 50, span=20, wait=True)
            )
            # Range results are (keys, values) array pairs, sorted by key.
            got_keys, got_values = got
            assert (
                list(zip(got_keys.tolist(), got_values.tolist()))
                == direct.range_lookup(50, 69)
            )

    def test_delete_then_put_in_one_batch_keeps_put(self):
        """Puts and deletes preserve their relative submission order
        within a drained batch: DELETE(k) → PUT(k, v) leaves v live."""
        store, _ = loaded_store(n_shards=1)
        server = KVServer(store, max_batch=64)
        server._running = True  # enqueue without workers: one exact batch
        lane = server.lanes[0]
        server.submit(Request(REQ_PUT, 42, value=1))
        server.submit(Request(REQ_DELETE, 42))
        server.submit(Request(REQ_PUT, 42, value=2))
        server.submit(Request(REQ_DELETE, 7))
        batch = [lane.queue.get_nowait() for _ in range(4)]
        for r in batch:
            r.t_submit = time.perf_counter()
        server._serve_batch(lane, batch)
        assert store.get(42) == 2
        assert store.get(7) is None

    def test_missing_key_returns_none(self):
        store, _ = loaded_store()
        with KVServer(store) as server:
            assert (
                await_result(server, Request(REQ_GET, 10**9, wait=True)) is None
            )

    def test_requests_route_to_home_shard_lane(self):
        store, _ = loaded_store(n_shards=4)
        server = KVServer(store)
        for key in (3, 77, 1_234, 99_999):
            lane = server._lane_for(key)
            assert lane.index == shard_of_key(key, 4)

    def test_single_tree_engine_gets_one_lane(self):
        tree = FLSMTree(serve_config())
        with KVServer(tree) as server:
            assert server.n_lanes == 1
            await_result(server, Request(REQ_PUT, 5, value=55, wait=True))
            assert await_result(server, Request(REQ_GET, 5, wait=True)) == 55

    def test_bad_request_kind_rejected(self):
        with pytest.raises(ServeError):
            Request(99, 1)

    def test_submit_requires_running_server(self):
        store, _ = loaded_store()
        server = KVServer(store)
        with pytest.raises(ServeError):
            server.submit(Request(REQ_GET, 1))
        with pytest.raises(ServeError):
            server.try_submit(Request(REQ_GET, 1))

    def test_start_twice_rejected(self):
        store, _ = loaded_store()
        with KVServer(store) as server, pytest.raises(ServeError):
            server.start()

    def test_config_validation(self):
        store, _ = loaded_store()
        with pytest.raises(ConfigError):
            KVServer(store, queue_capacity=0)
        with pytest.raises(ConfigError):
            KVServer(store, max_batch=0)
        with pytest.raises(ConfigError):
            KVServer(store, window_ops=-1)
        with pytest.raises(ConfigError):
            KVServer(store, tuners=[StaticTuner(1)])  # 1 tuner, 2 lanes


class TestAdmissionControl:
    def test_try_submit_drops_when_queue_full(self):
        store, _ = loaded_store(n_shards=1)
        server = KVServer(store, queue_capacity=4, max_batch=4)
        # Not started: fill the lane queue directly to model a stalled lane.
        lane = server.lanes[0]
        server._running = True
        accepted = rejected = 0
        for key in range(50):
            if server.try_submit(Request(REQ_GET, key)):
                accepted += 1
            else:
                rejected += 1
        assert accepted == 4  # bounded queue
        assert rejected == 46
        assert server.total_rejected == 46
        assert lane.queue.qsize() == 4

    def test_submit_blocks_until_capacity_or_timeout(self):
        store, _ = loaded_store(n_shards=1)
        server = KVServer(store, queue_capacity=2)
        server._running = True  # no workers: queue never drains
        assert server.submit(Request(REQ_PUT, 1, value=1))
        assert server.submit(Request(REQ_PUT, 2, value=2))
        started = time.perf_counter()
        assert not server.submit(Request(REQ_PUT, 3, value=3), timeout=0.05)
        assert time.perf_counter() - started >= 0.05
        assert server.total_rejected == 1

    def test_queue_depth_metrics(self):
        store, workload = loaded_store(n_shards=2)
        with KVServer(store, max_batch=16) as server:
            for request in request_stream(workload, 500, tenant="t"):
                server.submit(request, timeout=5.0)
            deadline = time.time() + 10.0
            while server.total_completed < 500 and time.time() < deadline:
                time.sleep(0.005)
        assert server.total_completed == 500
        assert server.max_queue_depth() >= 0
        assert server.mean_queue_depth() >= 0.0
        assert server.queue_depths() == [0, 0]


class TestLoadGeneration:
    def test_open_loop_replays_every_op_when_underloaded(self):
        store, workload = loaded_store(n_shards=2)
        with KVServer(store) as server:
            report = run_load(
                server,
                [
                    TenantSpec(
                        name="uniform",
                        workload=workload,
                        n_ops=2_000,
                        rate=50_000.0,
                        seed=3,
                    )
                ],
            )
        assert report.offered == 2_000
        assert report.dropped == 0
        assert report.completed == 2_000
        assert report.histogram.count == 2_000
        assert report.throughput > 0
        assert 0.0 <= report.drop_fraction <= 1.0

    def test_closed_loop_completes_all(self):
        store, workload = loaded_store(n_shards=2)
        with KVServer(store, max_batch=8) as server:
            report = run_load(
                server,
                [
                    TenantSpec(
                        name="sync",
                        workload=workload,
                        n_ops=300,
                        n_clients=3,
                        closed_loop=True,
                        seed=5,
                    )
                ],
            )
        assert report.dropped == 0
        assert report.completed == report.offered
        # Closed-loop latency excludes no queueing: every request was
        # submitted, served and awaited.
        assert report.histogram.count == report.completed

    def test_multi_tenant_mix_reports_per_tenant_tails(self):
        store, workload = loaded_store(n_shards=2)
        zipf_like = UniformWorkload(4_000, lookup_fraction=0.1, seed=31)
        with KVServer(store) as server:
            report = run_load(
                server,
                [
                    TenantSpec(
                        name="readers",
                        workload=workload,
                        n_ops=1_000,
                        rate=30_000.0,
                        seed=1,
                    ),
                    TenantSpec(
                        name="writers",
                        workload=zipf_like,
                        n_ops=800,
                        rate=20_000.0,
                        n_clients=2,
                        seed=2,
                    ),
                ],
            )
        assert set(report.tenant_histograms) == {"readers", "writers"}
        assert report.tenant_histograms["readers"].count == 1_000
        assert report.tenant_histograms["writers"].count == 800
        merged = report.histogram
        assert merged.count == 1_800
        # The merged histogram is exactly the tenant histograms combined.
        assert merged.count == sum(
            h.count for h in report.tenant_histograms.values()
        )

    def test_client_split_offers_exact_op_count(self):
        """n_ops splits exactly across clients even when not divisible."""
        store, workload = loaded_store(n_shards=2)
        with KVServer(store) as server:
            report = run_load(
                server,
                [
                    TenantSpec(
                        name="t",
                        workload=workload,
                        n_ops=1_000,
                        rate=50_000.0,
                        n_clients=3,
                        seed=7,
                    )
                ],
            )
        assert report.offered == 1_000
        assert report.completed == 1_000

    def test_request_stream_advances_through_missions(self):
        workload = UniformWorkload(1_000, lookup_fraction=0.5, seed=9)
        stream = list(request_stream(workload, 250, mission_size=100))
        assert len(stream) == 250
        # Mission boundaries must not reset the generator: the stream is
        # what one missions() iterator yields, flattened.
        missions = list(workload.missions(3, 100))
        expected_keys = [int(k) for m in missions for k in m.keys][:250]
        assert [r.key for r in stream] == expected_keys


class TestTuningLoop:
    def test_windows_close_while_serving(self):
        store, workload = loaded_store(n_shards=2)
        tuners = [StaticTuner(3), StaticTuner(3)]
        with KVServer(
            store, tuners=tuners, window_ops=400, max_batch=32
        ) as server:
            report = run_load(
                server,
                [
                    TenantSpec(
                        name="t",
                        workload=workload,
                        n_ops=2_000,
                        # Slow enough that the run outlasts several tuning-
                        # loop poll cycles; the loop closes windows on op
                        # count, but only as fast as it wakes.
                        rate=8_000.0,
                        seed=4,
                    )
                ],
            )
        assert report.completed == 2_000
        # Window boundaries closed live (plus the final partial window
        # closed by stop()).
        assert len(server.windows) >= 2
        # The static tuner drove every shard to K=3 at the first boundary.
        assert server.windows[-1].policies == [[3] * len(p) for p in
                                               server.windows[-1].policies]
        # Window records carry the shared metrics vocabulary.
        for window in server.windows:
            assert window.stats.n_operations >= 0
            assert window.stats.wall_duration >= 0.0
        total_window_ops = sum(w.stats.n_operations for w in server.windows)
        assert total_window_ops == 2_000

    def test_lerp_tunes_live(self):
        """A Lerp tuner attached to the serving loop performs model updates
        (wall-clock charged to the window) against live traffic."""
        store, workload = loaded_store(n_shards=1, n_records=2_000)
        lerp = Lerp(store.config, LerpConfig(seed=11))
        with KVServer(
            store, tuners=[lerp], window_ops=300, max_batch=64
        ) as server:
            run_load(
                server,
                [
                    TenantSpec(
                        name="t",
                        workload=workload,
                        n_ops=1_500,
                        rate=50_000.0,
                        seed=6,
                    )
                ],
            )
        tuned_windows = [
            w for w in server.windows if w.stats.model_update_time > 0.0
        ]
        assert tuned_windows, "Lerp never updated its model live"

    def test_window_stats_match_engine_missions(self):
        """Per-window MissionStats merge with the ShardedStore aggregation
        rule — counts across windows equal the requests served."""
        store, workload = loaded_store(n_shards=2)
        with KVServer(store, window_ops=250) as server:
            report = run_load(
                server,
                [
                    TenantSpec(
                        name="t",
                        workload=workload,
                        n_ops=1_000,
                        rate=30_000.0,
                        seed=8,
                    )
                ],
            )
        assert report.completed == 1_000
        counts = sum(w.stats.n_operations for w in server.windows)
        assert counts == 1_000
        lookups = sum(w.stats.n_lookups for w in server.windows)
        updates = sum(w.stats.n_updates for w in server.windows)
        assert lookups + updates == 1_000
        # Simulated time was charged by the engine, never by the server.
        sim_total = sum(w.stats.sim_duration for w in server.windows)
        assert sim_total == pytest.approx(store.clock_now)


class TestSimulationContract:
    def test_serving_charges_identical_sim_costs_as_batch_path(self):
        """Serving a request stream yields the *same simulated totals* as
        pushing the identical per-lane batches through the engine offline:
        wall-clock serving introduces no SimClock or RNG perturbation."""
        ops = 600
        workload = UniformWorkload(2_000, lookup_fraction=0.5, seed=21)
        store, _ = loaded_store(n_shards=1, n_records=2_000, seed=21)
        mirror, _ = loaded_store(n_shards=1, n_records=2_000, seed=21)

        batch = 64
        with KVServer(store, max_batch=batch) as server:
            # Submit in lockstep batches so lane batching is deterministic:
            # exactly `batch` requests are queued, then awaited, so the
            # worker drains them as one batch, mirroring the offline path.
            pending = []
            for request in request_stream(workload, ops, tenant="t"):
                request.done = threading.Event()
                server.submit(request, timeout=10.0)
                pending.append(request)
                if len(pending) == batch:
                    for r in pending:
                        assert r.done.wait(10.0)
                    pending.clear()
            for r in pending:
                assert r.done.wait(10.0)

        from repro.workload.spec import OP_LOOKUP, OP_UPDATE

        for mission in workload.missions(-(-ops // 1_000), 1_000):
            kinds = mission.kinds[: min(ops, len(mission))]
            keys = mission.keys[: len(kinds)]
            values = mission.values[: len(kinds)]
            for start in range(0, len(kinds), batch):
                stop = min(start + batch, len(kinds))
                k, ky, vl = kinds[start:stop], keys[start:stop], values[start:stop]
                upd = k == OP_UPDATE
                if upd.any():
                    mirror.put_batch(ky[upd], vl[upd])
                look = k == OP_LOOKUP
                if look.any():
                    mirror.get_batch(ky[look])
            ops -= len(kinds)
            if ops <= 0:
                break

        assert store.clock_now == mirror.clock_now
        assert store.io_counters.state_dict() == mirror.io_counters.state_dict()
        assert store.stats.total_lookups == mirror.stats.total_lookups
        assert store.stats.total_updates == mirror.stats.total_updates
        assert store.stats.total_read_time == mirror.stats.total_read_time
        assert store.stats.total_write_time == mirror.stats.total_write_time
        assert [s.describe() for s in store.shards] == [
            s.describe() for s in mirror.shards
        ]


class TestCheckpointing:
    def test_live_checkpoint_between_windows(self, tmp_path):
        store, workload = loaded_store(n_shards=2)
        path = os.path.join(tmp_path, "live.snap")
        with KVServer(store, window_ops=200) as server:
            run_load(
                server,
                [
                    TenantSpec(
                        name="t",
                        workload=workload,
                        n_ops=600,
                        rate=30_000.0,
                        seed=12,
                    )
                ],
            )
            server.checkpoint(path)
            # The server keeps serving after the snapshot.
            probe = Request(REQ_GET, 1, wait=True)
            assert server.submit(probe, timeout=5.0)
            assert probe.done.wait(5.0)
        restored = load_engine(path)
        assert isinstance(restored, ShardedStore)
        assert restored.n_shards == 2
        assert restored.total_entries == store.total_entries
        # The snapshot captured the live tree structure exactly.
        assert [s.describe() for s in restored.shards] == [
            s.describe() for s in store.shards
        ]

    def test_checkpoint_requires_running_server(self, tmp_path):
        store, _ = loaded_store(n_shards=1)
        server = KVServer(store).start()
        server.stop()
        with pytest.raises(ServeError):
            server.checkpoint(os.path.join(tmp_path, "late.snap"))


class TestStopSemantics:
    def test_stop_drains_queued_requests(self):
        store, workload = loaded_store(n_shards=2)
        server = KVServer(store, queue_capacity=2_000, max_batch=16)
        server.start()
        accepted = 0
        for request in request_stream(workload, 1_000, tenant="t"):
            if server.try_submit(request):
                accepted += 1
        server.stop(drain=True)
        assert server.total_completed == accepted

    def test_stop_twice_is_noop(self):
        store, _ = loaded_store()
        server = KVServer(store).start()
        server.stop()
        server.stop()

    def test_restart_after_undrained_stop_serves_again(self):
        """stop(drain=False) may leave a stale sentinel in a lane queue;
        a restarted server must purge it or the new worker dies."""
        store, workload = loaded_store(n_shards=1)
        server = KVServer(store).start()
        server.stop(drain=False)
        server.start()
        probe = Request(REQ_GET, 1, wait=True)
        assert server.submit(probe, timeout=5.0)
        assert probe.done.wait(5.0), "lane worker died on a stale sentinel"
        server.stop()

    def test_second_run_load_reports_only_its_own_traffic(self):
        """LoadReport histograms/counters are per-call deltas, not the
        server's lifetime cumulatives."""
        store, workload = loaded_store(n_shards=2)
        with KVServer(store) as server:
            spec = lambda seed: TenantSpec(  # noqa: E731
                name="t", workload=workload, n_ops=500, rate=40_000.0, seed=seed
            )
            first = run_load(server, [spec(1)])
            second = run_load(server, [spec(2)])
        assert first.completed == 500
        assert second.completed == 500
        assert first.histogram.count == 500
        assert second.histogram.count == 500
        assert second.tenant_histograms["t"].count == 500
        # The server's own view stays cumulative.
        assert server.histogram().count == 1_000

    def test_restart_measures_afresh(self):
        """A stopped server can restart; elapsed/throughput restart too."""
        store, _ = loaded_store()
        server = KVServer(store).start()
        server.stop()
        server.start()
        probe = Request(REQ_GET, 1, wait=True)
        assert server.submit(probe, timeout=5.0)
        assert probe.done.wait(5.0)
        assert server.elapsed > 0.0
        server.stop()
        assert server.elapsed > 0.0
        assert server.throughput > 0.0

    def test_final_window_closed_on_stop(self):
        store, workload = loaded_store(n_shards=2)
        server = KVServer(store).start()
        for request in request_stream(workload, 100, tenant="t"):
            server.submit(request, timeout=5.0)
        server.stop()
        assert len(server.windows) == 1
        assert server.windows[0].stats.n_operations == 100
