"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import (
    BloomMode,
    BloomScheme,
    CostModelParams,
    SystemConfig,
    TransitionKind,
)
from repro.errors import ConfigError


class TestSystemConfigValidation:
    def test_defaults_are_valid(self):
        config = SystemConfig()
        assert config.size_ratio == 10
        assert config.entry_bytes == 1024

    def test_rejects_size_ratio_below_two(self):
        with pytest.raises(ConfigError):
            SystemConfig(size_ratio=1)

    def test_rejects_nonpositive_entry(self):
        with pytest.raises(ConfigError):
            SystemConfig(entry_bytes=0)

    def test_rejects_page_smaller_than_entry(self):
        with pytest.raises(ConfigError):
            SystemConfig(entry_bytes=8192, page_bytes=4096)

    def test_rejects_buffer_smaller_than_entry(self):
        with pytest.raises(ConfigError):
            SystemConfig(write_buffer_bytes=512, entry_bytes=1024)

    def test_rejects_nonpositive_bits_per_key(self):
        with pytest.raises(ConfigError):
            SystemConfig(bits_per_key=0)

    def test_rejects_policy_outside_range(self):
        with pytest.raises(ConfigError):
            SystemConfig(initial_policy=0)
        with pytest.raises(ConfigError):
            SystemConfig(initial_policy=11, size_ratio=10)

    def test_policy_at_bounds_accepted(self):
        assert SystemConfig(initial_policy=1).initial_policy == 1
        assert SystemConfig(initial_policy=10).initial_policy == 10

    def test_rejects_negative_cache(self):
        with pytest.raises(ConfigError):
            SystemConfig(block_cache_pages=-1)

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigError):
            SystemConfig(costs=CostModelParams(random_read_s=-1e-6))


class TestDerivedQuantities:
    def test_entries_per_page(self):
        config = SystemConfig(entry_bytes=1024, page_bytes=4096)
        assert config.entries_per_page == 4

    def test_entries_per_page_at_least_one(self):
        config = SystemConfig(entry_bytes=4096, page_bytes=4096)
        assert config.entries_per_page == 1

    def test_buffer_capacity_entries(self):
        config = SystemConfig(write_buffer_bytes=128 * 1024, entry_bytes=1024)
        assert config.buffer_capacity_entries == 128

    def test_level_capacity_grows_by_t(self):
        config = SystemConfig(write_buffer_bytes=64 * 1024, size_ratio=10)
        c1 = config.level_capacity_entries(1)
        c2 = config.level_capacity_entries(2)
        assert c2 == 10 * c1
        assert c1 == 10 * config.buffer_capacity_entries

    def test_level_capacity_bytes_consistent(self):
        config = SystemConfig()
        assert config.level_capacity_bytes(2) == (
            config.level_capacity_entries(2) * config.entry_bytes
        )

    def test_level_capacity_rejects_level_zero(self):
        with pytest.raises(ConfigError):
            SystemConfig().level_capacity_entries(0)

    def test_pages_for_entries_ceil(self):
        config = SystemConfig(entry_bytes=1024, page_bytes=4096)
        assert config.pages_for_entries(0) == 0
        assert config.pages_for_entries(1) == 1
        assert config.pages_for_entries(4) == 1
        assert config.pages_for_entries(5) == 2

    def test_with_updates_returns_new_config(self):
        config = SystemConfig()
        updated = config.with_updates(size_ratio=5)
        assert updated.size_ratio == 5
        assert config.size_ratio == 10
        assert isinstance(updated, SystemConfig)

    def test_with_updates_validates(self):
        with pytest.raises(ConfigError):
            SystemConfig().with_updates(size_ratio=0)

    def test_config_is_frozen(self):
        config = SystemConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.size_ratio = 5  # type: ignore[misc]


class TestEnums:
    def test_bloom_scheme_values(self):
        assert BloomScheme("uniform") is BloomScheme.UNIFORM
        assert BloomScheme("monkey") is BloomScheme.MONKEY

    def test_bloom_mode_values(self):
        assert BloomMode("bit_array") is BloomMode.BIT_ARRAY
        assert BloomMode("analytical") is BloomMode.ANALYTICAL

    def test_transition_kind_values(self):
        assert {t.value for t in TransitionKind} == {"greedy", "lazy", "flexible"}
